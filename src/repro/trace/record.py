"""The runtime tracer the evaluator drives.

One :class:`Tracer` instruments one ``evaluate()`` call.  The evaluator
owns the timing of each ``execute`` (so the tracer adds no work between
the clock reads) and hands the measurements over through two hooks:

* :meth:`Tracer.record` — once per operator, right after its first (and
  only) execution;
* :meth:`Tracer.memo_hit` — once per extra reference to an operator
  whose result was served from the memo (a shared sub-plan).

``finish`` seals the collection into a :class:`~repro.trace.model.PlanTrace`,
computing cumulative times in one pass over the post-order records.
"""

from __future__ import annotations

import time
from typing import Dict, List

from ..columns.batch import ColumnBatch
from ..core.base import Operator
from ..model.sequence import TreeSequence
from ..storage.stats import Metrics
from .model import OperatorTrace, PlanTrace


class Tracer:
    """Collects per-operator measurements during one plan evaluation."""

    def __init__(self, metrics: Metrics) -> None:
        self.metrics = metrics
        self.records: List[OperatorTrace] = []
        self._index_of: Dict[int, int] = {}
        self._started = time.perf_counter()

    # ------------------------------------------------------------------
    # evaluator hooks
    # ------------------------------------------------------------------
    def counters_before(self) -> dict:
        """Snapshot the work counters just before an ``execute``."""
        return self.metrics.snapshot()

    def record(
        self,
        op: Operator,
        inputs: List[TreeSequence],
        result,
        self_seconds: float,
        counters_before: dict,
    ) -> None:
        """Store one operator's measurements (called once per operator).

        ``result`` (and entries of ``inputs``) may be columnar
        :class:`~repro.columns.batch.ColumnBatch` objects under the
        batch runtime; cardinalities read the same either way, and a
        columnar output marks the record's ``batch`` flag — the EXPLAIN
        ANALYZE view of which plan region stayed batch-at-a-time.
        """
        delta = self.metrics.diff(counters_before)
        self._index_of[id(op)] = len(self.records)
        self.records.append(
            OperatorTrace(
                index=len(self.records),
                name=op.name,
                params=op.params(),
                input_cards=[len(seq) for seq in inputs],
                output_card=len(result),
                self_seconds=self_seconds,
                cumulative_seconds=0.0,  # filled in by finish()
                counters={k: v for k, v in delta.items() if v},
                batch=isinstance(result, ColumnBatch),
                children=[self._index_of[id(child)] for child in op.inputs],
            )
        )

    def memo_hit(self, op: Operator) -> None:
        """Count one extra reference to an already-evaluated operator."""
        self.records[self._index_of[id(op)]].memo_hits += 1

    # ------------------------------------------------------------------
    def finish(self, plan: Operator) -> PlanTrace:
        """Seal the records into a :class:`PlanTrace`.

        Records arrive in execution (post) order, so every operator's
        inputs are finalised before the operator itself: one forward
        pass computes cumulative times, counting each *distinct* input
        once even when an operator reads the same shared sub-plan
        through several edges.
        """
        for record in self.records:
            record.cumulative_seconds = record.self_seconds + sum(
                self.records[child].cumulative_seconds
                for child in dict.fromkeys(record.children)
            )
        return PlanTrace(
            records=self.records,
            total_seconds=time.perf_counter() - self._started,
            plan=plan,
            index_of=self._index_of,
        )
