"""Trace data model: per-operator measurements of one plan execution.

A :class:`PlanTrace` is the runtime counterpart of the static
:class:`~repro.analysis.report.AnalysisReport`: where the analyzer
predicts which logical classes flow through each operator, the trace
records what each operator actually *did* — wall time, cardinalities and
the :class:`~repro.storage.stats.Metrics` work counters it accumulated.

Semantics of the two time columns:

* ``self_seconds`` — time spent inside the operator's ``execute`` call.
  Inputs are already evaluated when ``execute`` runs (bottom-up,
  set-at-a-time), so self times are disjoint and their sum is bounded by
  the query's wall time.
* ``cumulative_seconds`` — self time plus the cumulative time of the
  operator's distinct inputs.  A memoised sub-plan (shared after the
  reuse rewrite) is evaluated once and *reported* once, but its
  cumulative time is attributed to every referencing parent — the same
  convention ``EXPLAIN ANALYZE`` uses for shared CTE scans — so sibling
  cumulatives may double-count a shared child while the self-time
  decomposition stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.base import Operator


@dataclass
class OperatorTrace:
    """One operator's measurements within a single plan execution."""

    index: int                 #: position in execution (post) order
    name: str                  #: operator name (``Operator.name``)
    params: str                #: operator parameters (``Operator.params``)
    input_cards: List[int]     #: cardinality of each input sequence
    output_card: int           #: cardinality of the output sequence
    self_seconds: float        #: wall time inside ``execute``
    cumulative_seconds: float  #: self + distinct input cumulatives
    counters: Dict[str, int]   #: non-zero ``Metrics.diff`` entries
    memo_hits: int = 0         #: extra references served from the memo
    batch: bool = False        #: output stayed columnar (``ColumnBatch``)
    children: List[int] = field(default_factory=list)
    #: indexes (into :attr:`PlanTrace.records`) of the input operators,
    #: in input order; duplicates mean the operator reads one shared
    #: sub-plan several times

    def label(self) -> str:
        """``name params`` one-liner, as the plan pretty-printer writes it."""
        return f"{self.name} {self.params}" if self.params else self.name


@dataclass
class PlanTrace:
    """Everything recorded while evaluating one operator plan."""

    records: List[OperatorTrace]
    total_seconds: float       #: wall time of the whole evaluate() call
    plan: "Operator"           #: the traced plan's root operator
    index_of: Dict[int, int] = field(default_factory=dict)
    #: ``id(operator) -> record index`` while the plan object is alive

    @property
    def root(self) -> OperatorTrace:
        """The plan root's record (last in post order)."""
        return self.records[-1]

    def record_for(self, op: "Operator") -> OperatorTrace:
        """The record of one operator of the traced plan."""
        return self.records[self.index_of[id(op)]]

    def total_self_seconds(self) -> float:
        """Sum of the disjoint per-operator self times."""
        return sum(record.self_seconds for record in self.records)

    def shared_count(self) -> int:
        """Number of memoised operators referenced more than once."""
        return sum(1 for record in self.records if record.memo_hits)

    def self_seconds_by_name(self) -> Dict[str, float]:
        """Self time aggregated per operator name (for attributions)."""
        out: Dict[str, float] = {}
        for record in self.records:
            out[record.name] = out.get(record.name, 0.0) + record.self_seconds
        return out

    def counters_total(self) -> Dict[str, int]:
        """Work counters summed over all operators (equals the query's
        whole-run ``Metrics`` delta: every counter is incremented inside
        some operator's ``execute``)."""
        out: Dict[str, int] = {}
        for record in self.records:
            for key, value in record.counters.items():
                out[key] = out.get(key, 0) + value
        return out

    def render(self) -> str:
        """EXPLAIN-ANALYZE-style annotated plan tree."""
        from .render import render_trace  # local import: avoids a cycle

        return render_trace(self)
