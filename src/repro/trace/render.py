"""EXPLAIN-ANALYZE-style renderings of a :class:`PlanTrace`.

``render_trace`` produces the annotated text tree the CLI ``profile``
command prints; ``trace_to_dot`` reuses the Graphviz plan renderer of
:mod:`repro.core.visualize`, annotating each operator box with its
measured costs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Set

from .model import OperatorTrace, PlanTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.base import Operator


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.3f}ms"


def _counters(record: OperatorTrace) -> str:
    return " ".join(
        f"{name}={value}" for name, value in sorted(record.counters.items())
    )


def _annotation(record: OperatorTrace) -> str:
    cards = ",".join(str(card) for card in record.input_cards) or "-"
    parts = [
        f"self {_ms(record.self_seconds)}",
        f"cum {_ms(record.cumulative_seconds)}",
        f"in [{cards}] out {record.output_card}",
    ]
    if record.memo_hits:
        parts.append(f"shared x{record.memo_hits + 1}")
    counters = _counters(record)
    if counters:
        parts.append(counters)
    return " · ".join(parts)


def render_trace(trace: PlanTrace, show_counters: bool = True) -> str:
    """The annotated plan tree, one operator per line.

    Mirrors ``Operator.describe`` / the analyzer's ``annotated_plan``:
    indentation follows the plan shape, each line is suffixed with the
    operator's measured costs, and a memoised sub-plan appears in full
    once — later references render as a one-line ``(shared)`` stub.
    """
    lines: List[str] = []
    seen: Set[int] = set()
    # explicit stack: traced plans can be deeper than the recursion limit
    stack = [(trace.root.index, 0)]
    while stack:
        index, depth = stack.pop()
        record = trace.records[index]
        pad = "  " * depth
        if index in seen:
            lines.append(f"{pad}{record.label()}  (shared)")
            continue
        seen.add(index)
        note = _annotation(record)
        if not show_counters:
            note = " · ".join(
                part for part in note.split(" · ") if "=" not in part
            )
        lines.append(f"{pad}{record.label()}   # {note}")
        for child in reversed(record.children):
            stack.append((child, depth + 1))
    total_self = trace.total_self_seconds()
    share = (
        f" ({total_self / trace.total_seconds:.0%} of wall)"
        if trace.total_seconds > 0
        else ""
    )
    shared = trace.shared_count()
    lines.append(
        f"-- total {_ms(trace.total_seconds)} · operator self "
        f"{_ms(total_self)}{share} · {len(trace.records)} operators"
        + (f", {shared} shared" if shared else "")
    )
    return "\n".join(lines)


def trace_to_dot(trace: PlanTrace, title: str = "traced plan") -> str:
    """Graphviz DOT of the traced plan, costs inside each operator box."""
    from ..core.visualize import plan_to_dot

    def annotate(op: "Operator") -> str:
        record = trace.record_for(op)
        cards = ",".join(str(card) for card in record.input_cards) or "-"
        return (
            f"self {_ms(record.self_seconds)} · "
            f"cum {_ms(record.cumulative_seconds)}\n"
            f"in [{cards}] out {record.output_card}"
        )

    return plan_to_dot(trace.plan, title=title, annotate=annotate)
