"""EXPLAIN-ANALYZE-style renderings of a :class:`PlanTrace`.

``render_trace`` produces the annotated text tree the CLI ``profile``
command prints; ``trace_to_dot`` reuses the Graphviz plan renderer of
:mod:`repro.core.visualize`, annotating each operator box with its
measured costs; ``trace_to_json`` serialises the whole trace to a
JSON-ready dict (``profile --json``, the slow-query log) and
``render_trace_json`` renders that dict back into the annotated text
tree, so offline consumers (``repro tail --slow``) show the same
EXPLAIN ANALYZE view without the live plan objects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Set

from .model import OperatorTrace, PlanTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.base import Operator


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.3f}ms"


def _counters(record: OperatorTrace) -> str:
    return " ".join(
        f"{name}={value}" for name, value in sorted(record.counters.items())
    )


def _annotation(record: OperatorTrace) -> str:
    cards = ",".join(str(card) for card in record.input_cards) or "-"
    parts = [
        f"self {_ms(record.self_seconds)}",
        f"cum {_ms(record.cumulative_seconds)}",
        f"in [{cards}] out {record.output_card}",
    ]
    if record.batch:
        parts.append("batch")
    if record.memo_hits:
        parts.append(f"shared x{record.memo_hits + 1}")
    counters = _counters(record)
    if counters:
        parts.append(counters)
    return " · ".join(parts)


def render_trace(trace: PlanTrace, show_counters: bool = True) -> str:
    """The annotated plan tree, one operator per line.

    Mirrors ``Operator.describe`` / the analyzer's ``annotated_plan``:
    indentation follows the plan shape, each line is suffixed with the
    operator's measured costs, and a memoised sub-plan appears in full
    once — later references render as a one-line ``(shared)`` stub.
    """
    lines: List[str] = []
    seen: Set[int] = set()
    # explicit stack: traced plans can be deeper than the recursion limit
    stack = [(trace.root.index, 0)]
    while stack:
        index, depth = stack.pop()
        record = trace.records[index]
        pad = "  " * depth
        if index in seen:
            lines.append(f"{pad}{record.label()}  (shared)")
            continue
        seen.add(index)
        note = _annotation(record)
        if not show_counters:
            note = " · ".join(
                part for part in note.split(" · ") if "=" not in part
            )
        lines.append(f"{pad}{record.label()}   # {note}")
        for child in reversed(record.children):
            stack.append((child, depth + 1))
    total_self = trace.total_self_seconds()
    share = (
        f" ({total_self / trace.total_seconds:.0%} of wall)"
        if trace.total_seconds > 0
        else ""
    )
    shared = trace.shared_count()
    lines.append(
        f"-- total {_ms(trace.total_seconds)} · operator self "
        f"{_ms(total_self)}{share} · {len(trace.records)} operators"
        + (f", {shared} shared" if shared else "")
    )
    return "\n".join(lines)


def trace_to_json(trace: PlanTrace) -> Dict[str, Any]:
    """The whole trace as a JSON-ready dict (schema version 1).

    Everything ``render_trace`` shows survives the round trip: one
    record per operator (post order, ``children`` as record indexes),
    the wall/self-time totals, and the summed work counters.  The
    ``repro profile --json`` flag prints this payload and the
    slow-query log stores it; ``render_trace_json`` renders it back.
    """
    return {
        "version": 1,
        "total_seconds": trace.total_seconds,
        "operator_self_seconds": trace.total_self_seconds(),
        "operators": len(trace.records),
        "shared": trace.shared_count(),
        "counters_total": trace.counters_total(),
        "root": trace.root.index,
        "records": [
            {
                "index": record.index,
                "name": record.name,
                "params": record.params,
                "input_cards": list(record.input_cards),
                "output_card": record.output_card,
                "self_seconds": record.self_seconds,
                "cumulative_seconds": record.cumulative_seconds,
                "counters": dict(record.counters),
                "memo_hits": record.memo_hits,
                "batch": record.batch,
                "children": list(record.children),
            }
            for record in trace.records
        ],
    }


def render_trace_json(payload: Dict[str, Any]) -> str:
    """Annotated text tree from a ``trace_to_json`` payload.

    The offline twin of :func:`render_trace`: reconstructs the
    :class:`PlanTrace` records (minus the live plan object, which only
    ``trace_to_dot`` needs) and renders through the same code path, so
    the two views can never drift.
    """
    records = [
        OperatorTrace(
            index=entry["index"],
            name=entry["name"],
            params=entry["params"],
            input_cards=list(entry["input_cards"]),
            output_card=entry["output_card"],
            self_seconds=entry["self_seconds"],
            cumulative_seconds=entry["cumulative_seconds"],
            counters=dict(entry["counters"]),
            memo_hits=entry.get("memo_hits", 0),
            batch=entry.get("batch", False),
            children=list(entry["children"]),
        )
        for entry in payload["records"]
    ]
    trace = PlanTrace(
        records=records,
        total_seconds=payload["total_seconds"],
        plan=None,  # type: ignore[arg-type]  # text render never touches it
    )
    return render_trace(trace)


def trace_to_dot(trace: PlanTrace, title: str = "traced plan") -> str:
    """Graphviz DOT of the traced plan, costs inside each operator box."""
    from ..core.visualize import plan_to_dot

    def annotate(op: "Operator") -> str:
        record = trace.record_for(op)
        cards = ",".join(str(card) for card in record.input_cards) or "-"
        return (
            f"self {_ms(record.self_seconds)} · "
            f"cum {_ms(record.cumulative_seconds)}\n"
            f"in [{cards}] out {record.output_card}"
        )

    return plan_to_dot(trace.plan, title=title, annotate=annotate)
