"""Runtime execution tracing: per-operator costs for TLC/TAX/GTP plans.

The static analyzer (:mod:`repro.analysis`) checks a plan *before* it
runs; this package measures it *while* it runs.  ``evaluate(plan, ctx,
tracer)`` drives a :class:`Tracer`, which seals into a
:class:`PlanTrace` of per-operator wall times, cardinalities and
:class:`~repro.storage.stats.Metrics` counter deltas — surfaced through
``Engine.run(..., trace=True)``, ``Engine.measure(..., trace=True)`` and
the CLI ``profile`` command.
"""

from .model import OperatorTrace, PlanTrace
from .record import Tracer
from .render import (
    render_trace,
    render_trace_json,
    trace_to_dot,
    trace_to_json,
)

__all__ = [
    "OperatorTrace",
    "PlanTrace",
    "Tracer",
    "render_trace",
    "render_trace_json",
    "trace_to_dot",
    "trace_to_json",
]
