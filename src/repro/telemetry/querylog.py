"""Structured query log and the slow-query capture ring.

One :class:`QueryLogEvent` is emitted per service request: a JSON-ready
record carrying the trace id, the query hash and excerpt, the engine
and cache outcome, how the request ended (``ok`` / ``timeout`` /
``resource`` / ``cancelled`` / ``error``), its latency, and the
:class:`~repro.storage.stats.Metrics` counter deltas the request
accumulated.  Events land in a bounded in-memory ring (the ``/stats``
and ``repro tail`` views) and, when configured, as one JSON line per
event in a sink file — the format ``repro tail -f`` and ``repro stats
-f`` read back.

Slow requests additionally capture a full EXPLAIN ANALYZE
:class:`~repro.trace.PlanTrace` (serialised with
:func:`~repro.trace.render.trace_to_json`); those captures live in the
:class:`SlowQueryLog`, a second, smaller ring, so memory stays bounded
no matter how many queries cross the threshold.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Deque, Dict, List, Optional, Set

#: Longest query excerpt stored in an event (full text is recoverable
#: from the query hash by whoever issued it; the log stays compact).
EXCERPT_CHARS = 120

#: Default event-ring capacity.
DEFAULT_CAPACITY = 1024

#: Default slow-capture ring capacity.
DEFAULT_SLOW_CAPACITY = 32


def new_trace_id() -> str:
    """A fresh 16-hex-digit request correlation id."""
    return uuid.uuid4().hex[:16]


def query_hash(normalized_text: str) -> str:
    """Stable 12-hex-digit identity of a normalized query text."""
    digest = hashlib.sha256(normalized_text.encode("utf-8"))
    return digest.hexdigest()[:12]


def excerpt(text: str) -> str:
    """Whitespace-flattened query excerpt bounded to EXCERPT_CHARS."""
    flat = " ".join(text.split())
    if len(flat) <= EXCERPT_CHARS:
        return flat
    return flat[: EXCERPT_CHARS - 1] + "…"


@dataclass
class QueryLogEvent:
    """One request's structured log record (JSON-ready via to_dict)."""

    trace_id: str
    query_hash: str
    query: str                    #: excerpt, whitespace-flattened
    engine: str
    optimize: bool
    cache_hit: bool
    status: str              #: ok | timeout | resource | cancelled | error
    seconds: float
    result_trees: int
    slow: bool = False
    error: Optional[str] = None
    #: Metrics counter deltas over the request (non-zero entries only;
    #: approximate under concurrency, like the counters themselves)
    counters: Dict[str, int] = field(default_factory=dict)
    #: EXPLAIN ANALYZE capture (trace_to_json payload) for slow requests
    trace: Optional[dict] = None
    ts: float = field(default_factory=time.time)

    def to_dict(self) -> dict:
        payload = {
            "ts": round(self.ts, 6),
            "trace_id": self.trace_id,
            "query_hash": self.query_hash,
            "query": self.query,
            "engine": self.engine,
            "optimize": self.optimize,
            "cache_hit": self.cache_hit,
            "status": self.status,
            "ms": round(self.seconds * 1000, 3),
            "result_trees": self.result_trees,
            "slow": self.slow,
            "counters": self.counters,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload


class QueryLog:
    """Bounded ring of request events with an optional JSONL sink.

    The ring keeps the newest ``capacity`` events for in-process views;
    the sink file (when given) receives *every* event as one JSON line,
    flushed per event so ``tail -f`` style consumers see it promptly.
    Thread-safe: emits take one lock (events are built outside it).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sink: Optional[IO[str]] = None,
        sink_path: Optional[str] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("query log capacity must be positive")
        self.capacity = capacity
        self._events: Deque[QueryLogEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._sink = sink
        self._owns_sink = False
        self._emitted = 0
        if sink_path is not None:
            if sink is not None:
                raise ValueError("give either sink or sink_path, not both")
            self._sink = open(sink_path, "a", encoding="utf-8")
            self._owns_sink = True

    def emit(self, event: QueryLogEvent) -> None:
        line = None
        if self._sink is not None:
            line = json.dumps(event.to_dict(), sort_keys=True)
        with self._lock:
            self._events.append(event)
            self._emitted += 1
            if self._sink is not None and line is not None:
                self._sink.write(line + "\n")
                self._sink.flush()

    def tail(self, count: int = 20) -> List[QueryLogEvent]:
        """The newest ``count`` events, oldest first."""
        with self._lock:
            events = list(self._events)
        return events[-count:]

    @property
    def emitted(self) -> int:
        """Total events ever emitted (ring evictions included)."""
        with self._lock:
            return self._emitted

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def close(self) -> None:
        # under the lock: an emit racing close must either write to the
        # still-open sink or observe None, never a closed file
        with self._lock:
            if self._owns_sink and self._sink is not None:
                self._sink.close()
                self._sink = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<QueryLog {len(self)}/{self.capacity} "
            f"emitted={self.emitted}>"
        )


class SlowQueryLog:
    """Bounded ring of slow-request captures (event + full trace).

    Separate from the event ring so a burst of slow queries cannot push
    ordinary events out, and so the (much larger) trace payloads are
    capped at ``capacity`` regardless of traffic.  ``seen`` answers
    "was this query hash captured recently?" so the service re-captures
    a recurring slow query only after its old capture was evicted.
    """

    def __init__(self, capacity: int = DEFAULT_SLOW_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("slow log capacity must be positive")
        self.capacity = capacity
        self._records: Deque[QueryLogEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._captured = 0
        self._pending: Set[str] = set()

    def record(self, event: QueryLogEvent) -> None:
        with self._lock:
            self._records.append(event)
            self._captured += 1
            self._pending.discard(event.query_hash)

    def seen(self, query_hash: str) -> bool:
        """Whether a capture for this query hash is still in the ring."""
        with self._lock:
            return any(r.query_hash == query_hash for r in self._records)

    def should_capture(self, query_hash: str) -> bool:
        """Atomically claim the one trace capture for this query hash.

        True at most once per ring residency: while an event for the
        hash is resident — or another thread claimed the capture and
        has not recorded it yet — further claims return False.  Without
        the claim set, two concurrent slow occurrences of one query
        would both pass a ``seen()`` check and both pay the traced
        re-run.
        """
        with self._lock:
            if query_hash in self._pending:
                return False
            if any(r.query_hash == query_hash for r in self._records):
                return False
            self._pending.add(query_hash)
            return True

    def tail(self, count: int = 20) -> List[QueryLogEvent]:
        """The newest ``count`` captures, oldest first."""
        with self._lock:
            records = list(self._records)
        return records[-count:]

    @property
    def captured(self) -> int:
        """Total captures ever recorded (ring evictions included)."""
        with self._lock:
            return self._captured

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SlowQueryLog {len(self)}/{self.capacity} "
            f"captured={self.captured}>"
        )
