"""The single hook layer every instrumented subsystem calls.

The evaluator, pattern matcher, scan cache, prepared-plan cache,
structural-join fast path and the service request path do not talk to
the :class:`~repro.telemetry.registry.MetricsRegistry` directly — they
call :func:`instrument` with a *site* name, and this module maps sites
to metrics.  That keeps three properties in one place:

* **one off-switch** — :func:`set_enabled` (or the scoped
  :func:`disabled` context manager) turns every hook into a single
  boolean test; the telemetry-off overhead budget (< 5 % on ``bench
  fastpath``) is enforced by keeping that test first in every hook;
* **one catalog** — the site → metric mapping below *is* the metric
  name catalog documented in ``docs/OBSERVABILITY.md``; adding a site
  means adding one line here;
* **one registry** — :func:`get_registry` returns the process-wide
  registry; tests swap in a fresh one with :func:`use_registry` so
  their totals are isolated.

Suppression is thread-local on top of the global flag: the slow-query
capture re-runs a query with the tracer attached, and suppressing its
hooks on just that thread keeps registry totals equal to the number of
*client-visible* executions (which the concurrency-equivalence test
pins down).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from .registry import Histogram, MetricsRegistry

_registry = MetricsRegistry()
_enabled = True
_tls = threading.local()
#: Guards rebinds of the module state above.  Readers stay lock-free —
#: a hook observes either the old or the new binding, both consistent —
#: but two racing writers must not interleave their read-swap-return.
_state_lock = threading.Lock()

#: Histograms whose observations are cardinalities, not seconds: the
#: first bucket's upper bound is 1 tree rather than 100 µs.
_CARDINALITY_BASE = 1.0

#: site -> (kind, metric name, help text).  Counter sites increment by
#: ``value``; histogram sites observe ``value``.
SITES: Dict[str, Tuple[str, str, str]] = {
    "evaluator.run": (
        "counter",
        "repro_plan_executions_total",
        "Plan executions through the bottom-up evaluator",
    ),
    "evaluator.seconds": (
        "histogram",
        "repro_eval_seconds",
        "Wall time of one evaluate() call over a plan",
    ),
    "evaluator.trees": (
        "histogram",
        "repro_result_trees",
        "Output cardinality (trees) of one plan execution",
    ),
    "matcher.match": (
        "counter",
        "repro_pattern_matches_total",
        "Pattern-tree match calls (Select / anchored extension)",
    ),
    "matcher.trees": (
        "histogram",
        "repro_pattern_match_trees",
        "Witness trees produced by one pattern-match call",
    ),
    "scan_cache.hit": (
        "counter",
        "repro_scan_cache_hits_total",
        "Index scans answered from the query-scoped scan cache",
    ),
    "scan_cache.miss": (
        "counter",
        "repro_scan_cache_misses_total",
        "Index scans that built a fresh candidate list",
    ),
    "plan_cache.hit": (
        "counter",
        "repro_plan_cache_hits_total",
        "Prepared-plan lookups answered from the LRU",
    ),
    "plan_cache.miss": (
        "counter",
        "repro_plan_cache_misses_total",
        "Prepared-plan lookups that paid the full compile",
    ),
    "plan_cache.eviction": (
        "counter",
        "repro_plan_cache_evictions_total",
        "Prepared plans dropped by capacity or generation",
    ),
    "fastpath.enabled": (
        "gauge",
        "repro_fastpath_enabled",
        "Whether the columnar structural-join fast path is active",
    ),
    "service.request": (
        "counter",
        "repro_requests_total",
        "Service requests by engine and outcome",
    ),
    "service.seconds": (
        "histogram",
        "repro_request_seconds",
        "End-to-end service request latency",
    ),
    "service.slow": (
        "counter",
        "repro_slow_queries_total",
        "Requests over the slow-query threshold",
    ),
    "service.legacy_retry": (
        "counter",
        "repro_legacy_retries_total",
        "Requests retried on the legacy join path",
    ),
    "planner.bump": (
        "counter",
        "repro_planner_bumps_total",
        "Cached plans evicted by the feedback re-coster",
    ),
    "spans.request": (
        "counter",
        "repro_span_requests_total",
        "Requests recorded as full span trees",
    ),
    "spans.slow": (
        "counter",
        "repro_span_slow_captures_total",
        "Span captures auto-retained by the slow-query threshold",
    ),
    "spans.export": (
        "counter",
        "repro_span_exports_total",
        "Chrome-trace exports rendered (/trace and profile --spans)",
    ),
    "calibration.loaded": (
        "gauge",
        "repro_calibration_loaded",
        "Whether a measured cost-model calibration table is active",
    ),
    "calibration.applied": (
        "counter",
        "repro_calibration_applied_total",
        "Plans costed with calibrated (measured) constants",
    ),
}

_CARDINALITY_SITES = frozenset({"evaluator.trees", "matcher.trees"})


def enabled() -> bool:
    """Whether hooks record anything on this thread right now."""
    return _enabled and not getattr(_tls, "suppress", 0)


def set_enabled(flag: bool) -> bool:
    """Flip the process-wide switch; returns the previous setting."""
    global _enabled
    with _state_lock:
        previous = _enabled
        _enabled = bool(flag)
    return previous


@contextmanager
def disabled() -> Iterator[None]:
    """Suppress hooks on the *calling thread* for the duration.

    Thread-local on purpose: the slow-query capture uses this around
    its traced re-run without blinding concurrent requests' telemetry.
    """
    _tls.suppress = getattr(_tls, "suppress", 0) + 1
    try:
        yield
    finally:
        _tls.suppress -= 1


def get_registry() -> MetricsRegistry:
    """The process-wide registry every hook records into."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the previous one."""
    global _registry
    with _state_lock:
        previous = _registry
        _registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scoped registry swap (tests isolate their totals with this)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def instrument(
    site: str,
    value: float = 1.0,
    labels: Optional[Dict[str, str]] = None,
) -> None:
    """Record one observation at ``site`` (see :data:`SITES`).

    Counter sites add ``value``; histogram sites observe it; gauge
    sites set it.  Unknown sites raise ``KeyError`` — a typo in an
    instrumented layer should fail tests, not silently drop data.
    A disabled hook is one boolean test and a thread-local read.
    """
    if not _enabled or getattr(_tls, "suppress", 0):
        return
    kind, name, help = SITES[site]
    if kind == "counter":
        _registry.counter(name, labels, help).inc(value)
    elif kind == "histogram":
        base = (
            _CARDINALITY_BASE if site in _CARDINALITY_SITES else 1e-4
        )
        _registry.histogram(name, labels, help, base=base).observe(value)
    else:
        _registry.gauge(name, labels, help).set(value)


def new_latency_histogram() -> Histogram:
    """A free-standing latency histogram (service-local percentiles)."""
    return Histogram(base=1e-4, buckets=28)
