"""Request spans: one trace per request, across the worker boundary.

The query log answers *what* happened to a request; a span tree answers
*where its time went*: parse → plan-cache lookup → planner → queue wait
→ dispatch (payload serialize, IPC, worker-side deserialize, execute,
result serialize) → merge.  Each service request gets a 16-hex trace id
(the same id its :class:`~repro.telemetry.querylog.QueryLogEvent`
carries, so log lines join against exported span files), a
:class:`SpanRecorder` builds the tree, and finished captures land in a
bounded :class:`SpanStore` served by ``/trace/<id>`` and exported as
Chrome-trace-event JSON (Perfetto-loadable) by :func:`to_chrome_trace`.

**Clock model.**  Spans are recorded against ``time.perf_counter`` —
monotonic, high-resolution, but *process-relative*: a worker process's
perf clock shares no epoch with the dispatcher's.  Every recorder (and
every worker-side capture in :mod:`repro.service.pool`) therefore
anchors one ``(perf_counter, time.time())`` pair at birth; remote spans
ship wall-clock endpoints and :meth:`SpanRecorder.add_remote` maps them
onto the dispatcher's timeline through the shared wall clock (same
host), clamping into the enclosing dispatch span's window so bounded
wall-clock skew can reorder nothing.  The reconciliation is identical
under ``fork`` and ``spawn`` — neither start method shares a monotonic
epoch with the parent.

**Overhead model.**  Like the metric hooks, spans sit behind one
process-wide flag: with spans disabled the service's per-request cost
is a single boolean test (no recorder is allocated), which is what
keeps the spans-off ``bench service`` overhead inside the ≤2% budget.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .querylog import new_trace_id

#: Finished captures the store keeps (FIFO ring; slow ones ride a
#: second, smaller ring so a burst of fast requests cannot evict them).
DEFAULT_SPAN_CAPACITY = 256
DEFAULT_SLOW_SPAN_CAPACITY = 32

#: Environment toggle: ``REPRO_SPANS=1`` arms span recording without
#: touching call sites (mirrors ``REPRO_BATCH`` / ``REPRO_PLANNER``).
_ENV_FLAG = "REPRO_SPANS"

_enabled = os.environ.get(_ENV_FLAG, "0").lower() in ("1", "true", "yes")
#: Guards rebinds of the flag (readers stay lock-free, like hooks.py).
_state_lock = threading.Lock()

_tls = threading.local()


def spans_enabled() -> bool:
    """Whether services record span trees for their requests."""
    return _enabled


def set_spans(flag: bool) -> bool:
    """Flip the process-wide spans switch; returns the previous value."""
    global _enabled
    with _state_lock:
        previous = _enabled
        _enabled = bool(flag)
    return previous


@contextmanager
def use_spans(flag: bool = True) -> Iterator[None]:
    """Scoped spans toggle (tests and benchmarks sweep with this)."""
    previous = set_spans(flag)
    try:
        yield
    finally:
        set_spans(previous)


@dataclass
class Span:
    """One timed phase of a request, on the trace's shared timeline.

    ``start``/``end`` are seconds since the capture's wall anchor
    (``SpanCapture.wall0``); ``pid`` distinguishes dispatcher-side
    spans from worker-side ones in the Chrome export.
    """

    sid: int
    name: str
    start: float
    end: Optional[float] = None
    parent: Optional[int] = None
    pid: int = 0
    tags: Dict[str, Any] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def to_dict(self) -> dict:
        payload: Dict[str, Any] = {
            "sid": self.sid,
            "name": self.name,
            "start_ms": round(self.start * 1000, 4),
            "ms": round(self.seconds * 1000, 4),
            "pid": self.pid,
        }
        if self.parent is not None:
            payload["parent"] = self.parent
        if self.tags:
            payload["tags"] = dict(self.tags)
        return payload


@dataclass
class SpanCapture:
    """A finished request's span tree (immutable once stored)."""

    trace_id: str
    wall0: float                 #: wall-clock epoch of timeline zero
    spans: List[Span]
    status: str = "ok"
    slow: bool = False

    @property
    def seconds(self) -> float:
        return max((s.end or s.start) for s in self.spans) if self.spans else 0.0

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "ts": round(self.wall0, 6),
            "status": self.status,
            "slow": self.slow,
            "ms": round(self.seconds * 1000, 4),
            "spans": [span.to_dict() for span in self.spans],
        }


class SpanRecorder:
    """Builds one request's span tree; thread-safe by construction.

    A request's phases run on more than one thread (the submitting
    thread prepares, a pool thread executes), but never concurrently —
    the lock serialises the hand-off points, and the parent stack lives
    on the recorder (not per-thread) because the phases form one
    sequential chain.
    """

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.wall0 = time.time()
        self._perf0 = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._stack: List[int] = []
        root = self._begin_locked("request", parent=None)
        self._root = root

    # -- timeline ------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._perf0

    def now(self) -> float:
        """The current instant on this recorder's timeline (seconds)."""
        return self._now()

    def start_of(self, sid: int) -> float:
        """Timeline start of span ``sid`` (the dispatch clamp window)."""
        with self._lock:
            return self._spans[sid].start

    def _begin_locked(
        self,
        name: str,
        parent: Optional[int],
        tags: Optional[Dict[str, Any]] = None,
    ) -> int:
        with self._lock:
            sid = len(self._spans)
            if parent is None and self._stack:
                parent = self._stack[-1]
            self._spans.append(
                Span(
                    sid=sid,
                    name=name,
                    start=self._now(),
                    parent=parent,
                    pid=os.getpid(),
                    tags=dict(tags) if tags else {},
                )
            )
            self._stack.append(sid)
            return sid

    def begin(
        self, name: str, tags: Optional[Dict[str, Any]] = None
    ) -> int:
        """Open a span under the current innermost open span."""
        return self._begin_locked(name, parent=None, tags=tags)

    def end(self, sid: int, tags: Optional[Dict[str, Any]] = None) -> None:
        """Close span ``sid`` (idempotent; later closes are ignored)."""
        now = self._now()
        with self._lock:
            span = self._spans[sid]
            if span.end is None:
                span.end = now
                if tags:
                    span.tags.update(tags)
            if sid in self._stack:
                # pop through it: abandoned children close with it
                while self._stack and self._stack[-1] != sid:
                    dangling = self._spans[self._stack.pop()]
                    if dangling.end is None:
                        dangling.end = now
                if self._stack:
                    self._stack.pop()

    @contextmanager
    def span(
        self, name: str, tags: Optional[Dict[str, Any]] = None
    ) -> Iterator[int]:
        sid = self.begin(name, tags=tags)
        try:
            yield sid
        finally:
            self.end(sid)

    def annotate(self, sid: int, **tags: Any) -> None:
        with self._lock:
            self._spans[sid].tags.update(tags)

    def record(
        self,
        name: str,
        start: float,
        end: float,
        parent: Optional[int] = None,
        pid: int = 0,
        tags: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Append a pre-measured span (timeline-relative endpoints)."""
        with self._lock:
            sid = len(self._spans)
            self._spans.append(
                Span(
                    sid=sid,
                    name=name,
                    start=start,
                    end=max(end, start),
                    parent=parent,
                    pid=pid or os.getpid(),
                    tags=dict(tags) if tags else {},
                )
            )
            return sid

    # -- cross-process reconciliation ----------------------------------
    def wall_to_timeline(self, wall: float) -> float:
        """Map a shared-host wall-clock instant onto this timeline."""
        return wall - self.wall0

    def add_remote(
        self,
        records: Sequence[Dict[str, Any]],
        parent: int,
        pid: int,
        window: Optional[Tuple[float, float]] = None,
    ) -> List[int]:
        """Merge a worker's span records under ``parent``.

        ``records`` carry wall-clock ``start``/``end`` endpoints (the
        worker anchored its perf clock to the wall once per request);
        they are mapped through the shared wall clock and clamped into
        ``window`` — the enclosing dispatch span's timeline interval —
        so bounded wall-clock skew cannot push a worker span outside
        the phase that contains it.
        """
        sids: List[int] = []
        by_name: Dict[str, int] = {}
        for rec in records:
            start = self.wall_to_timeline(float(rec["start"]))
            end = self.wall_to_timeline(float(rec["end"]))
            if window is not None:
                lo, hi = window
                start = min(max(start, lo), hi)
                end = min(max(end, start), hi)
            rec_parent = parent
            remote_parent = rec.get("parent")
            if remote_parent is not None and remote_parent in by_name:
                rec_parent = by_name[remote_parent]
            sid = self.record(
                str(rec["name"]),
                start,
                end,
                parent=rec_parent,
                pid=pid,
                tags=rec.get("tags"),
            )
            by_name[str(rec["name"])] = sid
            sids.append(sid)
        return sids

    # -- lifecycle ------------------------------------------------------
    def finish(self, status: str = "ok", slow: bool = False) -> SpanCapture:
        """Close every open span and freeze the capture."""
        now = self._now()
        with self._lock:
            self._stack.clear()
            for span in self._spans:
                if span.end is None:
                    span.end = now
            self._spans[self._root].tags.setdefault("status", status)
            return SpanCapture(
                trace_id=self.trace_id,
                wall0=self.wall0,
                spans=list(self._spans),
                status=status,
                slow=slow,
            )


# ---------------------------------------------------------------------------
# thread-current recorder: lets deep layers (Engine.plan) add spans
# without threading a recorder through every signature
# ---------------------------------------------------------------------------
def current_recorder() -> Optional[SpanRecorder]:
    """The recorder bound to this thread, if a request is being traced."""
    return getattr(_tls, "recorder", None)


@contextmanager
def bind_recorder(recorder: Optional[SpanRecorder]) -> Iterator[None]:
    """Bind ``recorder`` as this thread's current one for the scope."""
    previous = getattr(_tls, "recorder", None)
    _tls.recorder = recorder
    try:
        yield
    finally:
        _tls.recorder = previous


@contextmanager
def span(name: str, **tags: Any) -> Iterator[None]:
    """Record a span on the thread-current recorder; no-op untraced.

    This is the hook deep layers call: when the thread is not serving
    a traced request it costs one thread-local read.
    """
    recorder = getattr(_tls, "recorder", None)
    if recorder is None:
        yield
        return
    sid = recorder.begin(name, tags=tags or None)
    try:
        yield
    finally:
        recorder.end(sid)


# ---------------------------------------------------------------------------
# the store behind /trace/<id>
# ---------------------------------------------------------------------------
class SpanStore:
    """Bounded ring of finished captures, keyed by trace id.

    Two rings: every capture enters the main FIFO; slow captures are
    *also* retained in a smaller dedicated ring (the auto-capture
    surface), so a flood of fast requests cannot evict the slow trace
    an operator is about to ask for.  ``get`` checks both.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_SPAN_CAPACITY,
        slow_capacity: int = DEFAULT_SLOW_SPAN_CAPACITY,
    ) -> None:
        if capacity <= 0 or slow_capacity <= 0:
            raise ValueError("span store capacities must be positive")
        self.capacity = capacity
        self.slow_capacity = slow_capacity
        self._lock = threading.Lock()
        self._captures: "OrderedDict[str, SpanCapture]" = OrderedDict()
        self._slow: "OrderedDict[str, SpanCapture]" = OrderedDict()
        self._stored = 0
        self._dropped = 0

    def put(self, capture: SpanCapture) -> None:
        with self._lock:
            self._captures[capture.trace_id] = capture
            self._stored += 1
            while len(self._captures) > self.capacity:
                self._captures.popitem(last=False)
                self._dropped += 1
            if capture.slow:
                self._slow[capture.trace_id] = capture
                while len(self._slow) > self.slow_capacity:
                    self._slow.popitem(last=False)

    def get(self, trace_id: str) -> Optional[SpanCapture]:
        with self._lock:
            capture = self._captures.get(trace_id)
            if capture is None:
                capture = self._slow.get(trace_id)
            return capture

    def ids(self) -> List[str]:
        """Resident trace ids, oldest first (slow-only ones last)."""
        with self._lock:
            ids = list(self._captures)
            ids.extend(t for t in self._slow if t not in self._captures)
            return ids

    def tail(self, count: int = 50) -> List[SpanCapture]:
        with self._lock:
            captures = list(self._captures.values())
        return captures[-count:]

    @property
    def stored(self) -> int:
        with self._lock:
            return self._stored

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._captures)


# ---------------------------------------------------------------------------
# Chrome trace-event export (Perfetto-loadable)
# ---------------------------------------------------------------------------
def _depth(span: Span, spans: List[Span]) -> int:
    depth = 0
    parent = span.parent
    seen = 0
    while parent is not None and seen <= len(spans):
        depth += 1
        parent = spans[parent].parent
        seen += 1
    return depth


def to_chrome_trace(captures: Sequence[SpanCapture]) -> dict:
    """Captures → Chrome trace-event JSON (``B``/``E`` duration pairs).

    Contract (the CI round-trip check pins it): event ``ts`` values are
    non-decreasing over the whole list, and within every ``(pid, tid)``
    track the ``B``/``E`` events form a properly nested matching —
    walk the list with a stack and every ``E`` closes the ``B`` on top.
    Timestamps are microseconds on each capture's own timeline, offset
    so concurrent captures do not interleave tracks (one request = one
    dispatcher track + one track per worker pid it touched).
    """
    events: List[Tuple[float, int, int, dict]] = []
    names: Dict[Tuple[int, str], None] = {}
    offset_us = 0.0
    for capture in captures:
        spans = capture.spans
        for span_obj in spans:
            start_us = offset_us + span_obj.start * 1e6
            end_span = span_obj.end if span_obj.end is not None else span_obj.start
            # a strictly positive duration keeps E sorted after B
            end_us = max(offset_us + end_span * 1e6, start_us + 0.001)
            depth = _depth(span_obj, spans)
            tid = 0
            args: Dict[str, Any] = {"trace_id": capture.trace_id}
            args.update(span_obj.tags)
            common = {
                "name": span_obj.name,
                "cat": "repro",
                "pid": span_obj.pid,
                "tid": tid,
            }
            names.setdefault((span_obj.pid, capture.trace_id), None)
            # sort keys: ts, then E(0) before B(1); among same-ts B's the
            # shallower (parent) first, among same-ts E's the deeper first
            events.append(
                (round(start_us, 3), 1, depth, {**common, "ph": "B", "args": args})
            )
            events.append((round(end_us, 3), 0, -depth, {**common, "ph": "E"}))
        if spans:
            offset_us += (
                max((s.end or s.start) for s in spans) * 1e6 + 1000.0
            )
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    trace_events: List[dict] = []
    for pid, trace_id in names:
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid} ({trace_id})"},
            }
        )
    for ts, _, _, payload in events:
        payload = dict(payload)
        payload["ts"] = ts
        trace_events.append(payload)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def check_chrome_trace(payload: dict) -> List[str]:
    """Schema sanity of a Chrome trace export; returns problem strings.

    The contract :func:`to_chrome_trace` promises: non-decreasing
    ``ts`` over the event list, and per-``(pid, tid)`` ``B``/``E``
    events that match up as a properly nested stack.  Used by the CI
    telemetry-smoke round-trip and the unit tests; an empty list means
    the export is well-formed.
    """
    problems: List[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    last_ts: Optional[float] = None
    stacks: Dict[Tuple[int, int], List[str]] = {}
    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i}: non-numeric ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(f"event {i}: ts {ts} < previous {last_ts}")
        last_ts = float(ts)
        track = (event.get("pid"), event.get("tid"))
        stack = stacks.setdefault(track, [])
        if ph == "B":
            stack.append(event.get("name", "?"))
        elif ph == "E":
            if not stack:
                problems.append(f"event {i}: E with empty stack on {track}")
            elif stack[-1] != event.get("name", stack[-1]):
                problems.append(
                    f"event {i}: E {event.get('name')!r} does not close "
                    f"B {stack[-1]!r} on {track}"
                )
                stack.pop()
            else:
                stack.pop()
        else:
            problems.append(f"event {i}: unknown phase {ph!r}")
    for track, stack in stacks.items():
        if stack:
            problems.append(f"track {track}: unclosed spans {stack}")
    return problems
