"""Prometheus text-format exposition of a metrics registry.

Renders the registry (plus any extra single-value families, e.g. the
``Metrics`` work counters read at scrape time) in the Prometheus
text exposition format 0.0.4: ``# HELP`` / ``# TYPE`` headers, one
sample per line, histograms as cumulative ``_bucket{le=...}`` series
with ``_sum`` and ``_count``.  The companion parser in
``tools/promformat.py`` (stdlib only) validates exactly this output in
CI's telemetry smoke job.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .registry import HistogramSnapshot, LabelSet, MetricsRegistry

#: Content type the /metrics endpoint serves.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: One extra family: (name, help, type, [(labels, value), ...]).
ExtraFamily = Tuple[
    str, str, str, Sequence[Tuple[Optional[Dict[str, str]], float]]
]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _labels_text(labelset: LabelSet, extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in labelset]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(
    registry: MetricsRegistry,
    extras: Sequence[ExtraFamily] = (),
) -> str:
    """The registry (and extras) as Prometheus exposition text."""
    lines: List[str] = []

    def header(name: str, help: str, kind: str) -> None:
        lines.append(f"# HELP {name} {_escape_help(help)}")
        lines.append(f"# TYPE {name} {kind}")

    grouped_counters: Dict[str, List[Tuple[LabelSet, float]]] = {}
    for name, labelset, value in registry.counters():
        grouped_counters.setdefault(name, []).append((labelset, value))
    for name, series in grouped_counters.items():
        header(name, registry.help_for(name), "counter")
        for labelset, value in series:
            lines.append(
                f"{name}{_labels_text(labelset)} {_format_value(value)}"
            )

    grouped_gauges: Dict[str, List[Tuple[LabelSet, float]]] = {}
    for name, labelset, value in registry.gauges():
        grouped_gauges.setdefault(name, []).append((labelset, value))
    for name, series in grouped_gauges.items():
        header(name, registry.help_for(name), "gauge")
        for labelset, value in series:
            lines.append(
                f"{name}{_labels_text(labelset)} {_format_value(value)}"
            )

    grouped_hists: Dict[str, List[Tuple[LabelSet, HistogramSnapshot]]] = {}
    for name, labelset, snap in registry.histograms():
        grouped_hists.setdefault(name, []).append((labelset, snap))
    for name, hist_series in grouped_hists.items():
        header(name, registry.help_for(name), "histogram")
        for labelset, snap in hist_series:
            for bound, cumulative in snap.cumulative():
                le = _format_value(bound)
                labels = _labels_text(labelset, f'le="{le}"')
                lines.append(f"{name}_bucket{labels} {cumulative}")
            labels = _labels_text(labelset)
            lines.append(f"{name}_sum{labels} {_format_value(snap.sum)}")
            lines.append(
                f"{name}_count{labels} {_format_value(snap.count)}"
            )

    for name, help, kind, series2 in extras:
        header(name, help, kind)
        for labels_dict, value in series2:
            labelset: LabelSet = tuple(sorted(
                (str(k), str(v)) for k, v in (labels_dict or {}).items()
            ))
            lines.append(
                f"{name}{_labels_text(labelset)} {_format_value(value)}"
            )

    return "\n".join(lines) + "\n"


def work_counter_families(counters: Dict[str, int]) -> List[ExtraFamily]:
    """The ``Metrics`` snapshot as one-sample counter families.

    The shared work counters (pages read, structural joins, scan-cache
    hits, …) are read at scrape time rather than mirrored per
    increment — they live on the storage hot path where even a sharded
    lock would be felt.  Their best-effort accuracy under concurrency
    is documented on :class:`~repro.storage.stats.Metrics`.
    """
    return [
        (
            f"repro_work_{name}_total",
            f"Work counter Metrics.{name} (best-effort under concurrency)",
            "counter",
            [(None, float(value))],
        )
        for name, value in sorted(counters.items())
    ]
