"""Unified telemetry: metrics registry, query log, slow-query capture.

The observability layer of the reproduction (DESIGN.md §12).  Three
pieces, all stdlib-only:

* a process-wide :class:`MetricsRegistry` of counters, gauges and
  log2-bucketed :class:`Histogram` distributions (p50/p95/p99),
  updated through the :func:`instrument` hook layer that the
  evaluator, pattern matcher, scan cache, prepared-plan cache,
  structural-join fast path and service request path call;
* a structured :class:`QueryLog` — one JSON event per service request
  (trace id, query hash, engine, cache outcome, status, latency,
  ``Metrics`` counter deltas) — ring-buffered with an optional JSONL
  sink file;
* a :class:`SlowQueryLog` that holds full EXPLAIN ANALYZE captures of
  requests over the slow threshold, bounded to a small ring.

Exposition: Prometheus text via :func:`render_prometheus` and the
embedded :class:`TelemetryServer` (``/metrics``, ``/stats``,
``/healthz``, ``/slow`` on the ``serve`` subcommand), JSON via
``MetricsRegistry.snapshot`` and the ``repro stats`` / ``repro tail``
CLI.
"""

from .exposition import CONTENT_TYPE, render_prometheus
from .http import TelemetryServer
from .hooks import (
    SITES,
    disabled,
    enabled,
    get_registry,
    instrument,
    set_enabled,
    set_registry,
    use_registry,
)
from .querylog import (
    QueryLog,
    QueryLogEvent,
    SlowQueryLog,
    excerpt,
    new_trace_id,
    query_hash,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
)
from .spans import (
    Span,
    SpanCapture,
    SpanRecorder,
    SpanStore,
    bind_recorder,
    check_chrome_trace,
    current_recorder,
    set_spans,
    span,
    spans_enabled,
    to_chrome_trace,
    use_spans,
)

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "QueryLog",
    "QueryLogEvent",
    "SITES",
    "SlowQueryLog",
    "Span",
    "SpanCapture",
    "SpanRecorder",
    "SpanStore",
    "TelemetryServer",
    "bind_recorder",
    "check_chrome_trace",
    "current_recorder",
    "disabled",
    "enabled",
    "excerpt",
    "get_registry",
    "instrument",
    "new_trace_id",
    "query_hash",
    "render_prometheus",
    "set_enabled",
    "set_registry",
    "set_spans",
    "span",
    "spans_enabled",
    "to_chrome_trace",
    "use_registry",
    "use_spans",
]
