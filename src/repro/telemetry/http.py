"""Embedded HTTP exposition: metrics, stats, traces and workers.

A tiny stdlib ``ThreadingHTTPServer`` running on a daemon thread next
to a :class:`~repro.service.QueryService`.  It serves:

* ``GET /metrics`` — the process-wide registry plus the ``Metrics``
  work counters, Prometheus text format (scrape this);
* ``GET /stats``   — JSON: service lifetime counters, plan-cache
  snapshot, per-query-class latency percentiles, registry snapshot;
* ``GET /healthz`` — liveness: ``{"status": "ok", ...}``;
* ``GET /slow``    — JSON: the slow-query ring, newest last, each
  entry carrying its captured per-operator trace;
* ``GET /trace``   — JSON: resident span captures (trace ids + spans);
* ``GET /trace/<id>`` — one capture as Chrome-trace-event JSON — save
  the body and load it in Perfetto / ``chrome://tracing``;
* ``GET /workers`` — JSON: per-worker-process introspection (requests
  served, plans cached by plan hash, snapshot load ms, heartbeat).

The server binds ``127.0.0.1`` by default — telemetry is an operator
surface, not a public one — and ``port=0`` picks an ephemeral port
(the bound address is reported by :meth:`TelemetryServer.start`).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, List, Optional, Tuple

from .exposition import CONTENT_TYPE, render_prometheus
from .exposition import work_counter_families
from .hooks import get_registry, instrument
from .spans import to_chrome_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..service.service import QueryService


class TelemetryServer:
    """HTTP exposition for one query service (start / address / close)."""

    def __init__(
        self,
        service: "QueryService",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._lock = threading.Lock()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = time.time()

    # ------------------------------------------------------------------
    # payload builders (also used by tests without a socket)
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        extras = work_counter_families(
            self.service.db.metrics.snapshot()
        )
        extras.append(
            (
                "repro_service_threads",
                "Worker threads of the query service pool",
                "gauge",
                [(None, float(self.service.threads))],
            )
        )
        extras.append(
            (
                "repro_plan_cache_size",
                "Prepared plans currently resident in the LRU",
                "gauge",
                [(None, float(len(self.service.cache)))],
            )
        )
        extras.append(
            (
                "repro_slow_log_size",
                "Captures currently held by the slow-query ring",
                "gauge",
                [(None, float(len(self.service.slow_log)))],
            )
        )
        extras.append(
            (
                "repro_span_store_size",
                "Span captures currently resident behind /trace",
                "gauge",
                [(None, float(len(self.service.span_store)))],
            )
        )
        workers = self.service.workers()
        extras.append(
            (
                "repro_workers_in_flight",
                "Requests currently dispatched to worker processes",
                "gauge",
                [(None, float(workers["in_flight"]))],
            )
        )
        if workers["workers"]:
            extras.append(
                (
                    "repro_worker_requests",
                    "Requests served, per worker process",
                    "gauge",
                    [
                        (
                            {"pid": str(entry["pid"])},
                            float(entry["requests"]),
                        )
                        for entry in workers["workers"]
                    ],
                )
            )
            extras.append(
                (
                    "repro_worker_snapshot_load_ms",
                    "Database materialization time per worker process",
                    "gauge",
                    [
                        (
                            {"pid": str(entry["pid"])},
                            float(entry["snapshot_load_ms"] or 0.0),
                        )
                        for entry in workers["workers"]
                    ],
                )
            )
        return render_prometheus(get_registry(), extras)

    def stats_payload(self) -> dict:
        return {
            "service": self.service.stats().to_dict(),
            "registry": get_registry().snapshot(),
            "uptime_seconds": round(time.time() - self._started, 3),
        }

    def health_payload(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self._started, 3),
            "threads": self.service.threads,
        }

    def slow_payload(self) -> dict:
        records = self.service.slow_log.tail(self.service.slow_log.capacity)
        return {
            "captured": self.service.slow_log.captured,
            "slow": [record.to_dict() for record in records],
        }

    def trace_index_payload(self) -> dict:
        store = self.service.span_store
        return {
            "spans_enabled": self.service.spans,
            "stored": store.stored,
            "dropped": store.dropped,
            "traces": [cap.to_dict() for cap in store.tail()],
        }

    def trace_payload(self, trace_id: str) -> Optional[dict]:
        """One capture as Chrome-trace JSON; None when not resident."""
        capture = self.service.span_store.get(trace_id)
        if capture is None:
            return None
        instrument("spans.export")
        return to_chrome_trace([capture])

    def workers_payload(self) -> dict:
        return self.service.workers()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind and serve on a daemon thread; returns (host, port)."""
        server = self

        class Handler(BaseHTTPRequestHandler):
            def _send(
                self, body: bytes, content_type: str, status: int = 200
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 - stdlib contract
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        self._send(
                            server.metrics_text().encode("utf-8"),
                            CONTENT_TYPE,
                        )
                    elif path == "/stats":
                        self._send(
                            _json_bytes(server.stats_payload()),
                            "application/json",
                        )
                    elif path == "/healthz":
                        self._send(
                            _json_bytes(server.health_payload()),
                            "application/json",
                        )
                    elif path == "/slow":
                        self._send(
                            _json_bytes(server.slow_payload()),
                            "application/json",
                        )
                    elif path == "/trace":
                        self._send(
                            _json_bytes(server.trace_index_payload()),
                            "application/json",
                        )
                    elif path.startswith("/trace/"):
                        trace_id = path[len("/trace/"):]
                        payload = server.trace_payload(trace_id)
                        if payload is None:
                            self._send(
                                _json_bytes(
                                    {
                                        "error": "unknown trace id",
                                        "trace_id": trace_id,
                                        "resident": (
                                            server.service.span_store.ids()
                                        ),
                                    }
                                ),
                                "application/json",
                                status=404,
                            )
                        else:
                            self._send(
                                _json_bytes(payload),
                                "application/json",
                            )
                    elif path == "/workers":
                        self._send(
                            _json_bytes(server.workers_payload()),
                            "application/json",
                        )
                    else:
                        self._send(
                            _json_bytes(
                                {
                                    "error": "not found",
                                    "endpoints": ENDPOINTS,
                                }
                            ),
                            "application/json",
                            status=404,
                        )
                except Exception as error:  # pragma: no cover - defensive
                    self._send(
                        _json_bytes({"error": str(error)}),
                        "application/json",
                        status=500,
                    )

            def log_message(self, *args) -> None:  # silence stderr
                pass

        with self._lock:
            if self._httpd is not None:
                raise RuntimeError("telemetry server already started")
            self._httpd = ThreadingHTTPServer(
                (self.host, self.port), Handler
            )
            self._httpd.daemon_threads = True
            self.port = self._httpd.server_address[1]
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-telemetry",
                daemon=True,
            )
            self._thread.start()
            return (self.host, self.port)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        # detach under the lock so two racing closers cannot both
        # shut the same server down; the blocking shutdown/join happen
        # outside it
        with self._lock:
            httpd, self._httpd = self._httpd, None
            thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5)

    def __enter__(self) -> "TelemetryServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Paths the server answers (listed in 404 responses and the docs).
ENDPOINTS: List[str] = [
    "/metrics",
    "/stats",
    "/healthz",
    "/slow",
    "/trace",
    "/trace/<id>",
    "/workers",
]


def _json_bytes(payload: dict) -> bytes:
    return json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
