"""Process-wide metrics: counters, gauges and log2-bucketed histograms.

The paper's evaluation argues for TLC by *measuring* operator work; a
service serving that workload needs the same numbers continuously, not
per benchmark run.  :class:`MetricsRegistry` is the aggregation point:
named metrics, optionally labelled (``engine="tlc"``), that every
instrumented layer updates through :mod:`repro.telemetry.instrument`
and that the exposition layer renders as Prometheus text or JSON.

Concurrency model.  The 8-thread service sweep must not serialise on a
single metrics mutex, and — unlike the best-effort ``Metrics`` work
counters — telemetry totals must be *exact* (the concurrency test
compares an 8-thread sweep's totals against a serial run).  Every
metric therefore stripes its state over :data:`SHARDS` independently
locked cells; a writer locks only the cell its thread hashes to, so
two threads contend only on an identity-hash collision, and readers
take all cell locks to produce a consistent merged value.

Histograms use base-2 exponential buckets: bucket *i* counts
observations in ``(base * 2**(i-1), base * 2**i]``.  That covers
sub-millisecond evaluator calls and multi-second slow queries in ~30
buckets, and percentile estimates interpolate inside one bucket, so
p50/p95/p99 are accurate to within a factor-2 bucket width at worst
(exact ``sum``/``count``/``min``/``max`` are tracked alongside).
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Lock stripes per metric (a power of two; threads hash to one stripe).
SHARDS = 8

#: Label sets are carried as sorted tuples so they hash and render
#: deterministically.
LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Optional[Dict[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _shard_index() -> int:
    return threading.get_ident() % SHARDS


class Counter:
    """A monotonically increasing value, striped over sharded locks."""

    def __init__(self) -> None:
        self._locks = [threading.Lock() for _ in range(SHARDS)]
        self._cells = [0.0] * SHARDS

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        i = _shard_index()
        with self._locks[i]:
            self._cells[i] += amount

    @property
    def value(self) -> float:
        total = 0.0
        for i in range(SHARDS):
            with self._locks[i]:
                total += self._cells[i]
        return total


class Gauge:
    """A value that can go up and down (one lock; sets don't stripe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _HistogramCell:
    """One lock stripe of a histogram: bucket counts plus exact moments."""

    __slots__ = ("lock", "counts", "sum", "count", "min", "max")

    def __init__(self, buckets: int) -> None:
        self.lock = threading.Lock()
        self.counts = [0] * buckets
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")


class Histogram:
    """Log2-bucketed distribution with percentile estimation.

    ``base`` is the upper bound of the first bucket; bucket ``i`` has
    upper bound ``base * 2**i`` and the last bucket is the +Inf
    overflow.  The default (100 µs × 28 buckets ≈ up to 3.7 h) suits
    wall-clock latencies in seconds; cardinality histograms pass
    ``base=1``.
    """

    def __init__(self, base: float = 1e-4, buckets: int = 28) -> None:
        if base <= 0 or buckets < 2:
            raise ValueError("histogram needs base > 0 and >= 2 buckets")
        self.base = base
        #: inclusive upper bounds, finite part (the +Inf bucket is extra)
        self.bounds: List[float] = [base * (2 ** i) for i in range(buckets)]
        self._cells = [_HistogramCell(buckets + 1) for _ in range(SHARDS)]

    def _bucket(self, value: float) -> int:
        return bisect.bisect_left(self.bounds, value)

    def observe(self, value: float) -> None:
        cell = self._cells[_shard_index()]
        index = self._bucket(value)
        with cell.lock:
            cell.counts[index] += 1
            cell.sum += value
            cell.count += 1
            if value < cell.min:
                cell.min = value
            if value > cell.max:
                cell.max = value

    # -- merged views ---------------------------------------------------
    def snapshot(self) -> "HistogramSnapshot":
        counts = [0] * (len(self.bounds) + 1)
        total = 0.0
        count = 0
        lo = float("inf")
        hi = float("-inf")
        for cell in self._cells:
            with cell.lock:
                for i, c in enumerate(cell.counts):
                    counts[i] += c
                total += cell.sum
                count += cell.count
                lo = min(lo, cell.min)
                hi = max(hi, cell.max)
        return HistogramSnapshot(
            bounds=list(self.bounds),
            counts=counts,
            sum=total,
            count=count,
            min=lo if count else 0.0,
            max=hi if count else 0.0,
        )

    @property
    def count(self) -> int:
        return self.snapshot().count

    def percentile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1]."""
        return self.snapshot().percentile(q)

    # -- cross-process shipping ------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """Picklable copy of this histogram's merged state.

        ``min``/``max`` are ``None`` while empty (the ±Inf sentinels do
        not survive a JSON hop and 0.0 would corrupt a later merge).
        """
        snap = self.snapshot()
        return {
            "base": self.base,
            "buckets": len(self.bounds),
            "counts": list(snap.counts),
            "sum": snap.sum,
            "count": snap.count,
            "min": snap.min if snap.count else None,
            "max": snap.max if snap.count else None,
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold an exported state (usually a worker's delta) into cell 0.

        Bucket counts, ``sum`` and ``count`` add; ``min``/``max`` fold by
        extremum, which is exact whether the shipped state is a delta or
        a lifetime snapshot (extremes are monotone).  The shipped bucket
        layout must match (same ``base``/``buckets``).
        """
        if (
            state.get("base") != self.base
            or state.get("buckets") != len(self.bounds)
        ):
            raise ValueError("histogram bucket layouts differ; cannot merge")
        counts = [int(c) for c in state["counts"]]
        total = float(state["sum"])
        count = int(state["count"])
        lo = None if state.get("min") is None else float(state["min"])
        hi = None if state.get("max") is None else float(state["max"])
        cell = self._cells[0]
        with cell.lock:
            for i, c in enumerate(counts[: len(cell.counts)]):
                cell.counts[i] += c
            cell.sum += total
            cell.count += count
            if lo is not None and lo < cell.min:
                cell.min = lo
            if hi is not None and hi > cell.max:
                cell.max = hi


class HistogramSnapshot:
    """A merged, point-in-time copy of one histogram's state."""

    def __init__(
        self,
        bounds: List[float],
        counts: List[int],
        sum: float,
        count: int,
        min: float,
        max: float,
    ) -> None:
        self.bounds = bounds
        self.counts = counts
        self.sum = sum
        self.count = count
        self.min = min
        self.max = max

    def percentile(self, q: float) -> float:
        """Quantile estimate by linear interpolation inside one bucket.

        The estimate is clamped to the observed ``[min, max]`` range, so
        a single-valued distribution reports that exact value for every
        quantile instead of a bucket bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                upper = (
                    self.bounds[i] if i < len(self.bounds) else self.max
                )
                lower = self.bounds[i - 1] if i > 0 else 0.0
                fraction = (
                    (rank - seen) / bucket_count if bucket_count else 1.0
                )
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min), self.max)
            seen += bucket_count
        return self.max

    def percentiles_ms(self) -> Dict[str, float]:
        """The standard p50/p95/p99 triple, in milliseconds."""
        return {
            "p50_ms": round(self.percentile(0.50) * 1000, 3),
            "p95_ms": round(self.percentile(0.95) * 1000, 3),
            "p99_ms": round(self.percentile(0.99) * 1000, 3),
        }

    def cumulative(self) -> Iterator[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            yield bound, running
        yield float("inf"), running + self.counts[-1]


class MetricsRegistry:
    """Named, optionally labelled metrics with get-or-create semantics.

    One registry serves the whole process (see
    :func:`repro.telemetry.instrument.get_registry`); tests swap in a
    fresh one to isolate their totals.  Metric handles are created under
    a registry-wide lock and updated through their own sharded locks, so
    the common path — updating an existing metric — contends only on
    the metric's thread-local stripe.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelSet], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], Histogram] = {}
        self._help: Dict[str, str] = {}

    def _describe_locked(self, name: str, help: str) -> None:
        # caller holds self._lock (the _locked-suffix convention)
        if help and name not in self._help:
            self._help[name] = help

    def counter(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        help: str = "",
    ) -> Counter:
        key = (name, _labelset(labels))
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter()
                self._describe_locked(name, help)
            return metric

    def gauge(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        help: str = "",
    ) -> Gauge:
        key = (name, _labelset(labels))
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge()
                self._describe_locked(name, help)
            return metric

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        help: str = "",
        base: float = 1e-4,
        buckets: int = 28,
    ) -> Histogram:
        key = (name, _labelset(labels))
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(
                    base=base, buckets=buckets
                )
                self._describe_locked(name, help)
            return metric

    # -- read side ------------------------------------------------------
    def help_for(self, name: str) -> str:
        with self._lock:
            return self._help.get(name, "")

    def counters(self) -> Sequence[Tuple[str, LabelSet, float]]:
        with self._lock:
            items = list(self._counters.items())
        return [(n, ls, c.value) for (n, ls), c in sorted(items)]

    def gauges(self) -> Sequence[Tuple[str, LabelSet, float]]:
        with self._lock:
            items = list(self._gauges.items())
        return [(n, ls, g.value) for (n, ls), g in sorted(items)]

    def histograms(
        self,
    ) -> Sequence[Tuple[str, LabelSet, HistogramSnapshot]]:
        with self._lock:
            items = list(self._histograms.items())
        return [(n, ls, h.snapshot()) for (n, ls), h in sorted(items)]

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view of every metric (the /stats building block)."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, float]] = {}
        for name, labelset, value in self.counters():
            counters[_flat_name(name, labelset)] = value
        for name, labelset, value in self.gauges():
            gauges[_flat_name(name, labelset)] = value
        for name, labelset, snap in self.histograms():
            entry = {
                "count": float(snap.count),
                "sum": round(snap.sum, 6),
                "min": round(snap.min, 6),
                "max": round(snap.max, 6),
            }
            entry.update(snap.percentiles_ms())
            histograms[_flat_name(name, labelset)] = entry
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    # -- cross-process shipping ------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """Picklable copy of every metric, for shipping across processes.

        A process-pool worker exports before and after a request,
        computes the window with :func:`diff_states`, and ships the
        delta back with the result; the dispatcher folds it in through
        :meth:`merge_state` so ``/metrics`` stays exact while the work
        happens in another address space.
        """
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
            help_map = dict(self._help)
        return {
            "counters": [
                (name, ls, c.value) for (name, ls), c in counters
            ],
            "gauges": [(name, ls, g.value) for (name, ls), g in gauges],
            "histograms": [
                (name, ls, h.export_state()) for (name, ls), h in histograms
            ],
            "help": help_map,
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold an exported state (typically a worker's delta) into here.

        Counter and histogram contributions *add*; gauges take the
        shipped value (last writer wins — a gauge is a point-in-time
        reading, not a sum).  Metrics absent here are created with the
        shipped help text and bucket layout.
        """
        help_map: Dict[str, str] = state.get("help", {})
        for name, ls, value in state.get("counters", ()):
            labels = dict(ls) or None
            metric = self.counter(name, labels, help=help_map.get(name, ""))
            if value:
                metric.inc(float(value))
        for name, ls, value in state.get("gauges", ()):
            labels = dict(ls) or None
            self.gauge(name, labels, help=help_map.get(name, "")).set(
                float(value)
            )
        for name, ls, hstate in state.get("histograms", ()):
            labels = dict(ls) or None
            hist = self.histogram(
                name,
                labels,
                help=help_map.get(name, ""),
                base=float(hstate["base"]),
                buckets=int(hstate["buckets"]),
            )
            if hstate.get("count") or any(hstate.get("counts", ())):
                hist.merge_state(hstate)


def diff_states(
    before: Dict[str, Any], after: Dict[str, Any]
) -> Dict[str, Any]:
    """The window of registry activity between two exported states.

    Returns a state in the same shape as
    :meth:`MetricsRegistry.export_state`, suitable for
    :meth:`MetricsRegistry.merge_state`: counter values and histogram
    bucket counts / ``sum`` / ``count`` are subtracted, gauges carry the
    ``after`` reading, and histogram ``min``/``max`` carry the lifetime
    extremes (merging extremes is idempotent, so shipping them with
    every delta is safe).  Metrics absent from ``before`` diff against
    zero.
    """

    def _indexed(
        entries: Sequence[Tuple[str, LabelSet, Any]]
    ) -> Dict[Tuple[str, LabelSet], Any]:
        return {(name, tuple(ls)): value for name, ls, value in entries}

    counters_before = _indexed(before.get("counters", ()))
    hists_before = _indexed(before.get("histograms", ()))

    counters: List[Tuple[str, LabelSet, float]] = []
    for name, ls, value in after.get("counters", ()):
        before = float(counters_before.get((name, tuple(ls)), 0.0))
        delta = float(value) - before
        if delta:
            counters.append((name, tuple(ls), delta))

    histograms: List[Tuple[str, LabelSet, Dict[str, Any]]] = []
    for name, ls, hstate in after.get("histograms", ()):
        prior = hists_before.get((name, tuple(ls)))
        if prior is None:
            window = dict(hstate)
        else:
            window = {
                "base": hstate["base"],
                "buckets": hstate["buckets"],
                "counts": [
                    a - b
                    for a, b in zip(hstate["counts"], prior["counts"])
                ],
                "sum": float(hstate["sum"]) - float(prior["sum"]),
                "count": int(hstate["count"]) - int(prior["count"]),
                "min": hstate.get("min"),
                "max": hstate.get("max"),
            }
        if window["count"] or any(window["counts"]):
            histograms.append((name, tuple(ls), window))

    return {
        "counters": counters,
        "gauges": list(after.get("gauges", ())),
        "histograms": histograms,
        "help": dict(after.get("help", {})),
    }


def _flat_name(name: str, labelset: LabelSet) -> str:
    if not labelset:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labelset)
    return f"{name}{{{inner}}}"
