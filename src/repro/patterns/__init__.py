"""Annotated pattern trees, logical classes and the match engine."""

from .apt import APT, AXES, MSPECS, APTEdge, APTNode, pattern_node
from .logical_class import LCLAllocator
from .match import PatternMatcher, match_in_tree
from .predicates import NodeTest
from .scan_cache import Candidates, ScanCache

__all__ = [
    "APT",
    "AXES",
    "MSPECS",
    "APTEdge",
    "APTNode",
    "pattern_node",
    "LCLAllocator",
    "PatternMatcher",
    "match_in_tree",
    "NodeTest",
    "Candidates",
    "ScanCache",
]
