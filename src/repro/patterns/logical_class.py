"""Logical class label allocation.

The paper assigns each logical class a label (LCL) that is "a unique number
associated with each tree" — in practice the translator allocates labels
globally per plan (Figure 6 keeps a single ``LCLCounter``), which trivially
guarantees per-tree uniqueness.  We follow the same scheme.
"""

from __future__ import annotations


class LCLAllocator:
    """Monotonic allocator of logical class labels, starting at 1."""

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def allocate(self) -> int:
        """Return a fresh label."""
        label = self._next
        self._next += 1
        return label

    def reserve(self, label: int) -> None:
        """Ensure future allocations stay above an externally chosen label."""
        if label >= self._next:
            self._next = label + 1

    @property
    def high_water(self) -> int:
        """The next label that would be allocated."""
        return self._next
