"""Logical class label allocation.

The paper assigns each logical class a label (LCL) that is "a unique number
associated with each tree" — in practice the translator allocates labels
globally per plan (Figure 6 keeps a single ``LCLCounter``), which trivially
guarantees per-tree uniqueness.  We follow the same scheme.

``fork()`` hands out an allocator that *shares* the counter with its
parent: a translator building a sub-plan (a nested FLWR block, a
disjunction branch) can allocate through the fork without any risk of
reusing a label the parent — or a sibling fork — already handed out.
Duplicate labels across sub-plans that later merge are exactly the bug
class the static analyzer reports as LC102.
"""

from __future__ import annotations

from typing import List, Optional


class LCLAllocator:
    """Monotonic allocator of logical class labels, starting at 1.

    All forks of an allocator share one counter, so labels are unique
    across the whole family no matter which member allocates.
    """

    def __init__(
        self, start: int = 1, _cell: Optional[List[int]] = None
    ) -> None:
        # the counter lives in a shared one-element list so forks see
        # every allocation immediately
        self._cell = _cell if _cell is not None else [start]

    def allocate(self) -> int:
        """Return a fresh label."""
        label = self._cell[0]
        self._cell[0] = label + 1
        return label

    def reserve(self, label: int) -> None:
        """Ensure future allocations stay above an externally chosen label."""
        if label >= self._cell[0]:
            self._cell[0] = label + 1

    def fork(self) -> "LCLAllocator":
        """An allocator for an independently built sub-plan.

        The fork draws from the same counter, so labels allocated through
        it can never collide with the parent's or another fork's.
        """
        return LCLAllocator(_cell=self._cell)

    @property
    def high_water(self) -> int:
        """The next label that would be allocated."""
        return self._cell[0]
