"""Pattern-tree matching (Definition 3) for annotated pattern trees.

Two matchers share the combination logic:

* :class:`PatternMatcher` matches APTs against *stored documents* through
  the structural-join machinery of Section 5.2 (``-``→structural join,
  ``?``→left-outer, ``+``→nest join, ``*``→left-outer-nest join), and
  supports *extension* patterns whose root references a logical class of
  the input trees (pattern-tree reuse, Section 4.1).
* :func:`match_in_tree` matches an APT against an in-memory tree — used by
  the TAX baseline (whose operators re-match patterns on intermediate
  results), for extension below temporary nodes, and by the Figure 4 tests.

Both produce the heterogeneous witness trees of Definition 3: one witness
per valid mapping *h*, with every matched node tagged by its pattern node's
Logical Class Label.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PatternError
from ..model.node_id import NodeId, TempId
from ..model.sequence import TreeSequence
from ..model.tree import TNode, XTree
from ..physical.structural_join import join_for_mspec
from ..storage.database import Database
from .apt import APT, APTEdge, APTNode


class _MTree:
    """One match variant of a pattern node: identity plus per-edge slots.

    ``ref`` is set when the match lives in an in-memory tree (the node is
    marked rather than copied); otherwise ``nid/tag/value`` describe a
    stored node to materialise.
    """

    __slots__ = ("nid", "tag", "value", "slots", "ref")

    def __init__(self, nid, tag, value, slots=None, ref=None):
        self.nid = nid
        self.tag = tag
        self.value = value
        self.slots: List[List["_MTree"]] = slots if slots is not None else []
        self.ref: Optional[TNode] = ref


def _cluster_alternatives(
    members: List[_MTree], keyer
) -> List[List[_MTree]]:
    """Expand a nest-join cluster into alternatives without duplicate nodes.

    A ``+``/``*`` cluster must contain each matching *node* once; if some
    node produced several variants (its own ``-`` sub-edges multiplied), the
    alternatives are the cross product across nodes.
    """
    groups: Dict[object, List[_MTree]] = {}
    order: List[object] = []
    for member in members:
        key = keyer(member)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(member)
    if all(len(groups[key]) == 1 for key in order):
        return [members]
    return [list(combo) for combo in itertools.product(*(groups[k] for k in order))]


def _expand_nested(
    joined: List[Tuple[_MTree, List[List[_MTree]]]],
    mspec: str,
    keyer,
) -> List[Tuple[_MTree, List[List[_MTree]]]]:
    """Post-process join output so nested clusters have unique members."""
    if mspec not in ("+", "*"):
        return joined
    out = []
    for parent, alternatives in joined:
        expanded: List[List[_MTree]] = []
        for cluster in alternatives:
            if cluster:
                expanded.extend(_cluster_alternatives(cluster, keyer))
            else:
                expanded.append(cluster)
        out.append((parent, expanded))
    return out


def _combine_edge(
    partials: List[_MTree],
    joined: List[Tuple[_MTree, List[List[_MTree]]]],
) -> List[_MTree]:
    """Extend each partial with its alternatives for one more edge."""
    by_parent = {id(parent): alts for parent, alts in joined}
    out: List[_MTree] = []
    for partial in partials:
        alternatives = by_parent.get(id(partial))
        if alternatives is None:
            continue  # parent dropped by a mandatory edge
        for alt in alternatives:
            out.append(
                _MTree(
                    partial.nid,
                    partial.tag,
                    partial.value,
                    partial.slots + [alt],
                    partial.ref,
                )
            )
    return out


class PatternMatcher:
    """Matches annotated pattern trees against a :class:`Database`."""

    def __init__(
        self,
        db: Database,
        order_edges: bool = False,
        strategy: str = "binary",
    ) -> None:
        self.db = db
        #: With ``order_edges`` the matcher processes a node's mandatory
        #: edges in ascending candidate-count order before its optional
        #: edges — the structural-join-order idea of the paper's reference
        #: [19] ("Join order should be considered by an optimizer … for
        #: our implementation we used a simple bottom-up approach"); the
        #: default reproduces the paper's unordered behaviour.
        self.order_edges = order_edges
        #: ``strategy="holistic"`` matches eligible patterns (all edges
        #: ``-``, no content predicates) with the TwigStack holistic join
        #: of reference [3] instead of cascaded binary structural joins;
        #: ineligible patterns fall back to the binary cascade.
        if strategy not in ("binary", "holistic"):
            raise PatternError(f"unknown match strategy {strategy!r}")
        self.strategy = strategy

    def _edge_plan(self, node: APTNode, doc_name: str) -> list:
        """The edge processing order for one pattern node."""
        edges = list(node.edges)
        if not self.order_edges or len(edges) < 2:
            return edges
        index = self.db.tag_index(doc_name)

        def cost(edge) -> tuple:
            tag = edge.child.test.tag
            count = index.count(tag) if tag else float("inf")
            mandatory = edge.mspec in ("-", "+")
            # mandatory edges prune partials: run them first, cheapest
            # candidate list first; optional edges only expand
            return (not mandatory, count)

        return sorted(edges, key=cost)

    # ------------------------------------------------------------------
    # document-rooted matching
    # ------------------------------------------------------------------
    def match(self, apt: APT) -> TreeSequence:
        """All witness trees of ``apt`` against its bound document."""
        if apt.doc is None:
            raise PatternError("document-rooted match needs apt.doc")
        if apt.root.lc_ref is not None:
            raise PatternError("use extend() for class-referencing patterns")
        apt.validate()
        self.db.metrics.pattern_matches += 1
        if self.strategy == "holistic" and _holistic_eligible(apt.root):
            return self._match_holistic(apt)
        memo: Dict[int, List[_MTree]] = {}
        matches = self._match_node_db(apt.root, apt.doc, memo)
        out = TreeSequence()
        for mtree in matches:
            out.append(XTree(self._build(mtree, apt.root)))
            self.db.metrics.trees_built += 1
        return out

    def _match_holistic(self, apt: APT) -> TreeSequence:
        """Match a '-'-only predicate-free pattern with TwigStack."""
        from ..physical.twigstack import TwigNode, twig_stack

        def to_twig(node: APTNode, axis: str) -> TwigNode:
            if node.test.tag == "doc_root":
                stream = [self.db.document(apt.doc).root_id]
            else:
                stream = self.db.tag_lookup(apt.doc, node.test.tag)
            twig = TwigNode(str(node.lcl), stream, axis)
            for edge in node.edges:
                twig.children.append(to_twig(edge.child, edge.axis))
            return twig

        twig_root = to_twig(apt.root, "ad")
        matches = twig_stack(twig_root, self.db.metrics)
        out = TreeSequence()
        for assignment in matches:
            out.append(XTree(self._build_assignment(apt.root, assignment)))
            self.db.metrics.trees_built += 1
        return TreeSequence(
            sorted(out, key=lambda tree: tree.order_key)
        )

    def _build_assignment(self, node: APTNode, assignment) -> TNode:
        nid = assignment[str(node.lcl)]
        record = self.db.owner(nid).fetch_by_id(nid)
        built = TNode(record.tag, record.value, nid, {node.lcl})
        for edge in node.edges:
            built.add_child(
                self._build_assignment(edge.child, assignment)
            )
        return built

    # ------------------------------------------------------------------
    # extension matching (pattern-tree reuse)
    # ------------------------------------------------------------------
    def extend(self, apt: APT, trees: TreeSequence) -> TreeSequence:
        """Extend input trees below their ``apt.root.lc_ref`` class nodes.

        For each input tree and each valid combination of matches of the
        pattern's edges below each anchor node, emit one output tree: a
        clone of the input with the new branches attached (stored anchors)
        or with existing nodes marked into the new classes (temporary
        anchors, matched in memory).
        """
        root = apt.root
        if root.lc_ref is None:
            raise PatternError("extension pattern must reference a class")
        apt.validate()
        self.db.metrics.pattern_matches += 1
        memo: Dict[int, List[_MTree]] = {}
        starts_cache: Dict[int, list] = {}
        mandatory = any(e.mspec in ("-", "+") for e in root.edges)
        out = TreeSequence()
        for tree in trees:
            anchors = tree.nodes_in_class(root.lc_ref)
            if not anchors:
                if not mandatory:
                    out.append(tree.clone())
                continue
            if not all(
                root.test.matches_content(a.value) for a in anchors
            ):
                continue
            per_anchor: List[List[_MTree]] = []
            dead = False
            for anchor in anchors:
                variants = self._anchor_variants(
                    anchor, root.edges, memo, starts_cache
                )
                if not variants:
                    dead = True
                    break
                per_anchor.append(variants)
            if dead:
                continue
            for combo in itertools.product(*per_anchor):
                out.append(self._graft(tree, anchors, combo, root.edges))
                self.db.metrics.trees_built += 1
        return out

    # ------------------------------------------------------------------
    # internals: database-side matching
    # ------------------------------------------------------------------
    def _candidates(self, node: APTNode, doc_name: str) -> List[_MTree]:
        """Stored candidates for one pattern node, document order."""
        db = self.db
        test = node.test
        if test.tag == "doc_root":
            document = db.document(doc_name)
            root_id = document.root_id
            return [_MTree(root_id, "doc_root", None)]
        if test.tag is None:
            document = db.document(doc_name)
            out = []
            for idx in range(len(document.records)):
                rec = document.fetch(idx)
                if test.matches_content(rec.value):
                    out.append(
                        _MTree(document.node_id(idx), rec.tag, rec.value)
                    )
            return out
        indexable = tuple(
            (op, val)
            for op, val in test.comparisons
            if op in ("=", "!=", "<", "<=", ">", ">=")
        )
        if indexable:
            op0, val0 = indexable[0]
            ids = db.value_lookup(doc_name, test.tag, op0, val0)
            rest = tuple(
                c for c in test.comparisons if c != indexable[0]
            )
        else:
            ids = db.tag_lookup(doc_name, test.tag)
            rest = test.comparisons
        out = []
        for nid in ids:
            rec = db.owner(nid).fetch_by_id(nid)
            if all(
                _compare_ok(rec.value, op, val) for op, val in rest
            ):
                out.append(_MTree(nid, rec.tag, rec.value))
        return out

    def _match_node_db(
        self, node: APTNode, doc_name: str, memo: Dict[int, List[_MTree]]
    ) -> List[_MTree]:
        """All match variants of a pattern subtree, document order."""
        key = id(node)
        if key in memo:
            return memo[key]
        partials = self._candidates(node, doc_name)
        planned = self._edge_plan(node, doc_name)
        for edge in planned:
            children = self._match_node_db(edge.child, doc_name, memo)
            joined = join_for_mspec(
                partials,
                children,
                edge.axis,
                edge.mspec,
                self.db.metrics,
                parent_id=lambda m: m.nid,
                child_id=lambda m: m.nid,
            )
            joined = _expand_nested(joined, edge.mspec, lambda m: m.nid)
            partials = _combine_edge(partials, joined)
        if planned != node.edges:
            # witness building zips slots with node.edges: restore order
            original_position = {
                id(edge): index for index, edge in enumerate(node.edges)
            }
            for partial in partials:
                reordered = [None] * len(node.edges)
                for processed_index, edge in enumerate(planned):
                    reordered[
                        original_position[id(edge)]
                    ] = partial.slots[processed_index]
                partial.slots = reordered
        memo[key] = partials
        return partials

    def _build(self, mtree: _MTree, node: APTNode) -> TNode:
        """Materialise one match variant as a witness tree."""
        built = TNode(mtree.tag, mtree.value, mtree.nid, {node.lcl})
        for edge, matches in zip(node.edges, mtree.slots):
            for child in matches:
                built.add_child(self._build(child, edge.child))
        return built

    # ------------------------------------------------------------------
    # internals: anchors and grafting for extension patterns
    # ------------------------------------------------------------------
    def _anchor_variants(
        self,
        anchor: TNode,
        edges: List[APTEdge],
        memo: Dict[int, List[_MTree]],
        starts_cache: Dict[int, list] = None,
    ) -> List[_MTree]:
        """Match variants of the pattern edges below one anchor node.

        ``starts_cache`` memoises the sorted probe keys of each edge's
        candidate list across anchors — the extension Select visits one
        anchor per input tree, and rebuilding the key array every time
        would make pattern reuse quadratic.
        """
        if isinstance(anchor.nid, NodeId):
            doc_name = self.db.owner(anchor.nid).name
            partials = [_MTree(anchor.nid, anchor.tag, anchor.value)]
            for edge in edges:
                children = self._match_node_db(edge.child, doc_name, memo)
                child_starts = None
                if starts_cache is not None:
                    key = id(children)
                    if key not in starts_cache:
                        starts_cache[key] = [
                            (m.nid.doc, m.nid.start) for m in children
                        ]
                    child_starts = starts_cache[key]
                joined = join_for_mspec(
                    partials,
                    children,
                    edge.axis,
                    edge.mspec,
                    self.db.metrics,
                    parent_id=lambda m: m.nid,
                    child_id=lambda m: m.nid,
                    child_starts=child_starts,
                )
                joined = _expand_nested(joined, edge.mspec, lambda m: m.nid)
                partials = _combine_edge(partials, joined)
            return partials
        # temporary anchor: match inside the in-memory tree
        return _match_tree_variants(
            _MTree(anchor.nid, anchor.tag, anchor.value, ref=anchor), edges
        )

    def _graft(
        self,
        tree: XTree,
        anchors: List[TNode],
        combo: Sequence[_MTree],
        edges: List[APTEdge],
    ) -> XTree:
        """One output tree: clone the input, attach or mark matches."""
        mapping: Dict[int, TNode] = {}
        root_copy = _clone_with_map(tree.root, mapping)
        for anchor, variant in zip(anchors, combo):
            host = mapping[id(anchor)]
            for edge, matches in zip(edges, variant.slots):
                for child in matches:
                    _apply_match(child, edge.child, host, mapping)
        return XTree(root_copy)


def _compare_ok(value, op, rhs) -> bool:
    from ..model.value import compare

    return compare(value, op, rhs)


def _clone_with_map(node: TNode, mapping: Dict[int, TNode]) -> TNode:
    copy = TNode(node.tag, node.value, node.nid, node.lcls)
    copy.shadowed = node.shadowed
    mapping[id(node)] = copy
    copy.children = [
        _clone_with_map(child, mapping) for child in node.children
    ]
    return copy


def _apply_match(
    mtree: _MTree,
    pattern: APTNode,
    host: TNode,
    mapping: Dict[int, TNode],
) -> None:
    """Attach a stored match under ``host``, or mark an in-memory match."""
    if mtree.ref is not None:
        target = mapping[id(mtree.ref)]
        target.lcls.add(pattern.lcl)
        for edge, matches in zip(pattern.edges, mtree.slots):
            for child in matches:
                _apply_match(child, edge.child, target, mapping)
        return
    built = TNode(mtree.tag, mtree.value, mtree.nid, {pattern.lcl})
    host.add_child(built)
    for edge, matches in zip(pattern.edges, mtree.slots):
        for child in matches:
            _apply_match(child, edge.child, built, mapping)


def _holistic_eligible(root: APTNode) -> bool:
    """Is a pattern in TwigStack's supported fragment?

    All edges must be mandatory (``-``) and no node may carry content
    comparisons — the classic twig-join setting.  Anything richer uses
    the binary cascade.
    """
    for node in root.walk():
        if node.test.comparisons or node.test.tag is None:
            return False
        for edge in node.edges:
            if edge.mspec != "-":
                return False
    return True


# ----------------------------------------------------------------------
# in-memory matching
# ----------------------------------------------------------------------
def _tree_candidates(
    scope: TNode, test, axis: str, include_scope: bool = False
) -> List[TNode]:
    """Visible nodes related to ``scope`` by ``axis`` satisfying ``test``."""
    if axis == "pc":
        pool = scope.visible_children()
    else:
        pool = [n for n in scope.walk() if n is not scope]
    if include_scope:
        pool = [scope] + pool
    return [n for n in pool if test.matches(n.tag, n.value)]


def _match_tree_node(pattern: APTNode, candidate: TNode) -> List[_MTree]:
    """Match variants of a pattern subtree rooted at one tree node."""
    partials = [
        _MTree(candidate.nid, candidate.tag, candidate.value, ref=candidate)
    ]
    return _match_tree_variants(partials[0], pattern.edges)


def _match_tree_variants(
    base: _MTree, edges: List[APTEdge]
) -> List[_MTree]:
    """Expand ``base`` with match variants for each pattern edge in turn."""
    partials = [base]
    scope = base.ref
    assert scope is not None
    for edge in edges:
        child_nodes = _tree_candidates(scope, edge.child.test, edge.axis)
        child_variants: List[_MTree] = []
        for node in child_nodes:
            child_variants.extend(_match_tree_node(edge.child, node))
        if edge.mspec in ("-", "?"):
            alternatives: List[List[_MTree]] = [
                [variant] for variant in child_variants
            ]
            if edge.mspec == "?" and not alternatives:
                alternatives = [[]]
        else:
            if child_variants:
                alternatives = _cluster_alternatives(
                    child_variants, lambda m: id(m.ref)
                )
            elif edge.mspec == "*":
                alternatives = [[]]
            else:
                alternatives = []
        new_partials: List[_MTree] = []
        for partial in partials:
            for alt in alternatives:
                new_partials.append(
                    _MTree(
                        partial.nid,
                        partial.tag,
                        partial.value,
                        partial.slots + [alt],
                        partial.ref,
                    )
                )
        partials = new_partials
        if not partials:
            break
    return partials


def _build_witness(mtree: _MTree, pattern: APTNode) -> TNode:
    """Copy one in-memory match variant into a fresh witness tree."""
    built = TNode(mtree.tag, mtree.value, mtree.nid, {pattern.lcl})
    for edge, matches in zip(pattern.edges, mtree.slots):
        for child in matches:
            built.add_child(_build_witness(child, edge.child))
    return built


def match_in_tree(apt: APT, tree: XTree) -> TreeSequence:
    """Match an APT against one in-memory tree, yielding witness trees.

    The pattern root may match any visible node of the tree (as in the TAX
    algebra, whose selections pattern-match their input trees).  Witness
    trees are fresh copies of the matched nodes, tagged with the pattern's
    class labels — the Figure 4 semantics.
    """
    apt.validate()
    out = TreeSequence()
    candidates = [
        n
        for n in tree.root.walk()
        if apt.root.test.matches(n.tag, n.value)
    ]
    for candidate in candidates:
        for variant in _match_tree_node(apt.root, candidate):
            out.append(XTree(_build_witness(variant, apt.root)))
    return out
