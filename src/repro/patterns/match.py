"""Pattern-tree matching (Definition 3) for annotated pattern trees.

Two matchers share the combination logic:

* :class:`PatternMatcher` matches APTs against *stored documents* through
  the structural-join machinery of Section 5.2 (``-``→structural join,
  ``?``→left-outer, ``+``→nest join, ``*``→left-outer-nest join), and
  supports *extension* patterns whose root references a logical class of
  the input trees (pattern-tree reuse, Section 4.1).
* :func:`match_in_tree` matches an APT against an in-memory tree — used by
  the TAX baseline (whose operators re-match patterns on intermediate
  results), for extension below temporary nodes, and by the Figure 4 tests.

Both produce the heterogeneous witness trees of Definition 3: one witness
per valid mapping *h*, with every matched node tagged by its pattern node's
Logical Class Label.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..columns.batch import ColumnBatch
from ..errors import PatternError
from ..model.node_id import NodeId, TempId
from ..model.sequence import TreeSequence
from ..model.tree import TNode, XTree
from ..physical.structural_join import (
    child_columns,
    fast_path_enabled,
    join_for_mspec,
)
from ..storage.database import Database
from ..telemetry import hooks as telemetry
from .apt import APT, APTEdge, APTNode
from .predicates import NodeTest
from .scan_cache import Candidates, ScanCache


class _MTree:
    """One match variant of a pattern node: identity plus per-edge slots.

    ``ref`` is set when the match lives in an in-memory tree (the node is
    marked rather than copied); otherwise ``nid/tag/value`` describe a
    stored node to materialise.
    """

    __slots__ = ("nid", "tag", "value", "slots", "ref")

    def __init__(self, nid, tag, value, slots=None, ref=None):
        self.nid = nid
        self.tag = tag
        self.value = value
        self.slots: List[List["_MTree"]] = slots if slots is not None else []
        self.ref: Optional[TNode] = ref


def _cluster_alternatives(
    members: List[_MTree], keyer
) -> List[List[_MTree]]:
    """Expand a nest-join cluster into alternatives without duplicate nodes.

    A ``+``/``*`` cluster must contain each matching *node* once; if some
    node produced several variants (its own ``-`` sub-edges multiplied), the
    alternatives are the cross product across nodes.
    """
    groups: Dict[object, List[_MTree]] = {}
    order: List[object] = []
    for member in members:
        key = keyer(member)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(member)
    if all(len(groups[key]) == 1 for key in order):
        return [members]
    return [list(combo) for combo in itertools.product(*(groups[k] for k in order))]


def _expand_nested(
    joined: List[Tuple[_MTree, List[List[_MTree]]]],
    mspec: str,
    keyer,
) -> List[Tuple[_MTree, List[List[_MTree]]]]:
    """Post-process join output so nested clusters have unique members."""
    if mspec not in ("+", "*"):
        return joined
    out = []
    for parent, alternatives in joined:
        expanded: List[List[_MTree]] = []
        for cluster in alternatives:
            if cluster:
                expanded.extend(_cluster_alternatives(cluster, keyer))
            else:
                expanded.append(cluster)
        out.append((parent, expanded))
    return out


def _combine_edge(
    partials: List[_MTree],
    joined: List[Tuple[_MTree, List[List[_MTree]]]],
    order_keys: Optional[Dict[int, tuple]] = None,
) -> "Candidates":
    """Extend each partial with its alternatives for one more edge.

    Returns a fresh :class:`Candidates` list (never the input), so the
    next edge's structural join can attach its probe columns to it.

    ``order_keys`` (when edges run out of source order) maps each
    partial's identity to its enumeration key — the candidate index
    followed by one alternative index per processed edge.  Each new
    partial extends its parent's key with this edge's alternative index,
    so the caller can sort the final variants back into the order
    source-order processing would have enumerated them in.
    """
    by_parent = {id(parent): alts for parent, alts in joined}
    out: Candidates = Candidates()
    for partial in partials:
        alternatives = by_parent.get(id(partial))
        if alternatives is None:
            continue  # parent dropped by a mandatory edge
        for alt_index, alt in enumerate(alternatives):
            extended = _MTree(
                partial.nid,
                partial.tag,
                partial.value,
                partial.slots + [alt],
                partial.ref,
            )
            if order_keys is not None:
                order_keys[id(extended)] = order_keys[id(partial)] + (
                    alt_index,
                )
            out.append(extended)
    return out


class PatternMatcher:
    """Matches annotated pattern trees against a :class:`Database`."""

    def __init__(
        self,
        db: Database,
        order_edges: bool = False,
        strategy: str = "binary",
        scan_cache: Optional[ScanCache] = None,
        limits=None,
    ) -> None:
        self.db = db
        #: Optional :class:`~repro.core.limits.ExecutionLimits` ticked in
        #: the per-tree match/extension loops, so a deadline or
        #: cancellation fires inside a long Select instead of waiting for
        #: the evaluator's next between-operator check.
        self.limits = limits
        #: Query-scoped memo of identical scans (see
        #: :mod:`repro.patterns.scan_cache`).  ``None`` disables caching:
        #: every pattern node re-scans its index postings as the original
        #: substrate did.
        self.scan_cache = scan_cache
        #: With ``order_edges`` the matcher processes a node's mandatory
        #: edges in ascending candidate-count order before its optional
        #: edges — the structural-join-order idea of the paper's reference
        #: [19] ("Join order should be considered by an optimizer … for
        #: our implementation we used a simple bottom-up approach"); the
        #: default reproduces the paper's unordered behaviour.
        self.order_edges = order_edges
        #: ``strategy="holistic"`` matches eligible patterns (all edges
        #: ``-``, no content predicates) with the TwigStack holistic join
        #: of reference [3] instead of cascaded binary structural joins;
        #: ineligible patterns fall back to the binary cascade.
        if strategy not in ("binary", "holistic"):
            raise PatternError(f"unknown match strategy {strategy!r}")
        self.strategy = strategy

    def _edge_plan(self, node: APTNode, doc_name: str) -> list:
        """The edge processing order for one pattern node."""
        edges = list(node.edges)
        if len(edges) < 2:
            return edges
        # an explicit planner annotation wins over both source order and
        # the order_edges heuristic (it was costed, they are guesses);
        # anything but a permutation of the edges is ignored
        hint = getattr(node, "planner_order", None)
        if hint is not None and sorted(hint) == list(range(len(edges))):
            return [edges[index] for index in hint]
        if not self.order_edges:
            return edges
        index = self.db.tag_index(doc_name)

        def cost(edge) -> tuple:
            tag = edge.child.test.tag
            count = index.count(tag) if tag else float("inf")
            mandatory = edge.mspec in ("-", "+")
            # mandatory edges prune partials: run them first, cheapest
            # candidate list first; optional edges only expand
            return (not mandatory, count)

        return sorted(edges, key=cost)

    # ------------------------------------------------------------------
    # document-rooted matching
    # ------------------------------------------------------------------
    def match(self, apt: APT) -> TreeSequence:
        """All witness trees of ``apt`` against its bound document."""
        if apt.doc is None:
            raise PatternError("document-rooted match needs apt.doc")
        if apt.root.lc_ref is not None:
            raise PatternError("use extend() for class-referencing patterns")
        apt.validate()
        self.db.metrics.pattern_matches += 1
        if self.strategy == "holistic" and _holistic_eligible(apt.root):
            out = self._match_holistic(apt)
            self._note_match(out)
            return out
        memo: Dict[int, List[_MTree]] = {}
        matches = self._match_node_db(apt.root, apt.doc, memo)
        out = TreeSequence()
        limits = self.limits
        for mtree in matches:
            if limits is not None:
                limits.tick()
            out.append(XTree(self._build(mtree, apt.root)))
            self.db.metrics.trees_built += 1
        self._note_match(out)
        return out

    def match_batch(self, apt: APT) -> Optional[ColumnBatch]:
        """Columnar :meth:`match`: witness rows, no tree objects built.

        Match variants flatten straight into a
        :class:`~repro.columns.batch.ColumnBatch` — the ``_build`` walk
        and its per-node ``TNode`` construction are skipped entirely;
        downstream batch operators (or the eventual materialisation
        boundary) decide if trees are ever needed.  Returns ``None``
        when the pattern takes the holistic (TwigStack) route, which
        stays per-tree; the caller falls back to :meth:`match`.
        """
        if apt.doc is None:
            raise PatternError("document-rooted match needs apt.doc")
        if apt.root.lc_ref is not None:
            raise PatternError("use extend() for class-referencing patterns")
        apt.validate()
        if self.strategy == "holistic" and _holistic_eligible(apt.root):
            return None
        self.db.metrics.pattern_matches += 1
        memo: Dict[int, List[_MTree]] = {}
        matches = self._match_node_db(apt.root, apt.doc, memo)
        offsets = [0]
        tags: List[str] = []
        values: list = []
        nids: list = []
        labels: List[int] = []
        parents: List[int] = []
        limits = self.limits
        for mtree in matches:
            if limits is not None:
                limits.tick()
            _flatten_variant(
                mtree, apt.root, tags, values, nids, labels, parents,
                len(tags), -1,
            )
            offsets.append(len(tags))
        out = ColumnBatch.from_lists(
            offsets, tags, values, nids, labels, parents
        )
        self._note_match(out)
        return out

    def _note_match(self, out) -> None:
        """Telemetry boundary of one match/extend call (witness count)."""
        if telemetry.enabled():
            telemetry.instrument("matcher.match")
            telemetry.instrument("matcher.trees", len(out))

    def _match_holistic(self, apt: APT) -> TreeSequence:
        """Match a '-'-only predicate-free pattern with TwigStack."""
        from ..physical.twigstack import TwigNode, twig_stack

        def to_twig(node: APTNode, axis: str) -> TwigNode:
            if node.test.tag == "doc_root":
                stream = [self.db.document(apt.doc).root_id]
            else:
                stream = self.db.tag_lookup(apt.doc, node.test.tag)
            twig = TwigNode(str(node.lcl), stream, axis)
            for edge in node.edges:
                twig.children.append(to_twig(edge.child, edge.axis))
            return twig

        twig_root = to_twig(apt.root, "ad")
        matches = twig_stack(twig_root, self.db.metrics)
        out = TreeSequence()
        for assignment in matches:
            out.append(XTree(self._build_assignment(apt.root, assignment)))
            self.db.metrics.trees_built += 1
        return TreeSequence(
            sorted(out, key=lambda tree: tree.order_key)
        )

    def _build_assignment(self, node: APTNode, assignment) -> TNode:
        nid = assignment[str(node.lcl)]
        record = self.db.owner(nid).fetch_by_id(nid)
        built = TNode(record.tag, record.value, nid, {node.lcl})
        for edge in node.edges:
            built.add_child(
                self._build_assignment(edge.child, assignment)
            )
        return built

    # ------------------------------------------------------------------
    # extension matching (pattern-tree reuse)
    # ------------------------------------------------------------------
    def extend(self, apt: APT, trees: TreeSequence) -> TreeSequence:
        """Extend input trees below their ``apt.root.lc_ref`` class nodes.

        For each input tree and each valid combination of matches of the
        pattern's edges below each anchor node, emit one output tree: a
        clone of the input with the new branches attached (stored anchors)
        or with existing nodes marked into the new classes (temporary
        anchors, matched in memory).

        On the columnar fast path all stored anchors are matched in one
        *batch*: every edge runs a single merge-style structural join
        over the document-ordered set of distinct anchors (the skip
        cursor advances monotonically across them), and the per-anchor
        variants are assembled from the per-edge alternatives — instead
        of an independent join cascade per anchor per input tree, which
        paid the per-call join overhead thousands of times on
        extension-heavy plans.
        """
        root = apt.root
        if root.lc_ref is None:
            raise PatternError("extension pattern must reference a class")
        apt.validate()
        self.db.metrics.pattern_matches += 1
        if fast_path_enabled():
            out = self._extend_fast(root, trees)
        else:
            out = self._extend_legacy(root, trees)
        self._note_match(out)
        return out

    def _extend_legacy(self, root: APTNode, trees: TreeSequence) -> TreeSequence:
        """The original per-anchor extension cascade (BENCH_3 baseline)."""
        memo: Dict[int, List[_MTree]] = {}
        mandatory = any(e.mspec in ("-", "+") for e in root.edges)
        out = TreeSequence()
        limits = self.limits
        for tree in trees:
            if limits is not None:
                limits.tick()
            anchors = tree.nodes_in_class(root.lc_ref)
            if not anchors:
                if not mandatory:
                    out.append(tree.clone())
                continue
            if not all(
                root.test.matches_content(a.value) for a in anchors
            ):
                continue
            per_anchor: List[List[_MTree]] = []
            dead = False
            for anchor in anchors:
                variants = self._anchor_variants(
                    anchor, root.edges, memo
                )
                if not variants:
                    dead = True
                    break
                per_anchor.append(variants)
            if dead:
                continue
            for combo in itertools.product(*per_anchor):
                out.append(self._graft(tree, anchors, combo, root.edges))
                self.db.metrics.trees_built += 1
        return out

    def _extend_fast(self, root: APTNode, trees: TreeSequence) -> TreeSequence:
        """Batched extension: one structural join per edge for all anchors.

        Pass 1 collects each tree's anchors and the set of distinct
        stored anchor ids.  The batch then joins every edge once across
        all anchors in document order and memoises the variant list per
        anchor id — input trees sharing an anchor (or repeating one) get
        the shared, immutable variants.  Pass 2 emits the grafted output
        trees in the original input order.  Temporary anchors are still
        matched per tree against their in-memory host.
        """
        edges = root.edges
        mandatory = any(e.mspec in ("-", "+") for e in edges)
        check_content = bool(root.test.comparisons)
        pattern_lcls = [
            node.lcl for edge in edges for node in edge.child.walk()
        ]
        #: anchors per input tree; None marks an anchor-less tree and
        #: False a tree dropped by the root content test
        entries: List[Tuple[XTree, object]] = []
        db_anchors: Dict[NodeId, TNode] = {}
        for tree in trees:
            anchors = tree.class_nodes(root.lc_ref)
            if not anchors:
                entries.append((tree, None))
                continue
            if check_content and not all(
                root.test.matches_content(a.value) for a in anchors
            ):
                entries.append((tree, False))
                continue
            entries.append((tree, anchors))
            for anchor in anchors:
                if isinstance(anchor.nid, NodeId):
                    db_anchors.setdefault(anchor.nid, anchor)
        variants_by_nid = (
            self._batch_anchor_variants(db_anchors, edges)
            if db_anchors
            else {}
        )
        #: built-subtree memo shared by every graft of this batch (see
        #: the ``cache`` parameter of :func:`_apply_match`)
        built_cache: Dict[int, Tuple[TNode, List[Tuple[int, TNode]]]] = {}
        out = TreeSequence()
        limits = self.limits
        for tree, anchors in entries:
            if limits is not None:
                limits.tick()
            if anchors is None:
                if not mandatory:
                    out.append(tree.clone())
                continue
            if anchors is False:
                continue
            per_anchor: List[List[_MTree]] = []
            dead = False
            for anchor in anchors:
                if isinstance(anchor.nid, NodeId):
                    variants = variants_by_nid[anchor.nid]
                else:
                    variants = _match_tree_variants(
                        _MTree(
                            anchor.nid, anchor.tag, anchor.value, ref=anchor
                        ),
                        edges,
                    )
                if not variants:
                    dead = True
                    break
                per_anchor.append(variants)
            if dead:
                continue
            # the output LC index can be derived from the input's when
            # grafts only *append* below stored, non-nested anchors and
            # the pattern's classes are fresh to this tree: existing
            # entries keep their pre-order positions (remapped through
            # the copies) and new entries arrive in anchor/edge/match
            # order, which *is* output pre-order among themselves
            base_index = tree._lc_index
            if (
                base_index is None
                or not all(isinstance(a.nid, NodeId) for a in anchors)
                or any(lcl in base_index for lcl in pattern_lcls)
            ):
                base_index = None
            combos = 1
            for variants in per_anchor:
                combos *= len(variants)
            if combos == 1:
                # the common case: one output tree — fuse path
                # discovery and copying into a single bottom-up pass
                combo = tuple(v[0] for v in per_anchor)
                out.append(
                    self._graft_once(
                        tree, anchors, combo, edges, base_index, built_cache
                    )
                )
                self.db.metrics.trees_built += 1
                continue
            copy_ids, nested = _graft_copy_ids(tree, anchors)
            if nested:
                base_index = None
            for combo in itertools.product(*per_anchor):
                out.append(
                    self._graft_shared(
                        tree,
                        copy_ids,
                        anchors,
                        combo,
                        edges,
                        base_index,
                        built_cache,
                    )
                )
                self.db.metrics.trees_built += 1
        return out

    def extend_batch(
        self, apt: APT, batch: ColumnBatch
    ) -> Optional[ColumnBatch]:
        """Columnar :meth:`extend`: splice matched branches into rows.

        The anchored-variant machinery of the fast path runs unchanged
        (one structural join per edge across all distinct anchors); what
        changes is the output assembly.  Instead of grafting copies of
        witness *trees*, each match variant's branches flatten once into
        a column *segment* (memoised by variant identity), and every
        output row is the input row with each anchor's segment spliced
        in at the end of the anchor's subtree slice — pre-order stays
        pre-order, and parents are row-relative so only the splice
        points need arithmetic.

        Returns ``None`` when any anchor is a temporary node (in-memory
        matching marks existing nodes, which needs real trees); the
        caller materialises and falls back to :meth:`extend`.
        """
        root = apt.root
        if root.lc_ref is None:
            raise PatternError("extension pattern must reference a class")
        apt.validate()
        edges = root.edges
        lc_ref = root.lc_ref
        mandatory = any(e.mspec in ("-", "+") for e in edges)
        check_content = bool(root.test.comparisons)
        src_tags, src_values = batch.tags, batch.values
        src_nids, src_labels = batch.nids, batch.labels
        src_parents, src_offsets = batch.parents, batch.offsets
        #: anchor positions per row; None marks an anchor-less row and
        #: False a row dropped by the root content test (mirrors
        #: ``entries`` of :meth:`_extend_fast`)
        entries: List[object] = []
        db_anchors: Dict[NodeId, _MTree] = {}
        for row in range(len(batch)):
            positions = batch.class_positions(row, lc_ref)
            if not positions:
                entries.append(None)
                continue
            if check_content and not all(
                root.test.matches_content(src_values[p]) for p in positions
            ):
                entries.append(False)
                continue
            entries.append(positions)
            for p in positions:
                nid = src_nids[p]
                if not isinstance(nid, NodeId):
                    # temporary anchor: in-memory matching needs trees
                    return None
                db_anchors.setdefault(
                    nid, _MTree(nid, src_tags[p], src_values[p])
                )
        self.db.metrics.pattern_matches += 1
        variants_by_nid = (
            self._batch_anchor_variants(db_anchors, edges)
            if db_anchors
            else {}
        )
        #: flattened branch segments, memoised by variant identity —
        #: the columnar counterpart of the graft's built-subtree cache
        segments: Dict[int, tuple] = {}
        offsets = [0]
        tags: List[str] = []
        values: list = []
        nids: list = []
        labels: List[int] = []
        parents: List[int] = []
        limits = self.limits
        for row, positions in enumerate(entries):
            if limits is not None:
                limits.tick()
            start, end = src_offsets[row], src_offsets[row + 1]
            if positions is None:
                if not mandatory:
                    tags.extend(src_tags[start:end])
                    values.extend(src_values[start:end])
                    nids.extend(src_nids[start:end])
                    for j in range(start, end):
                        labels.append(src_labels[j])
                        parents.append(src_parents[j])
                    offsets.append(len(tags))
                continue
            if positions is False:
                continue
            per_anchor = []
            dead = False
            for p in positions:
                variants = variants_by_nid[src_nids[p]]
                if not variants:
                    dead = True
                    break
                per_anchor.append(
                    [
                        _segment_for(variant, edges, segments)
                        for variant in variants
                    ]
                )
            if dead:
                continue
            n = end - start
            # end of each node's subtree, row-relative: every node
            # extends the span of its whole ancestor chain
            subtree_ends = [0] * n
            for j in range(n):
                subtree_ends[j] = j + 1
                parent = src_parents[start + j]
                while parent >= 0:
                    subtree_ends[parent] = j + 1
                    parent = src_parents[start + parent]
            anchor_rels = [p - start for p in positions]
            base_parents = list(src_parents[start:end])
            for combo in itertools.product(*per_anchor):
                # splice points: the end of each anchor's subtree; on
                # ties the deeper anchor's branches come first (its
                # subtree closes inside the shallower one's)
                inserts = sorted(
                    zip(
                        (subtree_ends[a] for a in anchor_rels),
                        (-a for a in anchor_rels),
                        combo,
                    )
                )
                # base node j lands at j + shift[j], where shift is the
                # total segment length spliced in before j — bulk-copy
                # every column and rewrite only the parents
                shift = [0] * n
                cursor = 0
                shifted = 0
                for ins, neg_a, seg in inserts:
                    if shifted:
                        for j in range(cursor, ins):
                            shift[j] = shifted
                    cursor = ins
                    shifted += len(seg[0])
                if shifted and cursor < n:
                    for j in range(cursor, n):
                        shift[j] = shifted
                row_base = len(tags)
                cursor = 0
                for ins, neg_a, seg in inserts:
                    if cursor < ins:
                        tags.extend(src_tags[start + cursor:start + ins])
                        values.extend(
                            src_values[start + cursor:start + ins]
                        )
                        nids.extend(src_nids[start + cursor:start + ins])
                        labels.extend(
                            src_labels[start + cursor:start + ins]
                        )
                        for j in range(cursor, ins):
                            parent = base_parents[j]
                            parents.append(
                                parent + shift[parent] if parent >= 0
                                else -1
                            )
                        cursor = ins
                    seg_tags, seg_values, seg_nids, seg_labels, \
                        seg_parents = seg
                    seg_base = len(tags) - row_base
                    anchor = -neg_a
                    anchor_new = anchor + shift[anchor]
                    tags.extend(seg_tags)
                    values.extend(seg_values)
                    nids.extend(seg_nids)
                    labels.extend(seg_labels)
                    for parent in seg_parents:
                        parents.append(
                            seg_base + parent if parent >= 0 else anchor_new
                        )
                if cursor < n:
                    tags.extend(src_tags[start + cursor:end])
                    values.extend(src_values[start + cursor:end])
                    nids.extend(src_nids[start + cursor:end])
                    labels.extend(src_labels[start + cursor:end])
                    for j in range(cursor, n):
                        parent = base_parents[j]
                        parents.append(
                            parent + shift[parent] if parent >= 0 else -1
                        )
                offsets.append(len(tags))
        out = ColumnBatch.from_lists(
            offsets, tags, values, nids, labels, parents
        )
        self._note_match(out)
        return out

    def _batch_anchor_variants(
        self,
        db_anchors: Dict[NodeId, TNode],
        edges: List[APTEdge],
    ) -> Dict[NodeId, List[_MTree]]:
        """Match variants for every distinct stored anchor, in one batch.

        The per-anchor alternatives of one edge depend only on the
        anchor's node id, so each edge is answered by a single
        structural join over all anchors sorted in document order — the
        merge cursor then probes the shared candidate columns strictly
        forward.  An anchor's variants are the cross product of its
        per-edge alternatives (same order the sequential cascade
        produced: later edges vary fastest).
        """
        memo: Dict[int, List[_MTree]] = {}
        result: Dict[NodeId, List[_MTree]] = {}
        by_doc: Dict[int, List[NodeId]] = {}
        for nid in db_anchors:
            by_doc.setdefault(nid.doc, []).append(nid)
        for doc, nids in by_doc.items():
            nids.sort(key=lambda n: (n.doc, n.start))
            doc_name = self.db.owner(nids[0]).name
            bases = [
                _MTree(nid, db_anchors[nid].tag, db_anchors[nid].value)
                for nid in nids
            ]
            alts_per_edge: List[Dict[NodeId, List[List[_MTree]]]] = []
            for edge in edges:
                children = self._match_node_db(edge.child, doc_name, memo)
                starts, levels = child_columns(children, lambda m: m.nid)
                joined = join_for_mspec(
                    bases,
                    children,
                    edge.axis,
                    edge.mspec,
                    self.db.metrics,
                    parent_id=lambda m: m.nid,
                    child_id=lambda m: m.nid,
                    child_starts=starts,
                    child_levels=levels,
                )
                joined = _expand_nested(joined, edge.mspec, lambda m: m.nid)
                alts_per_edge.append(
                    {parent.nid: alts for parent, alts in joined}
                )
            for base in bases:
                result[base.nid] = [
                    _MTree(base.nid, base.tag, base.value, list(combo))
                    for combo in itertools.product(
                        *(alts.get(base.nid, ()) for alts in alts_per_edge)
                    )
                ]
        return result

    # ------------------------------------------------------------------
    # internals: database-side matching
    # ------------------------------------------------------------------
    def _candidates(self, node: APTNode, doc_name: str) -> Candidates:
        """Stored candidates for one pattern node, document order.

        With a :class:`ScanCache` attached, identical scans — same
        document, tag test and content comparisons — are answered from
        the query-scoped memo: the index probe, per-posting record
        fetches and predicate filtering run once per query instead of
        once per pattern node (``Metrics.scan_cache_hits`` counts the
        repeats).  The cached list and its match variants are shared and
        never mutated (combination always builds fresh variants).
        """
        test = node.test
        if self.scan_cache is None:
            return self._scan_candidates(test, doc_name)
        key = (doc_name, test.tag, test.comparisons)
        return self.scan_cache.candidates(
            key, lambda: self._scan_candidates(test, doc_name)
        )

    def _scan_candidates(self, test: NodeTest, doc_name: str) -> Candidates:
        """One actual index/record scan for a node test (uncached)."""
        db = self.db
        if test.tag == "doc_root":
            document = db.document(doc_name)
            return Candidates([_MTree(document.root_id, "doc_root", None)])
        out = Candidates()
        if test.tag is None:
            document = db.document(doc_name)
            for idx in range(len(document.records)):
                rec = document.fetch(idx)
                if test.matches_content(rec.value):
                    out.append(
                        _MTree(document.node_id(idx), rec.tag, rec.value)
                    )
            return out
        indexable = tuple(
            (op, val)
            for op, val in test.comparisons
            if op in ("=", "!=", "<", "<=", ">", ">=")
        )
        if indexable:
            op0, val0 = indexable[0]
            ids = db.value_lookup(doc_name, test.tag, op0, val0)
            rest = tuple(
                c for c in test.comparisons if c != indexable[0]
            )
            for nid in ids:
                rec = db.owner(nid).fetch_by_id(nid)
                if all(
                    _compare_ok(rec.value, op, val) for op, val in rest
                ):
                    out.append(_MTree(nid, rec.tag, rec.value))
            return out
        # tag-only scan: the columnar postings carry the record indexes,
        # so each fetch skips the per-node id resolution (same metering —
        # one record touch per posting — just less interpreter work)
        document = db.document(doc_name)
        postings = db.tag_lookup(doc_name, test.tag)
        rest = test.comparisons
        if postings.record_indexes is not None:
            for ridx, nid in zip(postings.record_indexes, postings.ids):
                rec = document.fetch(ridx)
                if all(
                    _compare_ok(rec.value, op, val) for op, val in rest
                ):
                    out.append(_MTree(nid, rec.tag, rec.value))
            return out
        for nid in postings:
            rec = db.owner(nid).fetch_by_id(nid)
            if all(
                _compare_ok(rec.value, op, val) for op, val in rest
            ):
                out.append(_MTree(nid, rec.tag, rec.value))
        return out

    def _match_node_db(
        self, node: APTNode, doc_name: str, memo: Dict[int, List[_MTree]]
    ) -> List[_MTree]:
        """All match variants of a pattern subtree, document order."""
        key = id(node)
        if key in memo:
            return memo[key]
        partials = self._candidates(node, doc_name)
        planned = self._edge_plan(node, doc_name)
        reordered_plan = planned != node.edges
        # out-of-source-order processing also enumerates the variants in
        # a different sequence; track each partial's enumeration key so
        # the final list can be sorted back into source-order sequence
        order_keys: Optional[Dict[int, tuple]] = (
            {id(partial): (index,) for index, partial in enumerate(partials)}
            if reordered_plan
            else None
        )
        for edge in planned:
            children = self._match_node_db(edge.child, doc_name, memo)
            joined = join_for_mspec(
                partials,
                children,
                edge.axis,
                edge.mspec,
                self.db.metrics,
                parent_id=lambda m: m.nid,
                child_id=lambda m: m.nid,
            )
            joined = _expand_nested(joined, edge.mspec, lambda m: m.nid)
            partials = _combine_edge(partials, joined, order_keys)
        if reordered_plan:
            # witness building zips slots with node.edges: restore order
            original_position = {
                id(edge): index for index, edge in enumerate(node.edges)
            }
            perm = [original_position[id(edge)] for edge in planned]
            for partial in partials:
                reordered = [None] * len(node.edges)
                for processed_index, edge in enumerate(planned):
                    reordered[
                        original_position[id(edge)]
                    ] = partial.slots[processed_index]
                partial.slots = reordered
            # variant order: source-order processing enumerates variants
            # lexicographically by (candidate, alt per edge in source
            # position); the alternatives of one (candidate, edge) pair
            # are plan-order-invariant, so permuting each key back to
            # source positions and sorting reproduces that sequence
            assert order_keys is not None

            def source_sequence(partial: _MTree) -> tuple:
                enum_key = order_keys[id(partial)]
                restored = [0] * (len(enum_key) - 1)
                for processed_index, alt_index in enumerate(enum_key[1:]):
                    restored[perm[processed_index]] = alt_index
                return (enum_key[0], *restored)

            partials.sort(key=source_sequence)
        memo[key] = partials
        return partials

    def _build(self, mtree: _MTree, node: APTNode) -> TNode:
        """Materialise one match variant as a witness tree."""
        built = TNode(mtree.tag, mtree.value, mtree.nid, {node.lcl})
        for edge, matches in zip(node.edges, mtree.slots):
            for child in matches:
                built.add_child(self._build(child, edge.child))
        return built

    # ------------------------------------------------------------------
    # internals: anchors and grafting for extension patterns
    # ------------------------------------------------------------------
    def _anchor_variants(
        self,
        anchor: TNode,
        edges: List[APTEdge],
        memo: Dict[int, List[_MTree]],
    ) -> List[_MTree]:
        """Match variants of the pattern edges below one anchor node.

        The candidate lists of the pattern edges are memoised across
        anchors (``memo``) and carry their probe columns after the first
        join (see :func:`~repro.physical.structural_join.child_columns`),
        so the extension Select — which visits one anchor per input tree
        — probes each anchor in logarithmic time instead of rebuilding
        key arrays per anchor (which would make pattern reuse quadratic).
        """
        if isinstance(anchor.nid, NodeId):
            doc_name = self.db.owner(anchor.nid).name
            partials = [_MTree(anchor.nid, anchor.tag, anchor.value)]
            for edge in edges:
                children = self._match_node_db(edge.child, doc_name, memo)
                # computed once per candidate list (cached on it), probed
                # once per anchor — logarithmic on both paths
                starts, levels = child_columns(
                    children, lambda m: m.nid
                )
                joined = join_for_mspec(
                    partials,
                    children,
                    edge.axis,
                    edge.mspec,
                    self.db.metrics,
                    parent_id=lambda m: m.nid,
                    child_id=lambda m: m.nid,
                    child_starts=starts,
                    child_levels=levels,
                )
                joined = _expand_nested(joined, edge.mspec, lambda m: m.nid)
                partials = _combine_edge(partials, joined)
            return partials
        # temporary anchor: match inside the in-memory tree
        return _match_tree_variants(
            _MTree(anchor.nid, anchor.tag, anchor.value, ref=anchor), edges
        )

    def _graft(
        self,
        tree: XTree,
        anchors: List[TNode],
        combo: Sequence[_MTree],
        edges: List[APTEdge],
    ) -> XTree:
        """One output tree: clone the input, attach or mark matches."""
        mapping: Dict[int, TNode] = {}
        root_copy = _clone_with_map(tree.root, mapping)
        for anchor, variant in zip(anchors, combo):
            host = mapping[id(anchor)]
            for edge, matches in zip(edges, variant.slots):
                for child in matches:
                    _apply_match(child, edge.child, host, mapping)
        return XTree(root_copy)

    def _graft_once(
        self,
        tree: XTree,
        anchors: List[TNode],
        combo: Sequence[_MTree],
        edges: List[APTEdge],
        base_index: Optional[Dict[int, List[TNode]]] = None,
        cache: Optional[Dict[int, Tuple[TNode, List[Tuple[int, TNode]]]]] = None,
    ) -> XTree:
        """Single-combination graft: find and copy anchor paths in one pass.

        A bottom-up traversal returns a copy for any node that is an
        anchor or has a copied descendant, and ``None`` for subtrees
        that can be shared outright; with all anchors stored, subtrees
        whose stored interval holds no anchor are skipped without
        descending (a stored node's interval bounds its structural
        subtree in every intermediate tree).
        """
        single = anchors[0] if len(anchors) == 1 else None
        anchor_ids = (
            None if single is not None else {id(a) for a in anchors}
        )
        spans = [
            anchor.nid
            for anchor in anchors
            if isinstance(anchor.nid, NodeId)
        ]
        prune = len(spans) == len(anchors)
        span = spans[0] if len(spans) == 1 else None
        if span is not None:
            span_doc, span_start, span_end = span.doc, span.start, span.end
        mapping: Dict[int, TNode] = {}
        nested = False

        def build(node: TNode) -> Optional[TNode]:
            nonlocal nested
            is_anchor = (
                node is single
                if single is not None
                else id(node) in anchor_ids
            )
            nid = node.nid
            if not is_anchor and prune and isinstance(nid, NodeId):
                if span is not None:
                    if not (
                        nid.doc == span_doc
                        and nid.start < span_start
                        and span_end < nid.end
                    ):
                        return None
                elif not any(
                    nid.doc == s.doc
                    and nid.start < s.start
                    and s.end < nid.end
                    for s in spans
                ):
                    return None
            if is_anchor and not isinstance(nid, NodeId):
                # temporary anchor: marking may touch any descendant,
                # so the whole subtree needs a private copy
                return _clone_with_map(node, mapping)
            new_children = None
            for i, child in enumerate(node.children):
                built = build(child)
                if built is not None:
                    if new_children is None:
                        new_children = list(node.children[:i])
                    new_children.append(built)
                elif new_children is not None:
                    new_children.append(child)
            if new_children is None and not is_anchor:
                return None
            if is_anchor and new_children is not None:
                nested = True
            copy = TNode(node.tag, node.value, nid, node.lcls)
            copy.shadowed = node.shadowed
            copy.children = (
                new_children
                if new_children is not None
                else list(node.children)
            )
            mapping[id(node)] = copy
            return copy

        root_copy = build(tree.root)
        if root_copy is None:  # pragma: no cover - anchors are in-tree
            root_copy = tree.root.clone()
        if nested:
            base_index = None
        recorder: Optional[List[Tuple[int, TNode]]] = (
            [] if base_index is not None else None
        )
        for anchor, variant in zip(anchors, combo):
            host = mapping[id(anchor)]
            for edge, matches in zip(edges, variant.slots):
                for child in matches:
                    _apply_match(
                        child, edge.child, host, mapping, recorder, cache
                    )
        result = XTree(root_copy)
        # grafts never add shadowed nodes and copies keep flags, so the
        # input's shadow-presence knowledge carries over
        result._saw_shadowed = tree._saw_shadowed
        if base_index is not None and recorder is not None:
            result._lc_index = _derive_index(base_index, mapping, recorder)
        return result

    def _graft_shared(
        self,
        tree: XTree,
        copy_ids: set,
        anchors: List[TNode],
        combo: Sequence[_MTree],
        edges: List[APTEdge],
        base_index: Optional[Dict[int, List[TNode]]] = None,
        cache: Optional[Dict[int, Tuple[TNode, List[Tuple[int, TNode]]]]] = None,
    ) -> XTree:
        """One output tree, sharing unmodified subtrees with the input.

        Only the nodes in ``copy_ids`` — the root-to-anchor paths, plus
        whole subtrees of in-memory anchors (whose descendants may be
        *marked* by the match) — are copied; every other subtree is the
        input tree's own node, shared structurally.  This is safe
        because operators never mutate their inputs (the evaluator
        shares memoised results between consumers, so in-place mutation
        was already forbidden) — any operator that needs to modify a
        tree clones it first, which deep-copies through shared nodes.
        """
        mapping: Dict[int, TNode] = {}

        def copy_node(node: TNode) -> TNode:
            copy = TNode(node.tag, node.value, node.nid, node.lcls)
            copy.shadowed = node.shadowed
            mapping[id(node)] = copy
            copy.children = [
                copy_node(c) if id(c) in copy_ids else c
                for c in node.children
            ]
            return copy

        root_copy = copy_node(tree.root)
        recorder: Optional[List[Tuple[int, TNode]]] = (
            [] if base_index is not None else None
        )
        for anchor, variant in zip(anchors, combo):
            host = mapping[id(anchor)]
            for edge, matches in zip(edges, variant.slots):
                for child in matches:
                    _apply_match(
                        child, edge.child, host, mapping, recorder, cache
                    )
        result = XTree(root_copy)
        result._saw_shadowed = tree._saw_shadowed
        if base_index is not None and recorder is not None:
            result._lc_index = _derive_index(base_index, mapping, recorder)
        return result


def _compare_ok(value, op, rhs) -> bool:
    from ..model.value import compare

    return compare(value, op, rhs)


def _derive_index(
    base_index: Dict[int, List[TNode]],
    mapping: Dict[int, TNode],
    recorder: List[Tuple[int, TNode]],
) -> Dict[int, List[TNode]]:
    """The grafted tree's LC index, derived from the input tree's.

    Classes untouched by the path copies share the input's entry list
    outright (``nodes_in_class`` hands out copies, so shared lists are
    never mutated by callers); classes of copied nodes are remapped
    entry by entry, and the recorder's fresh nodes append in graft
    order, which is output pre-order among themselves.
    """
    index: Dict[int, List[TNode]] = dict(base_index)
    dirty: set = set()
    for copy in mapping.values():
        dirty.update(copy.lcls)
    for lcl in dirty:
        nodes = base_index.get(lcl)
        if nodes is not None:
            index[lcl] = [mapping.get(id(n), n) for n in nodes]
    for lcl, node in recorder:
        index.setdefault(lcl, []).append(node)
    return index


def _graft_copy_ids(
    tree: XTree, anchors: List[TNode]
) -> Tuple[set, bool]:
    """Ids of the nodes a shared graft must copy, plus a nesting flag.

    Every node on a root-to-anchor path is copied (its children list
    changes, or a descendant's does).  A temporary anchor additionally
    contributes its whole subtree: in-memory matches *mark* existing
    descendant nodes into new classes, and marking must never write
    through to the shared input tree.

    The second return value reports whether any anchor sits inside
    another anchor's subtree — nested anchors interleave appended
    branches with existing subtrees in pre-order, which disqualifies
    the incremental LC-index derivation.
    """
    anchor_ids = {id(anchor) for anchor in anchors}
    copy_ids: set = set()
    nested = False
    # with all anchors stored, a stored node's interval bounds its whole
    # structural subtree in every intermediate tree (grafts and splices
    # attach only descendants-by-interval under stored nodes), so
    # subtrees whose interval holds no anchor are skipped wholesale
    spans = [
        anchor.nid
        for anchor in anchors
        if isinstance(anchor.nid, NodeId)
    ]
    prune = len(spans) == len(anchors)

    def visit(node: TNode) -> bool:
        nonlocal nested
        is_anchor = id(node) in anchor_ids
        nid = node.nid
        if (
            prune
            and not is_anchor
            and isinstance(nid, NodeId)
            and not any(
                nid.doc == span.doc
                and nid.start < span.start
                and span.end < nid.end
                for span in spans
            )
        ):
            return False
        below = False
        for child in node.children:
            if visit(child):
                below = True
        if is_anchor and below:
            nested = True
        if is_anchor or below:
            copy_ids.add(id(node))
            return True
        return False

    visit(tree.root)
    for anchor in anchors:
        if not isinstance(anchor.nid, NodeId):
            for node in anchor.walk(include_shadowed=True):
                copy_ids.add(id(node))
    return copy_ids, nested


def _clone_with_map(node: TNode, mapping: Dict[int, TNode]) -> TNode:
    copy = TNode(node.tag, node.value, node.nid, node.lcls)
    copy.shadowed = node.shadowed
    mapping[id(node)] = copy
    copy.children = [
        _clone_with_map(child, mapping) for child in node.children
    ]
    return copy


def _apply_match(
    mtree: _MTree,
    pattern: APTNode,
    host: TNode,
    mapping: Dict[int, TNode],
    recorder: Optional[List[Tuple[int, TNode]]] = None,
    cache: Optional[Dict[int, Tuple[TNode, List[Tuple[int, TNode]]]]] = None,
) -> None:
    """Attach a stored match under ``host``, or mark an in-memory match.

    With ``recorder`` every freshly built node is recorded with its
    class label, in attachment (pre-)order, for the incremental
    LC-index derivation of :meth:`PatternMatcher._graft_shared`.

    With ``cache`` the subtree built for a stored match is memoised by
    variant identity and *shared* between every output tree that
    applies the same variant — variants are immutable and the built
    nodes are never mutated in place (marking and shadowing always
    copy first), so the trees of one extension batch may hold the same
    grafted branch object.  In-memory matches (``ref`` set) mark
    tree-private copies and are never cached; their slots only ever
    hold further in-memory matches, so a cached subtree is ref-free.
    """
    if mtree.ref is not None:
        target = mapping[id(mtree.ref)]
        target.lcls.add(pattern.lcl)
        for edge, matches in zip(pattern.edges, mtree.slots):
            for child in matches:
                _apply_match(
                    child, edge.child, target, mapping, recorder, cache
                )
        return
    if cache is not None:
        hit = cache.get(id(mtree))
        if hit is None:
            recs: List[Tuple[int, TNode]] = []
            built = TNode(mtree.tag, mtree.value, mtree.nid, {pattern.lcl})
            recs.append((pattern.lcl, built))
            for edge, matches in zip(pattern.edges, mtree.slots):
                for child in matches:
                    _apply_match(
                        child, edge.child, built, mapping, recs, cache
                    )
            cache[id(mtree)] = (built, recs)
        else:
            built, recs = hit
        host.add_child(built)
        if recorder is not None:
            recorder.extend(recs)
        return
    built = TNode(mtree.tag, mtree.value, mtree.nid, {pattern.lcl})
    if recorder is not None:
        recorder.append((pattern.lcl, built))
    host.add_child(built)
    for edge, matches in zip(pattern.edges, mtree.slots):
        for child in matches:
            _apply_match(child, edge.child, built, mapping, recorder)


def _flatten_variant(
    mtree: _MTree,
    pattern: APTNode,
    tags: List[str],
    values: list,
    nids: list,
    labels: List[int],
    parents: List[int],
    base: int,
    parent_rel: int,
) -> None:
    """Append one match variant to column builders, pre-order.

    The columnar counterpart of :meth:`PatternMatcher._build`: node
    first, then each edge's matches in slot order — the exact order
    ``add_child`` would have produced.  ``base`` is the row's first
    column, so recorded parents are row-relative.
    """
    rel = len(tags) - base
    tags.append(mtree.tag)
    values.append(mtree.value)
    nids.append(mtree.nid)
    labels.append(pattern.lcl)
    parents.append(parent_rel)
    for edge, matches in zip(pattern.edges, mtree.slots):
        for child in matches:
            _flatten_variant(
                child, edge.child, tags, values, nids, labels, parents,
                base, rel,
            )


def _segment_for(
    variant: _MTree, edges: List[APTEdge], memo: Dict[int, tuple]
) -> tuple:
    """Flatten a variant's *branches* into a reusable column segment.

    Segment parents are segment-relative, with ``-1`` marking the
    branch roots (they attach to the anchor at splice time).  Variants
    are shared across rows through the per-nid variant lists, so the
    memo — keyed by variant identity, like the graft's built-subtree
    cache — flattens each one once per extension call.
    """
    key = id(variant)
    segment = memo.get(key)
    if segment is None:
        tags: List[str] = []
        values: list = []
        nids: list = []
        labels: List[int] = []
        parents: List[int] = []
        for edge, matches in zip(edges, variant.slots):
            for child in matches:
                _flatten_variant(
                    child, edge.child, tags, values, nids, labels,
                    parents, 0, -1,
                )
        segment = (tags, values, nids, labels, parents)
        memo[key] = segment
    return segment


def _holistic_eligible(root: APTNode) -> bool:
    """Is a pattern in TwigStack's supported fragment?

    All edges must be mandatory (``-``) and no node may carry content
    comparisons — the classic twig-join setting.  Anything richer uses
    the binary cascade.
    """
    for node in root.walk():
        if node.test.comparisons or node.test.tag is None:
            return False
        for edge in node.edges:
            if edge.mspec != "-":
                return False
    return True


# ----------------------------------------------------------------------
# in-memory matching
# ----------------------------------------------------------------------
def _tree_candidates(
    scope: TNode, test, axis: str, include_scope: bool = False
) -> List[TNode]:
    """Visible nodes related to ``scope`` by ``axis`` satisfying ``test``."""
    if axis == "pc":
        pool = scope.visible_children()
    else:
        pool = [n for n in scope.walk() if n is not scope]
    if include_scope:
        pool = [scope] + pool
    return [n for n in pool if test.matches(n.tag, n.value)]


def _match_tree_node(pattern: APTNode, candidate: TNode) -> List[_MTree]:
    """Match variants of a pattern subtree rooted at one tree node."""
    partials = [
        _MTree(candidate.nid, candidate.tag, candidate.value, ref=candidate)
    ]
    return _match_tree_variants(partials[0], pattern.edges)


def _match_tree_variants(
    base: _MTree, edges: List[APTEdge]
) -> List[_MTree]:
    """Expand ``base`` with match variants for each pattern edge in turn."""
    partials = [base]
    scope = base.ref
    assert scope is not None
    for edge in edges:
        child_nodes = _tree_candidates(scope, edge.child.test, edge.axis)
        child_variants: List[_MTree] = []
        for node in child_nodes:
            child_variants.extend(_match_tree_node(edge.child, node))
        if edge.mspec in ("-", "?"):
            alternatives: List[List[_MTree]] = [
                [variant] for variant in child_variants
            ]
            if edge.mspec == "?" and not alternatives:
                alternatives = [[]]
        else:
            if child_variants:
                alternatives = _cluster_alternatives(
                    child_variants, lambda m: id(m.ref)
                )
            elif edge.mspec == "*":
                alternatives = [[]]
            else:
                alternatives = []
        new_partials: List[_MTree] = []
        for partial in partials:
            for alt in alternatives:
                new_partials.append(
                    _MTree(
                        partial.nid,
                        partial.tag,
                        partial.value,
                        partial.slots + [alt],
                        partial.ref,
                    )
                )
        partials = new_partials
        if not partials:
            break
    return partials


def _build_witness(mtree: _MTree, pattern: APTNode) -> TNode:
    """Copy one in-memory match variant into a fresh witness tree."""
    built = TNode(mtree.tag, mtree.value, mtree.nid, {pattern.lcl})
    for edge, matches in zip(pattern.edges, mtree.slots):
        for child in matches:
            built.add_child(_build_witness(child, edge.child))
    return built


def match_in_tree(apt: APT, tree: XTree) -> TreeSequence:
    """Match an APT against one in-memory tree, yielding witness trees.

    The pattern root may match any visible node of the tree (as in the TAX
    algebra, whose selections pattern-match their input trees).  Witness
    trees are fresh copies of the matched nodes, tagged with the pattern's
    class labels — the Figure 4 semantics.
    """
    apt.validate()
    out = TreeSequence()
    candidates = [
        n
        for n in tree.root.walk()
        if apt.root.test.matches(n.tag, n.value)
    ]
    for candidate in candidates:
        for variant in _match_tree_node(apt.root, candidate):
            out.append(XTree(_build_witness(variant, apt.root)))
    return out
