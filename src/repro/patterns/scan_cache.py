"""Query-scoped memoisation of index scans and APT-leaf matches.

A TLC plan routinely evaluates several Select operators whose pattern
trees scan the *same* tag with the *same* content predicate — the FOR
clause binds ``//person``, the RETURN paths scan ``name`` and ``age``,
a correlated sub-plan scans ``//person`` again.  The stored documents
are immutable for the duration of one plan execution, so those repeated
scans (index probe + record fetch per posting + predicate filter) are
pure rework.

:class:`ScanCache` memoises the candidate lists of pattern-node scans
within one query execution, keyed on ``(doc, tag, predicate)``.  A fresh
cache is created per :class:`~repro.core.base.Context` — i.e. per
``Engine.run_plan`` — so nothing leaks across queries or documents
reloaded between runs.  Hits are metered as ``Metrics.scan_cache_hits``
(and the skipped index/record work simply never happens, which is why
the work counters of a cached run are never higher than an uncached
one).

:class:`Candidates` is the list type the matcher builds candidate lists
with: a plain ``list`` that can additionally carry the columnar
``starts``/``levels`` probe columns a structural join attaches on first
use (see :func:`repro.physical.structural_join.child_columns`), so a
cached scan's join columns are computed once per query, not once per
join.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..storage.stats import Metrics

#: Cache key: (document name, tag test, content comparisons).
ScanKey = Tuple[Hashable, ...]


class Candidates(List[Any]):
    """Candidate-match list that can cache its columnar probe columns."""

    starts: Optional[List[Tuple[int, int]]]
    levels: Optional[List[int]]

    # list subclasses carry a __dict__ unless slotted; keep the two
    # column attributes explicit so mypy and readers see the contract
    __slots__ = ("starts", "levels")

    def __init__(self, *args: Any) -> None:
        super().__init__(*args)
        self.starts = None
        self.levels = None


class ScanCache:
    """Memo of identical scans within one plan execution."""

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        self._entries: Dict[ScanKey, Candidates] = {}
        self.metrics = metrics

    def candidates(
        self, key: ScanKey, build: Callable[[], Candidates]
    ) -> Candidates:
        """The cached candidate list for ``key``, building it on miss.

        The returned list is shared between all scans with the same key:
        callers treat it (and the match variants inside) as immutable,
        which the matcher guarantees — combination always builds fresh
        variant objects.
        """
        hit = self._entries.get(key)
        if hit is not None:
            if self.metrics is not None:
                self.metrics.scan_cache_hits += 1
            return hit
        value = build()
        self._entries[key] = value
        return value

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every memoised scan (the cache becomes cold)."""
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ScanCache entries={len(self._entries)}>"
