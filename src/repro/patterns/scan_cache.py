"""Query-scoped memoisation of index scans and APT-leaf matches.

A TLC plan routinely evaluates several Select operators whose pattern
trees scan the *same* tag with the *same* content predicate — the FOR
clause binds ``//person``, the RETURN paths scan ``name`` and ``age``,
a correlated sub-plan scans ``//person`` again.  The stored documents
are immutable for the duration of one plan execution, so those repeated
scans (index probe + record fetch per posting + predicate filter) are
pure rework.

:class:`ScanCache` memoises the candidate lists of pattern-node scans
within one query execution, keyed on ``(doc, tag, predicate)``.  A fresh
cache is created per :class:`~repro.core.base.Context` — i.e. per
``Engine.run_plan`` — so nothing leaks across queries or documents
reloaded between runs.  Hits are metered as ``Metrics.scan_cache_hits``
(and the skipped index/record work simply never happens, which is why
the work counters of a cached run are never higher than an uncached
one).

**Lifetime contract.**  A cache serves *one database* and *one query
execution at a time*.  The keys carry the document name, so entries
could not collide across documents of one database — but entries built
against one :class:`~repro.storage.database.Database` are meaningless
against another, and two *concurrent* executions sharing a cache would
race on entry construction and cross-pollinate their metering.  The
evaluator therefore brackets every execution with
:meth:`ScanCache.begin_query` / :meth:`ScanCache.end_query`:

* sequential reuse (benchmark warm runs over immutable data) is fine —
  begin/end pairs nest zero-deep between runs;
* entering a cache that is already inside an execution, or moving it to
  a different database, raises
  :class:`~repro.errors.ScanCacheLifetimeError`.

This is exactly the trap a service layer could fall into by handing one
cache to its thread pool; :class:`repro.service.QueryService` creates a
fresh cache per request, and this assertion keeps it honest.

:class:`Candidates` is the list type the matcher builds candidate lists
with: a plain ``list`` that can additionally carry the columnar
``starts``/``levels`` probe columns a structural join attaches on first
use (see :func:`repro.physical.structural_join.child_columns`), so a
cached scan's join columns are computed once per query, not once per
join.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..storage.stats import Metrics
from ..telemetry import hooks as telemetry

#: Cache key: (document name, tag test, content comparisons).
ScanKey = Tuple[Hashable, ...]


class Candidates(List[Any]):
    """Candidate-match list that can cache its columnar probe columns."""

    starts: Optional[List[Tuple[int, int]]]
    levels: Optional[List[int]]

    # list subclasses carry a __dict__ unless slotted; keep the two
    # column attributes explicit so mypy and readers see the contract
    __slots__ = ("starts", "levels")

    def __init__(self, *args: Any) -> None:
        super().__init__(*args)
        self.starts = None
        self.levels = None


class ScanCache:
    """Memo of identical scans within one plan execution.

    See the module docstring for the single-database, single-execution
    lifetime contract enforced by :meth:`begin_query`/:meth:`end_query`.
    """

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        self._entries: Dict[ScanKey, Candidates] = {}
        self.metrics = metrics
        #: identity of the database this cache's entries were built
        #: against (pinned on first begin_query)
        self._db: Optional[object] = None
        #: True while an execution is inside begin_query/end_query
        self._active = False

    # ------------------------------------------------------------------
    # lifetime bracketing (called by the evaluator)
    # ------------------------------------------------------------------
    def begin_query(self, db: object) -> None:
        """Enter one query execution; assert the lifetime contract.

        Raises :class:`~repro.errors.ScanCacheLifetimeError` when the
        cache is already inside another execution (concurrent sharing)
        or was previously used against a different database.
        """
        from ..errors import ScanCacheLifetimeError

        if self._active:
            raise ScanCacheLifetimeError(
                "ScanCache is already in use by another query execution; "
                "a scan cache is query-scoped — create one per request "
                "(concurrent requests must never share one)"
            )
        if self._db is not None and self._db is not db:
            raise ScanCacheLifetimeError(
                "ScanCache was built against a different Database; its "
                "entries are meaningless here — create a fresh cache"
            )
        self._db = db
        self._active = True

    def end_query(self) -> None:
        """Leave the current query execution (keeps the entries warm)."""
        self._active = False

    def candidates(
        self, key: ScanKey, build: Callable[[], Candidates]
    ) -> Candidates:
        """The cached candidate list for ``key``, building it on miss.

        The returned list is shared between all scans with the same key:
        callers treat it (and the match variants inside) as immutable,
        which the matcher guarantees — combination always builds fresh
        variant objects.
        """
        hit = self._entries.get(key)
        if hit is not None:
            if self.metrics is not None:
                self.metrics.scan_cache_hits += 1
            if telemetry.enabled():
                telemetry.instrument("scan_cache.hit")
            return hit
        value = build()
        self._entries[key] = value
        if telemetry.enabled():
            telemetry.instrument("scan_cache.miss")
        return value

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every memoised scan (the cache becomes cold).

        Also unpins the database identity: an empty cache can be safely
        re-entered against any database.
        """
        self._entries.clear()
        self._db = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ScanCache entries={len(self._entries)}>"
