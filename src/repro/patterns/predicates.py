"""Node predicates for annotated pattern trees.

Definition 2 associates with each pattern node a predicate ``P_v`` for the
individual node match.  In the Figure 5 fragment a node predicate is a
conjunction of a tag test (element name or ``@attribute``) and zero or more
content comparisons (``age > 25``); this module models exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..model.value import Atomic, compare


@dataclass(frozen=True)
class NodeTest:
    """Predicate on one pattern node: tag equality plus content comparisons.

    ``tag=None`` is the wildcard (any element).  ``comparisons`` is a tuple
    of ``(op, value)`` pairs, all of which must hold on the node's atomic
    content.
    """

    tag: Optional[str] = None
    comparisons: Tuple[Tuple[str, Atomic], ...] = field(default_factory=tuple)

    def matches(self, tag: str, value: Optional[Atomic]) -> bool:
        """Evaluate the full predicate against a node's tag and content."""
        if self.tag is not None and tag != self.tag:
            return False
        return all(compare(value, op, rhs) for op, rhs in self.comparisons)

    def matches_content(self, value: Optional[Atomic]) -> bool:
        """Evaluate only the content comparisons."""
        return all(compare(value, op, rhs) for op, rhs in self.comparisons)

    def with_comparison(self, op: str, value: Atomic) -> "NodeTest":
        """A copy of this test with one more content comparison."""
        return NodeTest(self.tag, self.comparisons + ((op, value),))

    def describe(self) -> str:
        """Human-readable form used by plan pretty-printers."""
        base = self.tag if self.tag is not None else "*"
        conds = "".join(f"[{op}{value!r}]" for op, value in self.comparisons)
        return f"{base}{conds}"
