"""Annotated Pattern Trees (Definitions 1 and 2).

An APT is a rooted tree of :class:`APTNode`.  Each edge carries the axis
(``pc`` for parent-child, ``ad`` for ancestor-descendant — drawn as double
edges in the paper's figures) and the matching specification:

* ``-`` exactly one match of the child per match of the parent,
* ``?`` zero or one,
* ``+`` one or more (all relatives cluster into one witness tree),
* ``*`` zero or more.

Every APT node carries the Logical Class Label (LCL) its matches will be
tagged with.  A node may instead *reference* an existing logical class of
the input trees (``lc_ref``) — the pattern-tree-reuse mechanism of Section
4.1 ("we permit predicates on logical class membership as part of an
annotated pattern tree specification"), used by the extended patterns of
Figure 7's Selects 8 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from ..errors import PatternError
from .predicates import NodeTest

#: Valid matching specifications, in the paper's notation.
MSPECS = ("-", "?", "+", "*")
#: Valid structural axes.
AXES = ("pc", "ad")


@dataclass
class APTEdge:
    """One pattern edge: target node, axis and matching specification."""

    child: "APTNode"
    axis: str = "pc"
    mspec: str = "-"

    def __post_init__(self) -> None:
        if self.axis not in AXES:
            raise PatternError(f"invalid axis {self.axis!r}")
        if self.mspec not in MSPECS:
            raise PatternError(f"invalid matching specification {self.mspec!r}")

    @property
    def optional(self) -> bool:
        """Whether a parent without matches survives (``?`` or ``*``)."""
        return self.mspec in ("?", "*")

    @property
    def nested(self) -> bool:
        """Whether matches cluster into one witness tree (``+`` or ``*``)."""
        return self.mspec in ("+", "*")


@dataclass
class APTNode:
    """One pattern node: predicate, class label and outgoing edges."""

    test: NodeTest
    lcl: int
    edges: List[APTEdge] = field(default_factory=list)
    lc_ref: Optional[int] = None  # bind to existing class instead of matching
    #: cost-based planner annotation: the edge order the matcher should
    #: process (a permutation of ``range(len(edges))``), or None for the
    #: source order.  Never copied by :meth:`clone` — it is re-derived.
    planner_order: Optional[List[int]] = None

    def add_edge(
        self, child: "APTNode", axis: str = "pc", mspec: str = "-"
    ) -> APTEdge:
        """Attach a child pattern node; returns the new edge."""
        edge = APTEdge(child, axis, mspec)
        self.edges.append(edge)
        return edge

    def walk(self) -> Iterator["APTNode"]:
        """Pre-order traversal of this pattern subtree."""
        yield self
        for edge in self.edges:
            yield from edge.child.walk()

    def find(self, lcl: int) -> Optional["APTNode"]:
        """The pattern node labelled ``lcl`` in this subtree, if any."""
        for node in self.walk():
            if node.lcl == lcl:
                return node
        return None

    def clone(self) -> "APTNode":
        """Deep copy of this pattern subtree."""
        copy = APTNode(self.test, self.lcl, lc_ref=self.lc_ref)
        copy.edges = [
            APTEdge(edge.child.clone(), edge.axis, edge.mspec)
            for edge in self.edges
        ]
        return copy

    def describe(self, depth: int = 0) -> str:
        """Indented multi-line rendering (for plan explainers and tests)."""
        label = (
            f"(ref {self.lc_ref})"
            if self.lc_ref is not None
            else self.test.describe()
        )
        lines = [f"{'  ' * depth}{label} [lcl={self.lcl}]"]
        for edge in self.edges:
            arrow = "//" if edge.axis == "ad" else "/"
            lines.append(
                f"{'  ' * (depth + 1)}{arrow}{edge.mspec}"
            )
            lines.append(edge.child.describe(depth + 2))
        return "\n".join(lines)


@dataclass
class APT:
    """A complete annotated pattern tree, optionally bound to a document.

    ``doc`` names the stored document the pattern matches against; patterns
    whose root references a logical class (``root.lc_ref``) instead extend
    the trees of an input sequence (Section 4.1 pattern-tree reuse).
    """

    root: APTNode
    doc: Optional[str] = None

    def nodes(self) -> List[APTNode]:
        """All pattern nodes in pre-order."""
        return list(self.root.walk())

    def node_by_lcl(self, lcl: int) -> APTNode:
        """The pattern node labelled ``lcl``; raises if absent."""
        found = self.root.find(lcl)
        if found is None:
            raise PatternError(f"pattern has no node labelled {lcl}")
        return found

    def lcls(self) -> List[int]:
        """All class labels introduced by this pattern (not references)."""
        return [n.lcl for n in self.nodes() if n.lc_ref is None]

    def clone(self) -> "APT":
        """Deep copy."""
        return APT(self.root.clone(), self.doc)

    def validate(self) -> None:
        """Check label uniqueness and reference placement.

        LCLs must be unique within one pattern (the paper: "a single tree
        cannot have two LCLs with the same value pointing to different
        LCs"), and class references may only appear at the root — the form
        the translator generates and the matcher supports.
        """
        seen = set()
        for node in self.nodes():
            if node.lcl in seen:
                raise PatternError(f"duplicate LCL {node.lcl} in pattern")
            seen.add(node.lcl)
            if node.lc_ref is not None and node is not self.root:
                raise PatternError(
                    "logical-class references are only supported at the "
                    "pattern root"
                )

    def describe(self) -> str:
        """Readable rendering including the bound document."""
        source = f"doc={self.doc!r}" if self.doc else "extends input"
        return f"APT[{source}]\n{self.root.describe(1)}"


def pattern_node(
    tag: Optional[str],
    lcl: int,
    comparisons: tuple = (),
    lc_ref: Optional[int] = None,
) -> APTNode:
    """Convenience constructor used heavily by tests and the translator."""
    return APTNode(NodeTest(tag, tuple(comparisons)), lcl, lc_ref=lc_ref)
