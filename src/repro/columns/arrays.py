"""Array backend for the columnar runtime: ``array('l')`` or numpy.

Every integer column of the batch runtime — interval ends, tree levels,
parent offsets, LC labels — is built through :func:`int_column`, which
returns either a compact C-typed ``array('l')`` (the pure-Python
default) or a numpy ``int64`` array when numpy acceleration is enabled.
Both containers support the operations the kernels use (indexing,
slicing, iteration, ``len``) with identical *values*, so flipping the
flag never changes results, only the constant factor.

The flag has three layers:

* **availability** — numpy importable at all (:func:`numpy_available`);
  the container may not ship it, and nothing here requires it;
* **enablement** — the runtime switch (:func:`numpy_enabled`), seeded
  from the ``REPRO_BATCH_NUMPY`` environment variable (default: on when
  available) and togglable per process via :func:`set_numpy` or the
  :func:`use_numpy` context manager (how the equivalence sweep pins the
  pure-Python configuration);
* **per-call fallback** — code that received a column from *either*
  backend must treat it generically; helpers here do.
"""

from __future__ import annotations

import os
from array import array
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence

try:  # pragma: no cover - exercised via the numpy-off CI job
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy baked into the image
    _numpy = None


def numpy_available() -> bool:
    """Whether numpy is importable in this process."""
    return _numpy is not None


def _env_default() -> bool:
    value = os.environ.get("REPRO_BATCH_NUMPY", "").strip().lower()
    if value in ("0", "false", "no", "off"):
        return False
    if value in ("1", "true", "yes", "on"):
        return True
    return True  # default: use numpy when the image ships it


#: Module switch between numpy and pure-Python array columns.
_NUMPY = _env_default() and numpy_available()


def numpy_enabled() -> bool:
    """Whether integer columns are built as numpy arrays."""
    return _NUMPY


def set_numpy(enabled: bool) -> bool:
    """Switch numpy columns on or off; returns the previous setting.

    Enabling without numpy installed raises ``RuntimeError`` rather than
    silently running the fallback — the caller asked for acceleration.
    """
    global _NUMPY
    if enabled and not numpy_available():
        raise RuntimeError("numpy acceleration requested but numpy "
                           "is not importable")
    previous = _NUMPY
    _NUMPY = bool(enabled)
    return previous


@contextmanager
def use_numpy(enabled: bool = True) -> Iterator[None]:
    """Scoped :func:`set_numpy` (for the on/off equivalence sweeps)."""
    previous = set_numpy(enabled)
    try:
        yield
    finally:
        set_numpy(previous)


def int_column(values: Sequence[int] = ()):
    """A compact integer column: ``array('l')`` or ``numpy.int64``.

    The two containers agree on every value-level operation the batch
    kernels perform; only the memory layout and the constant factor of
    bulk operations differ.
    """
    if _NUMPY:
        return _numpy.array(values, dtype=_numpy.int64)
    return array("l", values)


def take(column, positions: Sequence[int]):
    """``column[positions]`` for either backend (new column)."""
    if _NUMPY and isinstance(column, _numpy.ndarray):
        return column[_numpy.asarray(positions, dtype=_numpy.int64)]
    return array("l", [column[i] for i in positions])


def tolist(column) -> List[int]:
    """The column's values as a plain list of Python ints."""
    if _numpy is not None and isinstance(column, _numpy.ndarray):
        return column.tolist()
    return list(column)


def positions_where_equal(column, value: int) -> List[int]:
    """Indexes ``i`` with ``column[i] == value``, ascending.

    The one-column selection every batch kernel starts from (rows of one
    logical class, postings of one level).  Vectorised under numpy.
    """
    if _numpy is not None and isinstance(column, _numpy.ndarray):
        return _numpy.nonzero(column == value)[0].tolist()
    return [i for i, item in enumerate(column) if item == value]


def shift_column(column, delta: int):
    """A new column with ``delta`` added to every entry (numpy-aware)."""
    if delta == 0:
        return column
    if _numpy is not None and isinstance(column, _numpy.ndarray):
        return column + delta
    return array("l", [item + delta for item in column])


def concat_columns(columns) -> object:
    """Concatenate integer columns (any mix of backends) into one.

    The result uses the *currently enabled* backend, so batches built
    from cached inputs stay consistent with the active configuration.
    """
    merged: List[int] = []
    for column in columns:
        merged.extend(tolist(column))
    return int_column(merged)


def backend_name() -> str:
    """Human-readable backend label for benches and telemetry."""
    return "numpy" if _NUMPY else "array"


__all__ = [
    "backend_name",
    "concat_columns",
    "int_column",
    "numpy_available",
    "numpy_enabled",
    "positions_where_equal",
    "set_numpy",
    "shift_column",
    "take",
    "tolist",
    "use_numpy",
]
