"""Columnar batch runtime: batch-at-a-time evaluation over node columns.

The package generalises the PR 3 structural-join fast path (columnar
:class:`~repro.storage.postings.Postings`) into an operator runtime: a
:class:`~repro.columns.batch.ColumnBatch` — parallel arrays of node ids,
interval starts/ends/levels and LC labels — flows between operators, and
the core operators gain vectorised ``execute_batch`` implementations
that transform whole columns instead of per-tree ``TreeSequence``
objects.  Operators without a batch form fall back transparently: the
evaluator materialises the batch at the boundary (metered as
``batch_fallbacks``) and runs the per-tree ``execute``.

:mod:`repro.columns.arrays` is the array backend: compact
``array('l')`` columns by default, numpy when enabled (DESIGN permits
numpy; behaviour is identical with numpy absent).
"""

from .arrays import (
    int_column,
    numpy_available,
    numpy_enabled,
    set_numpy,
    use_numpy,
)
from .batch import (
    ColumnBatch,
    as_tree_sequence,
    batch_enabled,
    set_batch,
    use_batch,
)

__all__ = [
    "ColumnBatch",
    "as_tree_sequence",
    "batch_enabled",
    "set_batch",
    "use_batch",
    "int_column",
    "numpy_available",
    "numpy_enabled",
    "set_numpy",
    "use_numpy",
]
