"""The batch currency of the columnar runtime: flattened tree columns.

A :class:`ColumnBatch` represents a sequence of result trees without
building a single :class:`~repro.model.tree.TNode`.  Every tree is
flattened into *rows of nodes in pre-order*; the batch holds the rows of
all trees concatenated, as parallel columns:

* ``tags`` / ``values`` — element name and atomic content per node;
* ``nids``    — node identifiers (stored interval ids, rarely temp ids);
* ``labels``  — the node's Logical Class Label (0 = unlabelled), one
  per node: witness construction marks each matched node with exactly
  its pattern node's class, which is what makes a single-label column
  lossless for batch-built trees;
* ``parents`` — row-relative parent offsets (root = -1), which make a
  row's slice self-contained: batches can drop, duplicate and reorder
  rows by copying slices, with no pointer fixups;
* ``offsets`` — row boundaries: row ``i`` occupies columns
  ``offsets[i]:offsets[i+1]``.

Because rows are pre-order, a node's subtree is a *contiguous slice* —
the invariant the extension-Select splicer and the columnar Project
exploit — and per-class node lists read off the columns in exactly the
order a materialised tree's LC index would produce.

Materialisation (:meth:`ColumnBatch.materialize`) is the boundary
adapter: it builds the actual ``XTree`` objects — once, cached — for
operators without a batch form and for the final result of a plan.
Trees materialise with their LC index pre-derived from the label
column, so downstream per-tree operators skip the index-building walk.

The module-level ``batch``/``numpy`` switches mirror the PR 3 fast-path
switch: :func:`use_batch` pins a configuration for the equivalence
sweeps and the before/after benchmark.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..model.node_id import NodeId
from ..model.sequence import TreeSequence
from ..model.tree import TNode, XTree
from .arrays import int_column, numpy_enabled

#: Module switch for the batch-at-a-time runtime (mirrors _FAST_PATH).
_BATCH = os.environ.get("REPRO_BATCH", "").strip().lower() not in (
    "0", "false", "no", "off"
)


def batch_enabled() -> bool:
    """Whether operators evaluate batch-at-a-time when possible."""
    return _BATCH


def set_batch(enabled: bool) -> bool:
    """Switch the batch runtime on or off; returns the previous setting."""
    global _BATCH
    previous = _BATCH
    _BATCH = bool(enabled)
    return previous


@contextmanager
def use_batch(enabled: bool = True) -> Iterator[None]:
    """Scoped :func:`set_batch` (equivalence sweeps, benchmarks)."""
    previous = set_batch(enabled)
    try:
        yield
    finally:
        set_batch(previous)


class ColumnBatch:
    """A sequence of trees in flattened columnar form (see module doc)."""

    __slots__ = (
        "offsets", "tags", "values", "nids", "labels", "parents", "_trees"
    )

    def __init__(
        self,
        offsets: Sequence[int],
        tags: List[str],
        values: list,
        nids: list,
        labels: Sequence[int],
        parents: Sequence[int],
    ) -> None:
        self.offsets = list(offsets)
        self.tags = tags
        self.values = values
        self.nids = nids
        self.labels = labels
        self.parents = parents
        #: materialised TreeSequence, cached after the first boundary hit
        self._trees: Optional[TreeSequence] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "ColumnBatch":
        """A batch of zero rows."""
        return cls.from_lists([0], [], [], [], [], [])

    @classmethod
    def from_lists(
        cls,
        offsets: List[int],
        tags: List[str],
        values: list,
        nids: list,
        labels: List[int],
        parents: List[int],
    ) -> "ColumnBatch":
        """Seal builder lists into a batch.

        Under numpy acceleration the integer columns convert to int64
        arrays; the pure-Python configuration keeps the builder lists
        as-is — operators hand columns to each other without a copy.
        """
        if numpy_enabled():
            labels = int_column(labels)
            parents = int_column(parents)
        return cls(offsets, tags, values, nids, labels, parents)

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.offsets) - 1

    def __bool__(self) -> bool:
        return len(self) > 0

    def row_slice(self, row: int) -> Tuple[int, int]:
        """The ``(start, end)`` column span of one row."""
        return self.offsets[row], self.offsets[row + 1]

    def row_order_key(self, row: int):
        """Document-order key of the row's root node."""
        return self.nids[self.offsets[row]].order_key

    def class_positions(self, row: int, lcl: int) -> List[int]:
        """Column positions of the row's class-``lcl`` nodes (pre-order).

        Equals the order of ``XTree.nodes_in_class`` on the materialised
        tree: rows are stored in pre-order.
        """
        start, end = self.offsets[row], self.offsets[row + 1]
        labels = self.labels
        return [j for j in range(start, end) if labels[j] == lcl]

    def class_values(self, row: int, lcl: int) -> list:
        """Content of the row's class-``lcl`` nodes, pre-order."""
        return [self.values[j] for j in self.class_positions(row, lcl)]

    def canonical_node(self, position: int, by_content: bool = True):
        """``TNode.canonical`` of the node at ``position``, off the columns.

        Children spans are discovered by scanning the contiguous subtree
        slice; batch-built rows carry no shadowed nodes, so no
        visibility filtering applies.
        """
        children = []
        end = self._subtree_end(position)
        child = position + 1
        while child < end:
            children.append(self.canonical_node(child, by_content))
            child = self._subtree_end(child)
        kids = tuple(children)
        if by_content:
            return (self.tags[position], self.values[position], kids)
        return (
            self.tags[position], self.values[position],
            self.nids[position], kids,
        )

    def subtree_node(self, position: int) -> TNode:
        """Build the ``TNode`` subtree rooted at ``position`` off the
        columns (the splice form for content that has no stored id)."""
        end = self._subtree_end(position)
        offsets = self.offsets
        base = offsets[bisect_right(offsets, position) - 1]
        tags, values, nids = self.tags, self.values, self.nids
        labels, parents = self.labels, self.parents
        nodes: List[TNode] = []
        for j in range(position, end):
            label = labels[j]
            node = TNode.__new__(TNode)
            node.tag = tags[j]
            node.value = values[j]
            node.nid = nids[j]
            node.children = []
            node.shadowed = False
            node.lcls = {int(label)} if label else set()
            if j > position:
                # row-relative parents always land inside the slice here:
                # a subtree is contiguous and self-contained
                nodes[base + parents[j] - position].children.append(node)
            nodes.append(node)
        return nodes[0]

    def _subtree_end(self, position: int) -> int:
        """One past the last column of the subtree rooted at ``position``.

        Walks forward while parents point at or after ``position`` —
        valid because rows are pre-order and parents are row-relative
        (converted through the row base).
        """
        offsets = self.offsets
        # locate the row containing the position (rows are small; the
        # callers always pass positions of the row they are scanning)
        row = bisect_right(offsets, position) - 1
        base, end = offsets[row], offsets[row + 1]
        parents = self.parents
        j = position + 1
        while j < end:
            parent = parents[j]
            if parent >= 0 and base + parent >= position:
                j += 1
            else:
                break
        return j

    # ------------------------------------------------------------------
    # row algebra (the kernels batch operators build on)
    # ------------------------------------------------------------------
    def select_rows(self, rows: Sequence[int]) -> "ColumnBatch":
        """A new batch holding the given rows, in the given order.

        Row-relative parents make this a pure slice copy, and runs of
        consecutive rows — the common shape for filters that keep most
        of their input — copy as single column slices.
        """
        total = len(rows)
        if total == len(self):
            for i, row in enumerate(rows):
                if row != i:
                    break
            else:
                # identity selection: batches are immutable, share it
                return self
        src_offsets = self.offsets
        offsets = [0]
        tags: List[str] = []
        values: list = []
        nids: list = []
        labels: List[int] = []
        parents: List[int] = []
        i = 0
        while i < total:
            first = rows[i]
            last = first
            i += 1
            while i < total and rows[i] == last + 1:
                last = rows[i]
                i += 1
            start, end = src_offsets[first], src_offsets[last + 1]
            tags.extend(self.tags[start:end])
            values.extend(self.values[start:end])
            nids.extend(self.nids[start:end])
            labels.extend(self.labels[start:end])
            parents.extend(self.parents[start:end])
            base = offsets[-1] - src_offsets[first]
            for row in range(first, last + 1):
                offsets.append(src_offsets[row + 1] + base)
        return ColumnBatch.from_lists(
            offsets, tags, values, nids, labels, parents
        )

    @classmethod
    def concat(cls, batches: Sequence["ColumnBatch"]) -> "ColumnBatch":
        """Concatenate batches row-wise, preserving order."""
        offsets = [0]
        tags: List[str] = []
        values: list = []
        nids: list = []
        labels: List[int] = []
        parents: List[int] = []
        for batch in batches:
            base = offsets[-1]
            tags.extend(batch.tags)
            values.extend(batch.values)
            nids.extend(batch.nids)
            labels.extend(batch.labels)
            parents.extend(batch.parents)
            offsets.extend(
                offset + base for offset in batch.offsets[1:]
            )
        return cls.from_lists(offsets, tags, values, nids, labels, parents)

    # ------------------------------------------------------------------
    # derived interval columns (the ISSUE's starts/ends/levels view)
    # ------------------------------------------------------------------
    def interval_columns(self):
        """``(starts, ends, levels)`` of stored nodes' interval ids.

        Temporary ids contribute ``(-1, -1, -1)`` placeholders; batch
        rows are overwhelmingly stored nodes (witness matches), so the
        columns are directly useful for order keys and joins.
        """
        starts: List[int] = []
        ends: List[int] = []
        levels: List[int] = []
        for nid in self.nids:
            if isinstance(nid, NodeId):
                starts.append(nid.start)
                ends.append(nid.end)
                levels.append(nid.level)
            else:
                starts.append(-1)
                ends.append(-1)
                levels.append(-1)
        return int_column(starts), int_column(ends), int_column(levels)

    # ------------------------------------------------------------------
    # boundary adapter
    # ------------------------------------------------------------------
    def materialize(self, metrics=None) -> TreeSequence:
        """Build (and cache) the actual trees this batch represents.

        Trees are built in one pass per row, with the LC index derived
        from the label column as the nodes are created (creation order
        is pre-order, which is exactly the order a lazy index build
        would record).  ``metrics.trees_built`` advances per tree, as
        the per-tree path does at its own build sites.
        """
        if self._trees is not None:
            return self._trees
        out = TreeSequence()
        offsets = self.offsets
        tags, values, nids = self.tags, self.values, self.nids
        labels, parents = self.labels, self.parents
        for row in range(len(offsets) - 1):
            start, end = offsets[row], offsets[row + 1]
            nodes: List[TNode] = []
            index: Dict[int, List[TNode]] = {}
            for j in range(start, end):
                label = labels[j]
                node = TNode.__new__(TNode)
                node.tag = tags[j]
                node.value = values[j]
                node.nid = nids[j]
                node.children = []
                node.shadowed = False
                if label:
                    label = int(label)
                    node.lcls = {label}
                    index.setdefault(label, []).append(node)
                else:
                    node.lcls = set()
                parent = parents[j]
                if parent >= 0:
                    nodes[parent].children.append(node)
                nodes.append(node)
            tree = XTree(nodes[0])
            tree._lc_index = index
            tree._saw_shadowed = False
            out.append(tree)
            if metrics is not None:
                metrics.trees_built += 1
        self._trees = out
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ColumnBatch rows={len(self)} "
            f"nodes={len(self.tags)}>"
        )


def as_tree_sequence(
    result, metrics=None, fallback: bool = False
) -> TreeSequence:
    """Boundary adapter: a ``TreeSequence`` for either representation.

    With ``fallback`` the conversion is metered as ``batch_fallbacks``
    — an operator without a batch form forced the materialisation.  The
    final result of a plan converts without the fallback stamp (that
    boundary is inherent, not a missing batch form).
    """
    if isinstance(result, ColumnBatch):
        if (
            fallback
            and metrics is not None
            and result._trees is None
        ):
            metrics.batch_fallbacks += 1
        return result.materialize(metrics)
    return result


__all__ = [
    "ColumnBatch",
    "as_tree_sequence",
    "batch_enabled",
    "set_batch",
    "use_batch",
]
