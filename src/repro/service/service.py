"""Concurrent query execution over one immutable :class:`Database`.

This is the prototype-to-DBMS step of the reproduction: the paper
evaluates TLC inside TIMBER as a database *service*, and a service is
exactly what ``Engine.run`` is not — it re-compiles every query, runs
single-threaded, and cannot be stopped once started.
:class:`QueryService` wraps an :class:`~repro.engine.Engine` with:

* **prepared queries** — compiles go through a bounded
  :class:`~repro.service.cache.PlanCache`; an identical query (modulo
  whitespace) skips parse/translate/analyze/rewrite entirely and goes
  straight to execution;
* **an execution pool** — many queries execute concurrently against
  the one immutable database.  ``mode="thread"`` (the default) runs
  them on a thread pool; ``mode="process"`` routes each request through
  a :class:`~repro.service.pool.WorkerPool` of worker *processes*, the
  architecture that actually scales with cores (plan evaluation is
  CPU-bound pure Python, so threads serialise on the GIL).  Either
  way each request gets its own :class:`~repro.core.base.Context`, and
  with it a *fresh*, request-scoped
  :class:`~repro.patterns.scan_cache.ScanCache` (the cache itself
  asserts it is never shared across concurrent requests; see its
  lifetime contract).  Stored documents, indexes and compiled plans are
  all read-only at execution time, which is what makes the concurrent
  results byte-identical to serial ones.  The work counters are
  thread-striped (:class:`~repro.storage.stats.Metrics`), so totals
  are exact under concurrency and each request's counter delta is
  attributed to that request alone;
* **deadlines and cancellation** — per-query
  :class:`~repro.core.limits.ExecutionLimits` arm the evaluator's
  cooperative checks, so a query past its wall-clock or cardinality
  budget raises :class:`~repro.errors.QueryTimeoutError` /
  :class:`~repro.errors.ResourceLimitError` instead of hanging, and
  :meth:`QueryHandle.cancel` aborts an in-flight query at its next
  check;
* **graceful degradation** — if the columnar fast path raises an
  unexpected error, the query is retried once on the legacy join path
  (the executable specification) under the *same* remaining budget
  before the failure is surfaced.
"""

from __future__ import annotations

import pickle
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import asdict, dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from ..core.base import Context
from ..core.evaluator import evaluate
from ..core.limits import ExecutionLimits
from ..engine import Engine
from ..errors import (
    ExecutionLimitError,
    QueryCancelledError,
    QueryTimeoutError,
    ResourceLimitError,
    ServiceError,
    WorkerError,
)
from ..model.sequence import TreeSequence
from ..storage.database import Database
from ..telemetry import hooks as telemetry
from ..telemetry import spans as spanlib
from ..telemetry.hooks import new_latency_histogram
from ..telemetry.querylog import (
    DEFAULT_SLOW_CAPACITY,
    QueryLog,
    QueryLogEvent,
    SlowQueryLog,
    excerpt,
    new_trace_id,
    query_hash,
)
from ..telemetry.spans import SpanRecorder, SpanStore, bind_recorder
from ..telemetry.registry import Histogram
from ..xquery.translator import TranslationResult
from .cache import CacheStats, PlanCache, PlanCacheKey, normalize_query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .pool import WorkerPool, WorkerResult

#: Default worker-thread count.
DEFAULT_THREADS = 4

#: Execution backends a service can run requests on.
SERVICE_MODES = ("thread", "process")

#: How often (seconds) a dispatcher thread waiting on a worker process
#: re-checks its request's cancel event.
_DISPATCH_POLL_SECONDS = 0.05

#: Distinct per-query latency classes tracked before new queries fall
#: into the ``other`` bucket (bounds ServiceStats memory).
MAX_QUERY_CLASSES = 256

#: Engines the service can prepare plans for (``nav`` interprets the
#: AST — no plan to cache, no evaluator loop to budget).
SERVICE_ENGINES = ("tlc", "tax", "gtp")


@dataclass(frozen=True)
class PreparedQuery:
    """A compiled query: execute it repeatedly without recompiling.

    Obtained from :meth:`QueryService.prepare`; immutable and safe to
    execute from many threads at once.  ``cache_hit`` records whether
    preparation itself was answered from the plan cache.
    """

    text: str
    engine: str
    optimize: bool
    translation: TranslationResult
    key: PlanCacheKey
    generation: int
    cache_hit: bool = False

    @property
    def plan(self):
        """The root operator of the compiled plan."""
        return self.translation.plan

    def explain(self) -> str:
        """Readable rendering of the compiled plan."""
        return self.translation.explain()


class QueryHandle:
    """An in-flight query: a future plus its cooperative limits."""

    def __init__(
        self,
        future: "Future[TreeSequence]",
        limits: ExecutionLimits,
        prepared: PreparedQuery,
        on_queue_cancel: Optional[Callable[[], None]] = None,
    ) -> None:
        self._future = future
        self.limits = limits
        self.prepared = prepared
        self._on_queue_cancel = on_queue_cancel
        self._cancel_lock = threading.Lock()
        self._queue_cancel_counted = False

    def result(self, timeout: Optional[float] = None) -> TreeSequence:
        """Block for the result (re-raising any structured abort)."""
        return self._future.result(timeout)

    def done(self) -> bool:
        """Whether execution has finished (successfully or not)."""
        return self._future.done()

    def exception(self, timeout: Optional[float] = None):
        """The exception the query raised, if any (blocks like result)."""
        return self._future.exception(timeout)

    def cancel(self) -> bool:
        """Abort the query: drop it if still queued, else cooperatively.

        A queued query is cancelled outright — and counted *here*: its
        worker body never runs, so this is the only place the service
        can account for it (``Future.cancel`` keeps returning True once
        cancelled, hence the once-guard).  A running one has its
        limits' cancel event set and aborts with
        :class:`~repro.errors.QueryCancelledError` at the evaluator's
        next check.  Returns True when the cancellation was delivered
        (always, unless the query already finished).
        """
        if self._future.cancel():
            with self._cancel_lock:
                first = not self._queue_cancel_counted
                self._queue_cancel_counted = True
            if first and self._on_queue_cancel is not None:
                self._on_queue_cancel()
            return True
        self.limits.cancel()
        return not self._future.done()


@dataclass
class ServiceStats:
    """Counters over a service's lifetime plus its cache snapshot.

    ``counters`` is the database's merged :class:`Metrics` snapshot —
    exact under concurrency (the counters are thread-striped), and in
    process mode inclusive of every worker delta merged so far.
    ``latency`` maps query classes (``all`` plus one
    ``engine:queryhash`` entry per distinct prepared query, bounded at
    :data:`MAX_QUERY_CLASSES`) to their p50/p95/p99 percentiles.
    """

    executed: int = 0
    failed: int = 0
    timeouts: int = 0
    cancelled: int = 0
    legacy_retries: int = 0
    slow_queries: int = 0
    #: cached plans evicted by the planner's feedback re-costing
    plan_bumps: int = 0
    threads: int = 0
    mode: str = "thread"
    planner: bool = False
    spans: bool = False
    cache: CacheStats = field(default_factory=CacheStats)
    counters: Dict[str, int] = field(default_factory=dict)
    latency: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready view (the /stats endpoint's ``service`` block)."""
        payload = asdict(self)
        payload["cache"]["hit_rate"] = round(self.cache.hit_rate, 4)
        return payload


class QueryService:
    """Concurrent, cached, budgeted query execution over one database.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.Engine` (or bare
        :class:`~repro.storage.database.Database`) to serve.  Documents
        must be loaded before queries arrive; loading *during* operation
        invalidates affected cache entries via the database generation
        but does not lock out in-flight queries — keep loads quiescent.
    threads:
        Worker count of the execution pool.  In thread mode this is the
        thread count; in process mode it is both the dispatcher-thread
        count and the worker-process count (one dispatcher thread feeds
        one worker).
    mode:
        ``"thread"`` (default) executes on a thread pool in this
        process; ``"process"`` dispatches to a
        :class:`~repro.service.pool.WorkerPool` of worker processes,
        each holding its own copy of the immutable database — the mode
        that scales with cores.  Process mode requires the document set
        to be quiescent for the pool's lifetime (workers materialize
        the database once, at start).
    start_method:
        Process-mode only: ``"fork"`` (workers inherit the database —
        Linux default) or ``"spawn"`` (workers load a digest-verified
        :func:`~repro.storage.persist.write_snapshot` file — portable).
        ``None`` picks the platform default.
    cache_size:
        Capacity of the prepared-plan LRU.
    default_deadline / default_max_trees:
        Budgets applied to every query that does not bring its own.
    retry_legacy:
        Retry a query once on the legacy join path when the columnar
        fast path raises an unexpected error (structured aborts —
        timeout, cardinality, cancellation — are never retried).
    strict:
        Lint every freshly compiled TLC plan with the static LC-flow
        analyzer before it enters the cache (validation is amortised
        across all executions of the cached plan).
    slow_threshold:
        Wall-clock seconds past which a request counts as *slow*: it is
        logged to the slow-query ring and (when it succeeded and no
        capture for the same query hash is resident) re-executed once
        with the runtime tracer to capture a full EXPLAIN ANALYZE
        trace.  ``None`` (the default) disables slow-query handling.
    slow_log_capacity:
        Size of the slow-query ring (bounds capture memory).
    query_log:
        The structured :class:`~repro.telemetry.querylog.QueryLog`
        receiving one event per request; a private ring-only log is
        created when omitted.  Pass one with a ``sink_path`` to also
        persist events as JSON lines.
    planner:
        Cost-plan every freshly compiled TLC plan
        (:func:`~repro.planner.plan_physical`) before it enters the
        cache, and close the telemetry feedback loop: when a slow-query
        capture shows a cached plan's observed cardinalities favour a
        different physical shape, the plan is bumped out of the LRU and
        the next request recompiles with the observed overrides.
        ``None`` (the default) follows the process-wide
        ``REPRO_PLANNER`` toggle.
    spans:
        Record a full span tree for every request (parse → plan-cache →
        queue → dispatch → merge, across the worker boundary in process
        mode) into :attr:`span_store`, served by ``/trace/<id>`` and
        exportable as Chrome-trace JSON.  ``None`` (the default)
        follows the process-wide ``REPRO_SPANS`` toggle; with spans off
        the per-request cost is one boolean test.
    feedback_path:
        JSON file the planner feedback store round-trips through: its
        observed-cardinality overrides are loaded at startup (missing
        file is fine) and saved on :meth:`close`, so re-costing
        verdicts survive a service restart.
    """

    def __init__(
        self,
        engine: Union[Engine, Database],
        threads: int = DEFAULT_THREADS,
        mode: str = "thread",
        start_method: Optional[str] = None,
        cache_size: Optional[int] = None,
        default_deadline: Optional[float] = None,
        default_max_trees: Optional[int] = None,
        retry_legacy: bool = True,
        strict: bool = False,
        slow_threshold: Optional[float] = None,
        slow_log_capacity: int = DEFAULT_SLOW_CAPACITY,
        query_log: Optional[QueryLog] = None,
        planner: Optional[bool] = None,
        spans: Optional[bool] = None,
        feedback_path: Optional[str] = None,
    ) -> None:
        if threads <= 0:
            raise ServiceError("thread count must be positive")
        if mode not in SERVICE_MODES:
            raise ServiceError(
                f"mode must be one of {SERVICE_MODES}, got {mode!r}"
            )
        if slow_threshold is not None and slow_threshold < 0:
            raise ServiceError("slow threshold must be >= 0 seconds")
        self.engine = engine if isinstance(engine, Engine) else Engine(engine)
        self.db: Database = self.engine.db
        self.mode = mode
        self._worker_pool: Optional["WorkerPool"] = None
        if mode == "process":
            from .pool import WorkerPool

            self._worker_pool = WorkerPool(
                self.db,
                workers=threads,
                start_method=start_method,
                retry_legacy=retry_legacy,
            )
        self.cache = PlanCache(
            capacity=cache_size if cache_size is not None else 64,
            metrics=self.db.metrics,
        )
        self.default_deadline = default_deadline
        self.default_max_trees = default_max_trees
        self.retry_legacy = retry_legacy
        self.strict = strict
        self.threads = threads
        self.slow_threshold = slow_threshold
        self.query_log = query_log if query_log is not None else QueryLog()
        self.slow_log = SlowQueryLog(capacity=slow_log_capacity)
        if planner is None:
            from ..planner import planner_enabled

            planner = planner_enabled()
        self.planner = bool(planner)
        if spans is None:
            spans = spanlib.spans_enabled()
        self.spans = bool(spans)
        #: finished span captures behind /trace/<id> (always present so
        #: callers can flip spans on without re-wiring endpoints)
        self.span_store = SpanStore()
        from ..planner.feedback import FeedbackStore

        #: observed-cardinality overrides awaiting recompiles (feedback)
        self.feedback = FeedbackStore()
        self.feedback_path = feedback_path
        if feedback_path is not None:
            self.feedback.load(feedback_path)
        self._plan_bumps = 0
        self._pool = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-query"
        )
        self._lock = threading.Lock()
        self._degrade_lock = threading.Lock()
        self._closed = False
        self._executed = 0
        self._failed = 0
        self._timeouts = 0
        self._cancelled = 0
        self._legacy_retries = 0
        self._slow_queries = 0
        #: request-latency distributions backing the percentile stats:
        #: the ``all`` aggregate plus one histogram per query class
        self._latency_all = new_latency_histogram()
        self._class_lock = threading.Lock()
        self._class_hists: Dict[str, Tuple[str, Histogram]] = {}

    # ------------------------------------------------------------------
    # preparation (the plan cache front door)
    # ------------------------------------------------------------------
    def prepare(
        self, query: str, engine: str = "tlc", optimize: bool = False
    ) -> PreparedQuery:
        """Compile ``query`` through the plan cache.

        A second ``prepare`` (or ``execute``/``submit``) of the same
        query — whitespace-insensitively — returns the cached plan and
        performs no parsing, translation, analysis or rewriting at all;
        the skip shows up as ``plan_cache_hits`` in the counters.
        """
        self._ensure_open()
        if engine not in SERVICE_ENGINES:
            raise ServiceError(
                f"the service prepares algebraic plans; engine {engine!r} "
                f"is not one of {SERVICE_ENGINES}"
            )
        key = PlanCacheKey(normalize_query(query), engine, bool(optimize))
        generation = self.db.generation

        def compile_fn() -> TranslationResult:
            observed = (
                self.feedback.overrides_for(key) if self.planner else None
            )
            with spanlib.span("compile", engine=engine):
                translation = self.engine.plan(
                    query,
                    engine,
                    optimize,
                    planner=self.planner,
                    observed=observed,
                )
            if self.strict and engine == "tlc":
                from ..analysis import analyze
                from ..errors import PlanValidationError

                analysis = analyze(translation.plan)
                if not analysis.ok:
                    raise PlanValidationError(
                        "plan failed static LC-flow validation",
                        analysis.errors,
                    )
            return translation

        with spanlib.span("plan_cache"):
            translation, hit = self.cache.get_or_compile(
                key, generation, compile_fn
            )
        return PreparedQuery(
            text=query,
            engine=engine,
            optimize=bool(optimize),
            translation=translation,
            key=key,
            generation=generation,
            cache_hit=hit,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def submit(
        self,
        query: Union[str, PreparedQuery],
        engine: str = "tlc",
        optimize: bool = False,
        deadline: Optional[float] = None,
        max_trees: Optional[int] = None,
    ) -> QueryHandle:
        """Queue a query on the pool; returns a cancellable handle.

        ``query`` may be raw text (prepared through the cache first) or
        an existing :class:`PreparedQuery`.  ``deadline``/``max_trees``
        default to the service-wide budgets.

        Every request gets a trace id here — the same id its query-log
        event carries, so log lines join against exported span files.
        With spans on, a :class:`SpanRecorder` starts now: preparation
        runs inside a ``prepare`` span on this thread, and the ``queue``
        span opened before the pool hand-off measures the wait until a
        worker thread picks the request up.
        """
        self._ensure_open()
        trace_id = new_trace_id()
        recorder = SpanRecorder(trace_id) if self.spans else None
        if isinstance(query, PreparedQuery):
            prepared = query
        elif recorder is not None:
            try:
                with bind_recorder(recorder):
                    with recorder.span(
                        "prepare", {"engine": engine}
                    ) as sid:
                        prepared = self.prepare(
                            query, engine=engine, optimize=optimize
                        )
                    recorder.annotate(sid, cache_hit=prepared.cache_hit)
            except Exception:
                # compile failures never reach _observe; freeze the
                # partial capture so the failed request stays traceable
                self.span_store.put(recorder.finish(status="error"))
                raise
        else:
            prepared = self.prepare(query, engine=engine, optimize=optimize)
        limits = ExecutionLimits(
            deadline=(
                deadline if deadline is not None else self.default_deadline
            ),
            max_trees=(
                max_trees if max_trees is not None else self.default_max_trees
            ),
        )
        queue_sid = recorder.begin("queue") if recorder is not None else None
        future = self._pool.submit(
            self._run, prepared, limits, trace_id, recorder, queue_sid
        )
        return QueryHandle(
            future, limits, prepared, on_queue_cancel=self._count_queue_cancel
        )

    def execute(
        self,
        query: Union[str, PreparedQuery],
        engine: str = "tlc",
        optimize: bool = False,
        deadline: Optional[float] = None,
        max_trees: Optional[int] = None,
    ) -> TreeSequence:
        """Synchronous convenience: submit and wait for the result."""
        return self.submit(
            query,
            engine=engine,
            optimize=optimize,
            deadline=deadline,
            max_trees=max_trees,
        ).result()

    def execute_many(
        self,
        queries: Iterable[Union[str, PreparedQuery]],
        engine: str = "tlc",
        optimize: bool = False,
        deadline: Optional[float] = None,
        max_trees: Optional[int] = None,
    ) -> List[TreeSequence]:
        """Run a batch concurrently; results in submission order.

        The first structured failure (in submission order) is re-raised
        only after *every* handle has finished — sibling queries run to
        completion rather than being orphaned mid-flight, so the caller
        can retry the batch without racing stragglers from the last one.
        """
        handles = [
            self.submit(
                q,
                engine=engine,
                optimize=optimize,
                deadline=deadline,
                max_trees=max_trees,
            )
            for q in queries
        ]
        results: List[TreeSequence] = []
        first_error: Optional[BaseException] = None
        for handle in handles:
            try:
                results.append(handle.result())
            except BaseException as error:
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------------------
    # the worker body
    # ------------------------------------------------------------------
    def _run(
        self,
        prepared: PreparedQuery,
        limits: ExecutionLimits,
        trace_id: Optional[str] = None,
        recorder: Optional[SpanRecorder] = None,
        queue_sid: Optional[int] = None,
    ) -> TreeSequence:
        """Execute one prepared plan with a fresh, request-scoped context.

        The counter window is *thread-local* (``local_snapshot`` /
        ``local_diff``): this request runs wholly on this worker thread
        — and in process mode, the remote delta is merged into this
        thread's cell before the window closes — so the query-log row
        carries exactly this request's work, with no bleed from
        concurrent requests (a global snapshot here would attribute
        their deltas to whichever request happened to finish first).
        """
        started = time.perf_counter()
        if recorder is not None and queue_sid is not None:
            recorder.end(queue_sid)
        before = self.db.metrics.local_snapshot()
        status = "ok"
        error_text: Optional[str] = None
        result_trees = 0
        try:
            if recorder is not None:
                with bind_recorder(recorder), recorder.span("execute"):
                    result = self._run_guarded(prepared, limits, recorder)
            else:
                result = self._run_guarded(prepared, limits, None)
            result_trees = len(result)
            return result
        except BaseException as error:
            if isinstance(error, QueryTimeoutError):
                status = "timeout"
            elif isinstance(error, QueryCancelledError):
                status = "cancelled"
            elif isinstance(error, ResourceLimitError):
                status = "resource"
            else:
                status = "error"
            error_text = f"{type(error).__name__}: {error}"
            with self._lock:
                self._failed += 1
                if status == "timeout":
                    self._timeouts += 1
                elif status == "cancelled":
                    self._cancelled += 1
            raise
        finally:
            elapsed = time.perf_counter() - started
            self._observe(
                prepared,
                status,
                error_text,
                elapsed,
                result_trees,
                self.db.metrics.local_diff(before),
                trace_id=trace_id,
                recorder=recorder,
            )
            # counted last so an ``executed == N`` stats read implies the
            # telemetry for all N requests is already in the registry
            with self._lock:
                self._executed += 1

    def _run_guarded(
        self,
        prepared: PreparedQuery,
        limits: ExecutionLimits,
        recorder: Optional[SpanRecorder] = None,
    ) -> TreeSequence:
        """Evaluate with the graceful-degradation retry around it."""
        if self._worker_pool is not None:
            return self._run_process(prepared, limits, recorder)
        try:
            return self._evaluate(prepared, limits)
        except ExecutionLimitError:
            raise
        except Exception as error:
            if not self.retry_legacy:
                raise
            from ..physical.structural_join import (
                fast_path_enabled,
                use_fast_path,
            )

            if not fast_path_enabled():
                raise
            # graceful degradation: one retry on the legacy join
            # path, under the same remaining budget.  The toggle is
            # module-global, so the retry is serialised and any
            # query racing through the window simply runs legacy
            # too (identical results, slower).
            with self._lock:
                self._legacy_retries += 1
            telemetry.instrument("service.legacy_retry")
            with self._degrade_lock:
                with use_fast_path(False):
                    try:
                        return self._evaluate(prepared, limits)
                    except ExecutionLimitError:
                        raise
                    except Exception:
                        raise error from None

    def _evaluate(
        self, prepared: PreparedQuery, limits: ExecutionLimits
    ) -> TreeSequence:
        # a fresh Context per request: its ScanCache is request-scoped
        # (and asserts that — see the ScanCache lifetime contract)
        ctx = Context(self.db, scan_cache=True, limits=limits)
        return evaluate(prepared.plan, ctx)

    # ------------------------------------------------------------------
    # process-mode dispatch
    # ------------------------------------------------------------------
    def _run_process(
        self,
        prepared: PreparedQuery,
        limits: ExecutionLimits,
        recorder: Optional[SpanRecorder] = None,
    ) -> TreeSequence:
        """Ship one request to a worker process and merge its result.

        The limits are anchored *before* dispatch and the worker gets
        the remaining budget, so queue wait counts against the deadline
        exactly as it does in thread mode.  The wait loop polls the
        cancel event: a worker task cannot be interrupted mid-plan, so
        a cancelled request unblocks the caller immediately and the
        stray result — bounded by its worker-side deadline — is
        absorbed by a done-callback that merges its counters and
        telemetry (totals stay exact; the result itself is dropped).
        """
        assert self._worker_pool is not None
        from .pool import WorkItem

        limits.start()
        if limits.cancelled:
            raise QueryCancelledError()
        remaining = limits.remaining()
        if remaining is not None and remaining <= 0.0:
            # the budget died in the queue; don't ship a dead request
            # (worker-side limits also reject a non-positive deadline)
            raise QueryTimeoutError(limits.deadline, limits.elapsed())
        item = WorkItem(
            prepared=prepared,
            deadline=remaining,
            max_trees=limits.max_trees,
            trace_id=recorder.trace_id if recorder is not None else None,
            spans=recorder is not None,
        )
        if recorder is not None:
            return self._dispatch_traced(item, limits, recorder)
        try:
            future = self._worker_pool.submit(item)
        except Exception as error:
            raise WorkerError(type(error).__name__, str(error)) from error
        while True:
            try:
                worker_result = future.result(_DISPATCH_POLL_SECONDS)
                break
            except FuturesTimeoutError:
                if limits.cancelled:
                    future.add_done_callback(self._absorb_abandoned)
                    raise QueryCancelledError() from None
            except Exception as error:
                # the future failed without a WorkerResult: a worker
                # process died mid-request, or the pool broke
                raise WorkerError(type(error).__name__, str(error)) from error
        return self._merge_worker_result(worker_result)

    def _dispatch_traced(
        self,
        item: "object",
        limits: ExecutionLimits,
        recorder: SpanRecorder,
    ) -> TreeSequence:
        """The traced twin of the dispatch loop: measure the wire.

        The dispatcher pickles the :class:`~repro.service.pool.WorkItem`
        itself (so payload serialization is a real, timed span) and
        ships the blob through
        :meth:`~repro.service.pool.WorkerPool.submit_blob`; the worker
        side times deserialize / execute / result-serialize against its
        own perf clock anchored to the wall, and ``add_remote`` maps
        those records back onto this recorder's timeline, clamped into
        the ``dispatch`` span so bounded clock skew cannot escape the
        phase.  The gaps between our send/receive instants and the
        worker's window become the ``ipc_send`` / ``ipc_recv`` spans —
        executor queueing plus both pickle hops over the pipe.
        """
        assert self._worker_pool is not None
        dispatch_sid = recorder.begin("dispatch")
        try:
            with recorder.span("serialize") as sid:
                blob = pickle.dumps(item, pickle.HIGHEST_PROTOCOL)
            recorder.annotate(sid, bytes=len(blob))
            # send/receive instants come off the recorder's own perf
            # timeline (wall-vs-perf drift must not reorder dispatcher
            # spans); only the worker's endpoints need the wall bridge
            t_sent = recorder.now()
            try:
                future = self._worker_pool.submit_blob(blob)
            except Exception as error:
                raise WorkerError(
                    type(error).__name__, str(error)
                ) from error
            while True:
                try:
                    payload = future.result(_DISPATCH_POLL_SECONDS)
                    break
                except FuturesTimeoutError:
                    if limits.cancelled:
                        future.add_done_callback(self._absorb_abandoned)
                        raise QueryCancelledError() from None
                except Exception as error:
                    raise WorkerError(
                        type(error).__name__, str(error)
                    ) from error
            t_recv = recorder.now()
            result_blob, wire_records = payload
            with recorder.span("result_deserialize") as sid:
                worker_result = pickle.loads(result_blob)
            recorder.annotate(sid, bytes=len(result_blob))
            window = (recorder.start_of(dispatch_sid), recorder.now())
            recorder.add_remote(
                wire_records,
                parent=dispatch_sid,
                pid=worker_result.pid,
                window=window,
            )
            if wire_records:
                # the worker's outermost record brackets its whole stay;
                # the gaps against our send/receive instants are the IPC
                # spans (executor queueing + both pipe pickle hops)
                w_start = min(
                    max(
                        recorder.wall_to_timeline(
                            float(wire_records[0]["start"])
                        ),
                        t_sent,
                    ),
                    t_recv,
                )
                w_end = min(
                    max(
                        recorder.wall_to_timeline(
                            float(wire_records[0]["end"])
                        ),
                        w_start,
                    ),
                    t_recv,
                )
                recorder.record(
                    "ipc_send", t_sent, w_start, parent=dispatch_sid
                )
                recorder.record(
                    "ipc_recv", w_end, t_recv, parent=dispatch_sid
                )
            with recorder.span("merge"):
                return self._merge_worker_result(worker_result)
        finally:
            recorder.end(dispatch_sid)

    def _merge_worker_result(self, wr: "WorkerResult") -> TreeSequence:
        """Fold a worker's deltas into this process; return or re-raise.

        Counters merge into the *calling thread's* cell, inside the
        ``_run`` window that is timing this request — so the query-log
        row attributes the remote work to the right request.
        """
        if wr.worker_info and self._worker_pool is not None:
            self._worker_pool.note_worker(wr.worker_info)
        if wr.counters:
            self.db.metrics.merge(wr.counters)
        if wr.telemetry is not None and telemetry.enabled():
            telemetry.get_registry().merge_state(wr.telemetry)
        if wr.legacy_retried:
            with self._lock:
                self._legacy_retries += 1
            telemetry.instrument("service.legacy_retry")
        if wr.status == "ok":
            assert wr.result is not None
            return wr.result
        if wr.status == "timeout":
            raise QueryTimeoutError(*wr.error_args)
        if wr.status == "resource":
            raise ResourceLimitError(*wr.error_args)
        if wr.status == "cancelled":
            raise QueryCancelledError()
        raise WorkerError(wr.error_type or "Exception", wr.error_text)

    def _absorb_abandoned(self, future: "Future[WorkerResult]") -> None:
        """Done-callback for a worker task its request abandoned.

        Runs on the executor's result thread once the worker finishes.
        The request was already reported cancelled; only the side
        effects are kept — counters and telemetry merge (into this
        callback thread's cell: global totals stay exact) so abandoned
        work never goes missing from ``/metrics``.
        """
        try:
            if future.cancelled() or future.exception() is not None:
                return
            wr = future.result()
            if isinstance(wr, tuple):
                # traced dispatch ships (result blob, wire records)
                wr = pickle.loads(wr[0])
            if wr.worker_info and self._worker_pool is not None:
                self._worker_pool.note_worker(wr.worker_info)
            if wr.counters:
                self.db.metrics.merge(wr.counters)
            if wr.telemetry is not None and telemetry.enabled():
                telemetry.get_registry().merge_state(wr.telemetry)
        except Exception:  # pragma: no cover - defensive
            pass

    def _count_queue_cancel(self) -> None:
        """Account for a request cancelled before its task started.

        Its worker body never runs, so the per-request bookkeeping in
        ``_run`` never fires; without this, ``stats()`` totals drift
        from submissions (executed + queued ≠ submitted).
        """
        with self._lock:
            self._executed += 1
            self._failed += 1
            self._cancelled += 1

    # ------------------------------------------------------------------
    # telemetry: per-request observation and slow-query capture
    # ------------------------------------------------------------------
    def _observe(
        self,
        prepared: PreparedQuery,
        status: str,
        error_text: Optional[str],
        elapsed: float,
        result_trees: int,
        delta: Dict[str, int],
        trace_id: Optional[str] = None,
        recorder: Optional[SpanRecorder] = None,
    ) -> None:
        """Record one finished request: log event, metrics, latency.

        Runs in the worker thread *after* the result future resolves;
        it must never raise into the caller (a telemetry bug must not
        turn a good result into a failed query), so everything here is
        defensive.  ``trace_id`` is the id minted in :meth:`submit` —
        the query-log row and the span capture carry the same one, so
        ``tail`` output joins against exported span files.
        """
        try:
            qhash = query_hash(prepared.key.text)
            slow = (
                self.slow_threshold is not None
                and elapsed >= self.slow_threshold
            )
            trace_payload = None
            if slow:
                with self._lock:
                    self._slow_queries += 1
                telemetry.instrument("service.slow")
                # capture a full EXPLAIN ANALYZE once per query hash:
                # re-running a *slow* query is expensive, so the ring's
                # dedup check keeps a hot slow query from being traced
                # on every request
                if status == "ok" and self.slow_log.should_capture(qhash):
                    trace_payload = self._capture_slow(prepared)
                    if trace_payload is not None and self.planner:
                        self._recost_slow(prepared, trace_payload)
            if recorder is not None:
                capture = recorder.finish(status=status, slow=slow)
                self.span_store.put(capture)
                if telemetry.enabled():
                    telemetry.instrument("spans.request")
                    if slow:
                        telemetry.instrument("spans.slow")
            event = QueryLogEvent(
                trace_id=trace_id if trace_id is not None else new_trace_id(),
                query_hash=qhash,
                query=excerpt(prepared.text),
                engine=prepared.engine,
                optimize=prepared.optimize,
                cache_hit=prepared.cache_hit,
                status=status,
                seconds=elapsed,
                result_trees=result_trees,
                slow=slow,
                error=error_text,
                counters={k: v for k, v in delta.items() if v},
                trace=trace_payload,
            )
            self.query_log.emit(event)
            if slow:
                self.slow_log.record(event)
            if telemetry.enabled():
                telemetry.instrument(
                    "service.request",
                    labels={"engine": prepared.engine, "status": status},
                )
                telemetry.instrument(
                    "service.seconds",
                    elapsed,
                    labels={"engine": prepared.engine},
                )
            self._latency_all.observe(elapsed)
            hist = self._class_hist(
                prepared.engine, qhash, excerpt(prepared.text)
            )
            hist.observe(elapsed)
        except Exception:  # pragma: no cover - defensive
            pass

    def _recost_slow(
        self, prepared: PreparedQuery, trace_payload: dict
    ) -> None:
        """Close the feedback loop for one slow-query capture.

        Re-costs the cached plan against the cardinalities the tracer
        actually measured; when the corrected model prefers a different
        physical shape by more than the re-cost margin, the plan is
        bumped out of the prepared-plan LRU and the observed map is
        parked so the recompile serving the next request plans with it.
        Defensive like the rest of ``_observe``: a feedback bug must not
        fail a served query.
        """
        try:
            from ..planner.feedback import observed_from_trace, recost

            observed = observed_from_trace(trace_payload)
            if not observed:
                return
            stats = self.engine.cardinality_stats()
            verdict = recost(prepared.plan, stats, observed)
            if not verdict.changed:
                return
            self.feedback.remember(prepared.key, observed)
            if self.cache.invalidate(prepared.key):
                self.db.metrics.planner_evictions += 1
                with self._lock:
                    self._plan_bumps += 1
                telemetry.instrument("planner.bump")
        except Exception:  # pragma: no cover - defensive
            pass

    def _capture_slow(self, prepared: PreparedQuery) -> Optional[dict]:
        """Re-run a slow query under the tracer; JSON trace or None.

        The re-run happens with telemetry suppressed on this thread so
        the capture does not double-count the query in the exact
        registry totals, and under the service's default budgets so a
        pathological query cannot wedge a worker twice.
        """
        from ..trace import Tracer, trace_to_json

        try:
            with telemetry.disabled():
                limits = ExecutionLimits(
                    deadline=self.default_deadline,
                    max_trees=self.default_max_trees,
                )
                ctx = Context(self.db, scan_cache=True, limits=limits)
                tracer = Tracer(ctx.metrics)
                evaluate(prepared.plan, ctx, tracer)
                return trace_to_json(tracer.finish(prepared.plan))
        except Exception:
            return None

    def _class_hist(self, engine: str, qhash: str, query: str) -> Histogram:
        """The latency histogram for one query class (bounded set).

        Classes are ``engine:queryhash``; once :data:`MAX_QUERY_CLASSES`
        distinct classes exist, further queries share the ``other``
        bucket so an adversarial query stream cannot grow stats without
        bound.
        """
        key = f"{engine}:{qhash}"
        with self._class_lock:
            entry = self._class_hists.get(key)
            if entry is None:
                if len(self._class_hists) >= MAX_QUERY_CLASSES:
                    key = "other"
                    query = ""
                    entry = self._class_hists.get(key)
                if entry is None:
                    entry = (query, new_latency_histogram())
                    self._class_hists[key] = entry
            return entry[1]

    # ------------------------------------------------------------------
    # lifecycle and introspection
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Lifetime counters plus the plan-cache snapshot."""
        latency: Dict[str, Dict[str, object]] = {}
        snap = self._latency_all.snapshot()
        entry: Dict[str, object] = {"count": snap.count}
        entry.update(snap.percentiles_ms())
        latency["all"] = entry
        with self._class_lock:
            classes = list(self._class_hists.items())
        for key, (query, hist) in sorted(classes):
            snap = hist.snapshot()
            entry = {"count": snap.count}
            entry.update(snap.percentiles_ms())
            if query:
                entry["query"] = query
            latency[key] = entry
        with self._lock:
            return ServiceStats(
                executed=self._executed,
                failed=self._failed,
                timeouts=self._timeouts,
                cancelled=self._cancelled,
                legacy_retries=self._legacy_retries,
                slow_queries=self._slow_queries,
                plan_bumps=self._plan_bumps,
                threads=self.threads,
                mode=self.mode,
                planner=self.planner,
                spans=self.spans,
                cache=self.cache.stats(),
                counters=self.db.metrics.snapshot(),
                latency=latency,
            )

    @property
    def start_method(self) -> Optional[str]:
        """The worker pool's resolved start method; None in thread mode."""
        if self._worker_pool is None:
            return None
        return self._worker_pool.start_method

    def workers(self) -> Dict[str, object]:
        """Per-worker introspection (the ``/workers`` endpoint's body).

        Process mode reports one entry per worker process — requests
        served, plans cached by plan hash, snapshot load milliseconds,
        last heartbeat — plus the pool-level in-flight and dispatched
        gauges.  Thread mode has no worker processes; the shape stays
        identical with an empty worker list so callers need no branch.
        """
        payload: Dict[str, object] = {
            "mode": self.mode,
            "threads": self.threads,
            "start_method": self.start_method,
            "in_flight": 0,
            "dispatched": 0,
            "workers": [],
        }
        if self._worker_pool is not None:
            payload["in_flight"] = self._worker_pool.in_flight
            payload["dispatched"] = self._worker_pool.dispatched
            payload["workers"] = self._worker_pool.worker_info()
        return payload

    def prime(self, timeout: Optional[float] = None) -> List[int]:
        """Start and warm every worker now; returns worker pids.

        Thread mode is a no-op (threads are cheap and start eagerly
        enough); in process mode this forces all worker processes up
        and through database materialization before the first request
        — benchmarks call it so round 1 measures queries, not forks.
        """
        if self._worker_pool is None:
            return []
        return self._worker_pool.prime(timeout)

    def close(self, wait: bool = True) -> None:
        """Stop accepting queries and shut the pool down."""
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)
        if self._worker_pool is not None:
            self._worker_pool.close(wait=wait)
        if self.feedback_path is not None:
            try:
                self.feedback.save(self.feedback_path)
            except OSError:  # pragma: no cover - disk full / perms
                pass
        self.query_log.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceError("the query service has been closed")

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else f"threads={self.threads}"
        return f"<QueryService {state} cache={self.cache!r}>"
