"""The query service layer: prepared plans, concurrency, deadlines.

The paper evaluates TLC inside TIMBER as a database *service*; this
package is that step for the reproduction.  See
:class:`~repro.service.service.QueryService` for the entry point::

    from repro import Engine
    from repro.service import QueryService

    engine = Engine()
    engine.load_xml("auction.xml", xml_text)
    with QueryService(engine, threads=8, default_deadline=1.0) as svc:
        prepared = svc.prepare(query)      # compiled once, cached
        result = svc.execute(prepared)     # straight to execution
        handle = svc.submit(query)         # concurrent + cancellable
        result = handle.result()

Documented in ``docs/ARCHITECTURE.md`` (data flow) and DESIGN §11.
"""

from .cache import (
    DEFAULT_CACHE_SIZE,
    CacheStats,
    PlanCache,
    PlanCacheKey,
    normalize_query,
)
from .pool import (
    START_METHODS,
    WorkerPool,
    WorkerResult,
    WorkItem,
    default_start_method,
)
from .service import (
    DEFAULT_THREADS,
    SERVICE_ENGINES,
    SERVICE_MODES,
    PreparedQuery,
    QueryHandle,
    QueryService,
    ServiceStats,
)

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_THREADS",
    "SERVICE_ENGINES",
    "SERVICE_MODES",
    "START_METHODS",
    "CacheStats",
    "PlanCache",
    "PlanCacheKey",
    "PreparedQuery",
    "QueryHandle",
    "QueryService",
    "ServiceStats",
    "WorkItem",
    "WorkerPool",
    "WorkerResult",
    "default_start_method",
    "normalize_query",
]
