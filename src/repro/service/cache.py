"""The prepared-plan cache: a bounded LRU of compiled query plans.

Every ``Engine.run`` re-parses, re-translates, re-analyzes and (with
``optimize``) re-rewrites the query before a single index is probed.
For a service answering repeated queries that compile work is pure
rework — the documents are immutable between loads and translation is
deterministic, so the plan for a given ``(query text, engine, rewrite
config)`` never changes while the database generation stands still.

:class:`PlanCache` memoises :class:`~repro.xquery.translator.TranslationResult`
objects keyed on the *normalized* query text (whitespace runs collapse,
so reformatting a query does not defeat the cache), the engine name and
the rewrite flag.  Entries carry the
:attr:`~repro.storage.database.Database.generation` they were compiled
under; a lookup after a document (re)load sees a stale generation and
recompiles (counted as an eviction + miss), so the cache can never serve
a plan compiled against data that has been replaced.

The cache is safe for concurrent use: lookups and inserts hold a lock,
while compilation happens *outside* it (two racing threads may compile
the same query once each — both count as misses, the second insert
wins — which is cheaper than serialising every compile behind the
lock).  Plans themselves are immutable once built and the evaluator
never mutates operator trees, so one cached plan can execute on many
threads at once.

Hit/miss/eviction counts are mirrored into the database's
:class:`~repro.storage.stats.Metrics` (``plan_cache_hits`` /
``plan_cache_misses`` / ``plan_cache_evictions``), so they appear in
every counter snapshot, ``--stats`` line and trace report alongside the
scan-cache and fast-path counters.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..storage.stats import Metrics
from ..telemetry import hooks as telemetry
from ..xquery.translator import TranslationResult

#: Default number of prepared plans kept resident.
DEFAULT_CACHE_SIZE = 64

_WHITESPACE = re.compile(r"\s+")


def normalize_query(text: str) -> str:
    """Canonical cache form of a query: whitespace runs become one space.

    The XQuery fragment has no whitespace-significant constructs outside
    string literals; collapsing runs keeps differently indented copies
    of one query on the same cache entry.  (A literal containing runs of
    spaces would normalise to the same plan as its single-space twin —
    acceptable for a cache key because the *plan* is recompiled from the
    original text, never from the normalized form.)
    """
    return _WHITESPACE.sub(" ", text).strip()


@dataclass(frozen=True)
class PlanCacheKey:
    """Identity of one prepared plan: query × engine × rewrite config."""

    text: str  # normalized query text
    engine: str
    optimize: bool


@dataclass
class CacheStats:
    """A point-in-time snapshot of one cache's behaviour."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """Bounded LRU of compiled plans with generation invalidation."""

    def __init__(
        self,
        capacity: int = DEFAULT_CACHE_SIZE,
        metrics: Optional[Metrics] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("plan cache capacity must be positive")
        self.capacity = capacity
        self.metrics = metrics
        self._lock = threading.Lock()
        #: key -> (database generation at compile time, compiled plan)
        self._entries: "OrderedDict[PlanCacheKey, Tuple[int, TranslationResult]]" = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # the lookup protocol
    # ------------------------------------------------------------------
    def get(
        self, key: PlanCacheKey, generation: int
    ) -> Optional[TranslationResult]:
        """The cached plan for ``key`` at ``generation``, or None.

        A stale entry (compiled under an older database generation) is
        dropped and counted as an eviction; the lookup is then a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if entry[0] == generation:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    if self.metrics is not None:
                        self.metrics.plan_cache_hits += 1
                    telemetry.instrument("plan_cache.hit")
                    return entry[1]
                del self._entries[key]
                self._evictions += 1
                if self.metrics is not None:
                    self.metrics.plan_cache_evictions += 1
                telemetry.instrument("plan_cache.eviction")
            self._misses += 1
            if self.metrics is not None:
                self.metrics.plan_cache_misses += 1
            telemetry.instrument("plan_cache.miss")
            return None

    def put(
        self,
        key: PlanCacheKey,
        generation: int,
        translation: TranslationResult,
    ) -> None:
        """Insert a freshly compiled plan, evicting LRU past capacity."""
        with self._lock:
            self._entries[key] = (generation, translation)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                if self.metrics is not None:
                    self.metrics.plan_cache_evictions += 1
                telemetry.instrument("plan_cache.eviction")

    def get_or_compile(
        self,
        key: PlanCacheKey,
        generation: int,
        compile_fn: Callable[[], TranslationResult],
    ) -> Tuple[TranslationResult, bool]:
        """The plan for ``key``, compiling on miss; returns (plan, hit).

        Compilation runs outside the lock: concurrent misses on one key
        compile independently rather than queueing every other query
        behind one compile.
        """
        cached = self.get(key, generation)
        if cached is not None:
            return cached, True
        translation = compile_fn()
        self.put(key, generation, translation)
        return translation, False

    # ------------------------------------------------------------------
    # introspection and maintenance
    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """Snapshot of hit/miss/eviction counts and occupancy."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def invalidate(self, key: PlanCacheKey) -> bool:
        """Drop one cached plan; True when an entry was evicted.

        The planner's feedback loop calls this when re-costing a slow
        query against observed cardinalities finds a cheaper shape: the
        next request for ``key`` misses, recompiles, and the recompile
        plans with the observed overrides.  Counted as an eviction.
        """
        with self._lock:
            if key not in self._entries:
                return False
            del self._entries[key]
            self._evictions += 1
            if self.metrics is not None:
                self.metrics.plan_cache_evictions += 1
            telemetry.instrument("plan_cache.eviction")
            return True

    def clear(self) -> None:
        """Drop every cached plan (counts are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: PlanCacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        stats = self.stats()
        return (
            f"<PlanCache {stats.size}/{stats.capacity} "
            f"hits={stats.hits} misses={stats.misses} "
            f"evictions={stats.evictions}>"
        )
