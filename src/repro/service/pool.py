"""Process-pool worker backend: query execution across address spaces.

BENCH_4/5 measured the thread pool running *slower* than serial — TLC
plan evaluation is CPU-bound pure Python, so threads serialise on the
GIL.  This module is the other side of that wall: a
:class:`WorkerPool` owns N worker *processes*, each holding its own
materialization of the one immutable :class:`~repro.storage.database.
Database`, and the dispatcher (the :class:`~repro.service.service.
QueryService` thread pool) ships prepared plans over and merges
serialized results back — in submission order, byte-identical to
serial execution (the 23-query XMark sweep is the oracle).

**Database handoff.**  Two start methods, selected per pool:

* ``fork`` (Linux default): the dispatcher parks the database in a
  module-level registry under a token; forked children inherit the
  whole object graph for free and look the token up in
  :func:`_init_worker`.  Zero serialization, copy-on-write memory.
* ``spawn`` (portable, and what macOS/Windows require): the dispatcher
  persists the database once with
  :func:`~repro.storage.persist.write_snapshot` and ships the tiny
  :class:`~repro.storage.persist.SnapshotHandle`; each worker loads and
  sha256-verifies its private copy at start.  PR 6's ``repro check
  --pass sx`` certified every operator and plan picklable precisely so
  this hop works.

**Why results stay exact.**  Everything request-scoped in thread mode
stays request-scoped here: each worker builds a fresh ``Context`` (and
with it a fresh ScanCache) per plan, cooperative
:class:`~repro.core.limits.ExecutionLimits` are rebuilt worker-side
from the *remaining* budget the dispatcher measured at dispatch, and
the graceful-degradation legacy retry runs inside the worker (the
fast-path toggle is process-local state).  Exceptions never cross the
boundary as objects — several carry multi-argument constructors that
break ``pickle`` round-trips — so :class:`WorkerResult` carries a
status plus the constructor arguments of the structured errors, and
the dispatcher re-raises the real exception types.

**Why /metrics stays exact.**  Each result ships two deltas: the
worker database's :class:`~repro.storage.stats.Metrics` window (exact —
a worker process runs one request at a time on one thread) and the
worker's telemetry-registry window
(:func:`~repro.telemetry.registry.diff_states` between export
snapshots).  The dispatcher folds both into its own database metrics /
process registry, so the ``/metrics`` endpoint reports the same totals
it would have had the work run locally.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import tempfile
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..core.base import Context
from ..core.evaluator import evaluate
from ..core.limits import ExecutionLimits
from ..errors import (
    ExecutionLimitError,
    QueryCancelledError,
    QueryTimeoutError,
    ResourceLimitError,
    ServiceError,
)
from ..model.sequence import TreeSequence
from ..storage.database import Database
from ..storage.persist import SnapshotHandle, open_snapshot, write_snapshot
from ..telemetry import hooks as telemetry
from ..telemetry.registry import MetricsRegistry, diff_states

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .service import PreparedQuery

#: Start methods a pool will accept.
START_METHODS = ("fork", "spawn")


def default_start_method() -> str:
    """``fork`` where the platform offers it (free memory sharing),
    ``spawn`` otherwise."""
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


# ---------------------------------------------------------------------------
# wire protocol
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WorkItem:
    """One dispatched request: the compiled plan plus its budgets.

    ``deadline`` is the *remaining* wall-clock budget at dispatch time
    (the dispatcher anchors the limits first), so queue wait is charged
    to the request exactly as it is in thread mode.
    """

    prepared: "PreparedQuery"
    deadline: Optional[float]
    max_trees: Optional[int]
    #: Trace context: the request's correlation id, and whether the
    #: worker should measure its own phases (deserialize / execute /
    #: result serialize) as wall-anchored span records.  Both default
    #: off so the spans-disabled wire format is byte-compatible.
    trace_id: Optional[str] = None
    spans: bool = False


@dataclass
class WorkerResult:
    """What a worker ships back for one :class:`WorkItem`.

    ``status`` is one of ``ok`` / ``timeout`` / ``resource`` /
    ``cancelled`` / ``error``; for the structured statuses,
    ``error_args`` are the constructor arguments of the corresponding
    exception type, which the dispatcher re-raises (the exception
    object itself never crosses the boundary — multi-argument
    ``__init__`` signatures do not survive pickling).  ``counters`` is
    the worker database's exact per-request Metrics window and
    ``telemetry`` the worker registry's window, both merged
    dispatcher-side.
    """

    status: str
    result: Optional[TreeSequence] = None
    error_type: str = ""
    error_args: Tuple[Any, ...] = ()
    error_text: str = ""
    counters: Dict[str, int] = field(default_factory=dict)
    telemetry: Optional[Dict[str, Any]] = None
    legacy_retried: bool = False
    pid: int = 0
    #: Worker-side span records (wall-anchored dicts) when the item was
    #: dispatched with ``spans=True``; reconciled by the dispatcher via
    #: :meth:`~repro.telemetry.spans.SpanRecorder.add_remote`.
    spans: Optional[List[Dict[str, Any]]] = None
    #: Per-worker introspection snapshot (requests served, plans seen
    #: by plan hash, snapshot load ms, last heartbeat) — piggybacked on
    #: every result so the dispatcher's registry stays current without
    #: extra IPC.
    worker_info: Optional[Dict[str, Any]] = None


# ---------------------------------------------------------------------------
# worker-process state (each worker process has its own copy)
# ---------------------------------------------------------------------------
#: Fork-mode handoff: token -> database, populated by the dispatcher
#: *before* the executor forks so children inherit the entry.  Keyed
#: (rather than a single slot) so several fork-mode pools over
#: different databases can coexist in one dispatcher process.
_FORK_DBS: Dict[str, Database] = {}
_FORK_DBS_LOCK = threading.Lock()

#: The worker's materialized database and config, set by
#: :func:`_init_worker`.  A worker process is single-threaded, but the
#: writes stay lock-guarded so the concurrency lint's whole-package
#: passes hold everywhere.
_WORKER_STATE: Dict[str, Any] = {}
_WORKER_STATE_LOCK = threading.Lock()


def _fork_token_for(db: Database) -> str:
    return f"{os.getpid()}:{id(db)}"


def _init_worker(
    source: Optional[SnapshotHandle],
    fork_token: Optional[str],
    retry_legacy: bool,
) -> None:
    """Materialize this worker's database once, then warm it.

    Runs in the child at process start.  Fork workers resolve the
    inherited ``fork_token``; spawn workers load and digest-verify the
    snapshot.  A failure here poisons the executor (every pending
    future breaks), which is the right behaviour: a worker that cannot
    produce a verified database must not answer queries.
    """
    load_started = time.perf_counter()
    if fork_token is not None:
        with _FORK_DBS_LOCK:
            db = _FORK_DBS.get(fork_token)
        if db is None:
            raise ServiceError(
                f"fork handoff token {fork_token!r} not found in worker; "
                "was the database released before the pool started?"
            )
    elif source is not None:
        db = open_snapshot(source)
    else:
        raise ServiceError("worker started with neither snapshot nor token")
    with _WORKER_STATE_LOCK:
        _WORKER_STATE["db"] = db
        _WORKER_STATE["retry_legacy"] = bool(retry_legacy)
        _WORKER_STATE["started_wall"] = time.time()
        _WORKER_STATE["requests"] = 0
        _WORKER_STATE["plan_hashes"] = {}
        _WORKER_STATE["last_heartbeat"] = time.time()
    # a fresh registry: fork-inherited parent history must not be
    # re-shipped to the dispatcher inside this worker's deltas
    telemetry.set_registry(MetricsRegistry())
    _warm(db)
    # snapshot load ms covers materialization *and* index warm-up: both
    # are start-up cost the first request would otherwise pay
    with _WORKER_STATE_LOCK:
        _WORKER_STATE["snapshot_load_ms"] = round(
            (time.perf_counter() - load_started) * 1000, 3
        )


def _warm(db: Database) -> None:
    """Touch every document's indexes so first requests pay no lazy cost."""
    for name in db.document_names():
        tag_index = db.tag_index(name)
        for tag in tag_index.tags():
            tag_index.count(tag)


#: Distinct plan hashes a worker tracks before new ones fold into the
#: ``other`` bucket (bounds the per-result introspection payload).
MAX_WORKER_PLAN_HASHES = 64


def _worker_info_snapshot() -> Dict[str, Any]:
    """This worker's introspection record (shipped with every result)."""
    with _WORKER_STATE_LOCK:
        return {
            "pid": os.getpid(),
            "requests": int(_WORKER_STATE.get("requests", 0)),
            "plans": dict(_WORKER_STATE.get("plan_hashes", {})),
            "snapshot_load_ms": _WORKER_STATE.get("snapshot_load_ms"),
            "started_wall": _WORKER_STATE.get("started_wall"),
            "last_heartbeat": _WORKER_STATE.get("last_heartbeat"),
        }


def _note_request(plan_hash: str) -> None:
    """Bump this worker's served-request and plan-hash bookkeeping."""
    with _WORKER_STATE_LOCK:
        _WORKER_STATE["requests"] = int(_WORKER_STATE.get("requests", 0)) + 1
        _WORKER_STATE["last_heartbeat"] = time.time()
        plans = _WORKER_STATE.setdefault("plan_hashes", {})
        if plan_hash not in plans and len(plans) >= MAX_WORKER_PLAN_HASHES:
            plan_hash = "other"
        plans[plan_hash] = plans.get(plan_hash, 0) + 1


def _ping(hold_seconds: float = 0.0) -> Tuple[int, int, Dict[str, Any]]:
    """Liveness probe: (worker pid, documents materialized, worker info).

    ``hold_seconds`` keeps the probed worker busy briefly so a batch of
    probes cannot all be drained by the first worker to come up — the
    executor spawns processes on demand, one per *pending* item.
    """
    with _WORKER_STATE_LOCK:
        db = _WORKER_STATE.get("db")
        _WORKER_STATE["last_heartbeat"] = time.time()
    if db is None:
        raise ServiceError("worker has no database (initializer did not run)")
    if hold_seconds > 0:
        time.sleep(hold_seconds)
    return os.getpid(), len(db.document_names()), _worker_info_snapshot()


def _execute_item(item: WorkItem) -> WorkerResult:
    """The worker body: evaluate one plan, ship result plus deltas."""
    with _WORKER_STATE_LOCK:
        db = _WORKER_STATE.get("db")
        retry_legacy = _WORKER_STATE.get("retry_legacy", True)
    if db is None:
        return WorkerResult(
            status="error",
            error_type="ServiceError",
            error_text="worker has no database (initializer did not run)",
            pid=os.getpid(),
        )
    from ..telemetry.querylog import query_hash

    _note_request(query_hash(item.prepared.key.text))
    limits = ExecutionLimits(deadline=item.deadline, max_trees=item.max_trees)
    counters_before = db.metrics.local_snapshot()
    registry = telemetry.get_registry()
    telemetry_before = registry.export_state()
    status = "ok"
    result: Optional[TreeSequence] = None
    error_type = ""
    error_text = ""
    error_args: Tuple[Any, ...] = ()
    legacy_retried = False
    try:
        result, legacy_retried = _evaluate_guarded(
            db, item.prepared, limits, retry_legacy
        )
    except QueryTimeoutError as error:
        status = "timeout"
        error_type = type(error).__name__
        error_text = str(error)
        error_args = (error.budget_seconds, error.elapsed_seconds)
    except ResourceLimitError as error:
        status = "resource"
        error_type = type(error).__name__
        error_text = str(error)
        error_args = (error.limit, error.produced, error.operator)
    except QueryCancelledError as error:
        status = "cancelled"
        error_type = type(error).__name__
        error_text = str(error)
    except BaseException as error:
        status = "error"
        error_type = type(error).__name__
        error_text = str(error)
    return WorkerResult(
        status=status,
        result=result,
        error_type=error_type,
        error_args=error_args,
        error_text=error_text,
        counters={
            k: v
            for k, v in db.metrics.local_diff(counters_before).items()
            if v
        },
        telemetry=diff_states(telemetry_before, registry.export_state()),
        legacy_retried=legacy_retried,
        pid=os.getpid(),
        worker_info=_worker_info_snapshot(),
    )


def _execute_blob(blob: bytes) -> Tuple[bytes, List[Dict[str, Any]]]:
    """Traced worker body: time every wire phase the dispatcher cannot.

    The spans-enabled dispatch path ships the pickled :class:`WorkItem`
    as an opaque blob so *this* function owns both pickle hops and can
    time them: payload deserialize, plan execution, result serialize.
    Each phase is reported as a wall-anchored span record — the worker
    pins one ``(perf_counter, time.time())`` pair at entry and converts
    its monotonic readings through it, which is what lets the
    dispatcher reconcile worker-relative clocks onto the request
    timeline under both ``fork`` and ``spawn``.  The result travels
    back pre-pickled (the executor pickles the small outer tuple again;
    that hop is charged to IPC, where it belongs).
    """
    wall0 = time.time()
    perf0 = time.perf_counter()

    def wall(perf: float) -> float:
        return wall0 + (perf - perf0)

    item: WorkItem = pickle.loads(blob)
    t_loaded = time.perf_counter()
    result = _execute_item(item)
    t_executed = time.perf_counter()
    payload = pickle.dumps(result, pickle.HIGHEST_PROTOCOL)
    t_serialized = time.perf_counter()
    records: List[Dict[str, Any]] = [
        {
            "name": "worker",
            "start": wall0,
            "end": wall(t_serialized),
            "parent": None,
            "tags": {"pid": os.getpid(), "status": result.status},
        },
        {
            "name": "worker.deserialize",
            "start": wall0,
            "end": wall(t_loaded),
            "parent": "worker",
            "tags": {"bytes": len(blob)},
        },
        {
            "name": "worker.execute",
            "start": wall(t_loaded),
            "end": wall(t_executed),
            "parent": "worker",
        },
        {
            "name": "worker.result_serialize",
            "start": wall(t_executed),
            "end": wall(t_serialized),
            "parent": "worker",
            "tags": {"bytes": len(payload)},
        },
    ]
    return payload, records


def _evaluate_guarded(
    db: Database,
    prepared: "PreparedQuery",
    limits: ExecutionLimits,
    retry_legacy: bool,
) -> Tuple[TreeSequence, bool]:
    """Evaluate with the same graceful degradation the thread pool has.

    The fast-path toggle is process-local, so the retry must happen
    *here* — the dispatcher cannot flip a module global in another
    address space.  Returns ``(result, retried_on_legacy_path)``.
    """
    try:
        return _evaluate(db, prepared, limits), False
    except ExecutionLimitError:
        raise
    except Exception as error:
        if not retry_legacy:
            raise
        from ..physical.structural_join import fast_path_enabled, use_fast_path

        if not fast_path_enabled():
            raise
        with _WORKER_STATE_LOCK:
            with use_fast_path(False):
                try:
                    return _evaluate(db, prepared, limits), True
                except ExecutionLimitError:
                    raise
                except Exception:
                    raise error from None


def _evaluate(
    db: Database, prepared: "PreparedQuery", limits: ExecutionLimits
) -> TreeSequence:
    # a fresh Context per request, exactly as in thread mode: its
    # ScanCache is request-scoped and asserts the lifetime contract
    ctx = Context(db, scan_cache=True, limits=limits)
    return evaluate(prepared.plan, ctx)


# ---------------------------------------------------------------------------
# dispatcher side
# ---------------------------------------------------------------------------
class WorkerPool:
    """Owns the worker processes and the database handoff for one service.

    ``close()`` releases everything the handoff created: the fork-token
    registry entry, and (when this pool wrote its own snapshot) the
    temp snapshot file.
    """

    def __init__(
        self,
        db: Database,
        workers: int,
        start_method: Optional[str] = None,
        retry_legacy: bool = True,
        snapshot_path: Optional[str] = None,
    ) -> None:
        if workers <= 0:
            raise ServiceError("worker count must be positive")
        method = start_method or default_start_method()
        if method not in START_METHODS:
            raise ServiceError(
                f"start method must be one of {START_METHODS}, got {method!r}"
            )
        if method not in multiprocessing.get_all_start_methods():
            raise ServiceError(
                f"start method {method!r} is unavailable on this platform"
            )
        self.workers = workers
        self.start_method = method
        self._fork_token: Optional[str] = None
        self._snapshot_path: Optional[str] = None
        self._owns_snapshot = False
        self._close_lock = threading.Lock()
        self._closed = False
        #: dispatcher-side introspection: pid -> latest worker_info
        #: snapshot (updated from every result and prime probe)
        self._registry_lock = threading.Lock()
        self._worker_registry: Dict[int, Dict[str, Any]] = {}
        self._in_flight = 0
        self._dispatched = 0
        if method == "fork":
            token = _fork_token_for(db)
            with _FORK_DBS_LOCK:
                _FORK_DBS[token] = db
            self._fork_token = token
            initargs: Tuple[Any, ...] = (None, token, retry_legacy)
        else:
            if snapshot_path is None:
                fd, snapshot_path = tempfile.mkstemp(
                    prefix="repro-snapshot-", suffix=".tlcdb"
                )
                os.close(fd)
                self._owns_snapshot = True
            handle = write_snapshot(db, snapshot_path)
            self._snapshot_path = snapshot_path
            initargs = (handle, None, retry_legacy)
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(method),
            initializer=_init_worker,
            initargs=initargs,
        )

    def _track(self, future: "Future[Any]") -> None:
        with self._registry_lock:
            self._in_flight += 1
            self._dispatched += 1
        future.add_done_callback(self._untrack)

    def _untrack(self, future: "Future[Any]") -> None:
        with self._registry_lock:
            self._in_flight -= 1

    def submit(self, item: WorkItem) -> "Future[WorkerResult]":
        """Queue one request on the worker processes."""
        future = self._executor.submit(_execute_item, item)
        self._track(future)
        return future

    def submit_blob(self, blob: bytes) -> "Future[Tuple[bytes, List[Dict[str, Any]]]]":
        """Queue one pre-pickled request on the traced wire path.

        The spans-enabled dispatcher pickles the :class:`WorkItem`
        itself (timing the hop) and ships the blob; the worker times
        its own deserialize / execute / result-serialize phases — see
        :func:`_execute_blob`.
        """
        future = self._executor.submit(_execute_blob, blob)
        self._track(future)
        return future

    def note_worker(self, info: Optional[Dict[str, Any]]) -> None:
        """Fold one worker_info snapshot into the dispatcher registry."""
        if not info or "pid" not in info:
            return
        with self._registry_lock:
            self._worker_registry[int(info["pid"])] = dict(info)

    def worker_info(self) -> List[Dict[str, Any]]:
        """Latest per-worker snapshots, sorted by pid."""
        with self._registry_lock:
            return [
                dict(info)
                for _, info in sorted(self._worker_registry.items())
            ]

    @property
    def in_flight(self) -> int:
        """Requests currently dispatched and not yet resolved."""
        with self._registry_lock:
            return self._in_flight

    @property
    def dispatched(self) -> int:
        """Requests ever dispatched to the worker processes."""
        with self._registry_lock:
            return self._dispatched

    def prime(self, timeout: Optional[float] = None) -> List[int]:
        """Start and warm every worker now; returns their pids.

        The executor starts processes on demand, one per outstanding
        item — submitting ``workers`` probes forces the whole fleet up
        front so the first real requests (and benchmark rounds) do not
        pay process start + database materialization.  Each probe also
        seeds the dispatcher-side worker registry (``/workers`` shows
        the fleet before the first request lands).
        """
        hold = 0.2 if self.workers > 1 else 0.0
        probes = [
            self._executor.submit(_ping, hold) for _ in range(self.workers)
        ]
        pids = set()
        for probe in probes:
            pid, _, info = probe.result(timeout)
            pids.add(pid)
            self.note_worker(info)
        return sorted(pids)

    def close(self, wait: bool = True) -> None:
        """Shut workers down and release the handoff artifacts."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=wait, cancel_futures=True)
        if self._fork_token is not None:
            with _FORK_DBS_LOCK:
                _FORK_DBS.pop(self._fork_token, None)
        if self._owns_snapshot and self._snapshot_path is not None:
            try:
                os.unlink(self._snapshot_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<WorkerPool workers={self.workers} "
            f"start_method={self.start_method}>"
        )
