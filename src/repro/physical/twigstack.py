"""TwigStack: holistic matching of branching twig patterns (reference [3]).

Extends :mod:`repro.physical.holistic` from linear paths to full twigs —
the second algorithm of Bruno/Koudas/Srivastava (SIGMOD 2002), which the
paper lists among the structural primitives TIMBER builds on.

Phase 1 streams all candidate lists once, guided by ``getNext`` (which
only advances a stream when its head either cannot contribute or is
guaranteed to have a full descendant extension), pushing nodes onto
per-pattern-node stacks and emitting **root-to-leaf path solutions**.
Phase 2 merge-joins the per-leaf path solutions on their shared pattern
prefixes into complete twig matches.

Supported edges: ancestor-descendant throughout phase 1 (the classic
algorithm); parent-child constraints are enforced at solution expansion —
correct, though without TwigStack's ad-only optimality guarantee, exactly
as the original paper notes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..model.node_id import NodeId
from ..storage.stats import Metrics


@dataclass
class TwigNode:
    """One node of a twig pattern: a candidate stream plus children."""

    label: str
    stream: Sequence[NodeId]
    axis: str = "ad"  # edge from the parent ("ad" or "pc")
    children: List["TwigNode"] = field(default_factory=list)

    def add_child(
        self, label: str, stream: Sequence[NodeId], axis: str = "ad"
    ) -> "TwigNode":
        child = TwigNode(label, stream, axis)
        self.children.append(child)
        return child

    def walk(self) -> Iterator["TwigNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def leaves(self) -> List["TwigNode"]:
        return [n for n in self.walk() if not n.children]


class _State:
    """Per-pattern-node runtime state: cursor, stack, solution buffer."""

    __slots__ = ("cursor", "stack", "solutions")

    def __init__(self) -> None:
        self.cursor = 0
        self.stack: List[Tuple[NodeId, int]] = []
        self.solutions: List[Tuple[NodeId, ...]] = []


def twig_stack(
    root: TwigNode, metrics: Optional[Metrics] = None
) -> List[Dict[str, NodeId]]:
    """All matches of the twig; one dict (label -> node) per match.

    Twig labels must be unique.  Matches are produced for every valid
    assignment of one stream node per pattern node satisfying all edges.
    """
    labels = [n.label for n in root.walk()]
    if len(set(labels)) != len(labels):
        raise ValueError("twig labels must be unique")
    if metrics is not None:
        metrics.structural_joins += 1
    states: Dict[str, _State] = {n.label: _State() for n in root.walk()}
    parents: Dict[str, Optional[TwigNode]] = {root.label: None}
    for node in root.walk():
        for child in node.children:
            parents[child.label] = node

    INFINITY = (float("inf"), float("inf"))

    def head(q: TwigNode) -> Optional[NodeId]:
        state = states[q.label]
        if state.cursor >= len(q.stream):
            return None
        return q.stream[state.cursor]

    def start_key(q: TwigNode):
        node = head(q)
        return INFINITY if node is None else (node.doc, node.start)

    def advance(q: TwigNode) -> None:
        states[q.label].cursor += 1

    def leaves_open(q: TwigNode) -> bool:
        """Can any leaf below ``q`` still emit a path solution?"""
        return any(head(leaf) is not None for leaf in q.leaves())

    def get_next(q: TwigNode) -> TwigNode:
        """The TwigStack getNext: the node whose head to act on next.

        Exhausted streams behave as ``start = infinity``; when every
        child stream is still open, heads of ``q`` that end before the
        furthest child head are skipped (they cannot cover all
        branches — the classic pruning).  Subtrees whose streams have
        fully drained are routed around, so remaining leaves in other
        branches keep emitting their path solutions.
        """
        if not q.children:
            return q
        active = [
            c
            for c in q.children
            if head(c) is not None or leaves_open(c)
        ]
        for child in active:
            result = get_next(child)
            if result is not child and head(result) is not None:
                return result
        open_child_keys = [
            start_key(c) for c in q.children if head(c) is not None
        ]
        if len(open_child_keys) == len(q.children):
            # safe to prune: every branch still has candidates
            max_key = max(open_child_keys)
            current = head(q)
            while current is not None and (
                (current.doc, current.end) < max_key
            ):
                advance(q)
                current = head(q)
        actionable = [c for c in active if head(c) is not None]
        if not actionable:
            return q
        min_child = min(actionable, key=start_key)
        if start_key(q) < start_key(min_child):
            return q
        return min_child

    def clean_stack(q: TwigNode, current: NodeId) -> None:
        stack = states[q.label].stack
        while stack and not _spans(stack[-1][0], current):
            stack.pop()

    def emit_path(q: TwigNode) -> None:
        """Record every root-to-q chain ending at q's stack top."""
        chain_levels: List[TwigNode] = []
        node: Optional[TwigNode] = q
        while node is not None:
            chain_levels.append(node)
            node = parents[node.label]
        chain_levels.reverse()

        def expand(depth: int, entry_index: int, suffix):
            level = chain_levels[depth]
            entry, parent_top = states[level.label].stack[entry_index]
            chain = (entry,) + suffix
            if depth == 0:
                states[q.label].solutions.append(chain)
                return
            upper = chain_levels[depth - 1]
            for ancestor_index in range(parent_top + 1):
                ancestor = states[upper.label].stack[ancestor_index][0]
                if not ancestor.contains(entry):
                    continue
                expand(depth - 1, ancestor_index, chain)

        expand(
            len(chain_levels) - 1,
            len(states[q.label].stack) - 1,
            (),
        )

    # ------------------------------------------------------------------
    # phase 1: stream all lists once, buffering path solutions per leaf
    # ------------------------------------------------------------------
    while leaves_open(root):
        q = get_next(root)
        current = head(q)
        if current is None:
            break
        parent = parents[q.label]
        if parent is not None:
            clean_stack(parent, current)
        if parent is None or states[parent.label].stack:
            clean_stack(q, current)
            parent_top = (
                len(states[parent.label].stack) - 1
                if parent is not None
                else -1
            )
            states[q.label].stack.append((current, parent_top))
            if not q.children:
                emit_path(q)
                states[q.label].stack.pop()
        advance(q)

    # ------------------------------------------------------------------
    # phase 2: merge the per-leaf path solutions on shared prefixes
    # ------------------------------------------------------------------
    return _merge_paths(root, states)


def _spans(ancestor: NodeId, node: NodeId) -> bool:
    return ancestor.doc == node.doc and node.start < ancestor.end


def _merge_paths(
    root: TwigNode, states: Dict[str, _State]
) -> List[Dict[str, NodeId]]:
    """Join per-leaf path solutions into full twig matches."""
    leaves = root.leaves()
    leaf_paths: List[Tuple[List[TwigNode], List[Tuple[NodeId, ...]]]] = []
    for leaf in leaves:
        levels: List[TwigNode] = []
        node: Optional[TwigNode] = leaf
        while node is not None:
            levels.append(node)
            node = _parent_of(root, node)
        levels.reverse()
        solutions = [
            chain
            for chain in states[leaf.label].solutions
            if _axes_ok(levels, chain)
        ]
        leaf_paths.append((levels, solutions))

    out: List[Dict[str, NodeId]] = []
    seen = set()
    for combo in itertools.product(
        *(solutions for _, solutions in leaf_paths)
    ):
        assignment: Dict[str, NodeId] = {}
        consistent = True
        for (levels, _), chain in zip(leaf_paths, combo):
            for level, node in zip(levels, chain):
                existing = assignment.get(level.label)
                if existing is None:
                    assignment[level.label] = node
                elif existing != node:
                    consistent = False
                    break
            if not consistent:
                break
        if consistent:
            key = tuple(sorted(assignment.items()))
            if key not in seen:
                seen.add(key)
                out.append(assignment)
    return out


def _parent_of(root: TwigNode, target: TwigNode) -> Optional[TwigNode]:
    for node in root.walk():
        if target in node.children:
            return node
    return None


def _axes_ok(levels: List[TwigNode], chain: Tuple[NodeId, ...]) -> bool:
    """Enforce parent-child edges on one root-to-leaf chain."""
    for depth in range(1, len(levels)):
        if levels[depth].axis == "pc":
            if chain[depth].level != chain[depth - 1].level + 1:
                return False
    return True


def match_twig_holistic(
    db,
    doc_name: str,
    root: TwigNode,
    metrics: Optional[Metrics] = None,
) -> List[Dict[str, NodeId]]:
    """Convenience wrapper for twigs whose streams come from tag lookups.

    TwigNodes with an empty stream get it filled from the document's tag
    index using their label as the tag name.
    """
    for node in root.walk():
        if not node.stream:
            node.stream = db.tag_lookup(doc_name, node.label)
    return twig_stack(root, metrics)
