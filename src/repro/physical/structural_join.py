"""Structural joins over interval-encoded node ids.

The basic primitive of Section 5.2: given two node-id lists sorted in
document order, find the (ancestor, descendant) or (parent, child) pairs.
Both inputs arrive sorted by ``(doc, start)`` — the tag index returns them
that way — so each probe is a binary search over the descendant starts,
giving the classic merge-style cost.

Four result shapes implement the four matching specifications (Section 5.2):

========  =======================  =============================
mSpec     algorithm                function
========  =======================  =============================
``-``     structural join          :func:`pair_join`
``?``     left-outer join          :func:`pair_join` (outer)
``+``     nest-structural-join     :func:`nest_join`
``*``     left-outer-nest-join     :func:`nest_join` (outer)
========  =======================  =============================
"""

from __future__ import annotations

import bisect
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from ..model.node_id import NodeId
from ..storage.stats import Metrics

Item = TypeVar("Item")


def _descendant_range(
    parent: NodeId, starts: Sequence[Tuple[int, int]]
) -> Tuple[int, int]:
    """Index range of ``starts`` lying strictly inside ``parent``'s interval.

    ``starts`` is a sorted list of ``(doc, start)`` keys.
    """
    lo = bisect.bisect_right(starts, (parent.doc, parent.start))
    hi = bisect.bisect_left(starts, (parent.doc, parent.end))
    return lo, hi


def _axis_ok(parent: NodeId, child: NodeId, axis: str) -> bool:
    if axis == "ad":
        return True  # containment already guaranteed by the range scan
    if axis == "pc":
        return child.level == parent.level + 1
    raise ValueError(f"unknown axis: {axis!r}")


def pair_join(
    parents: Sequence[Item],
    children: Sequence[Item],
    axis: str,
    metrics: Optional[Metrics] = None,
    parent_id: Callable[[Item], NodeId] = lambda x: x,
    child_id: Callable[[Item], NodeId] = lambda x: x,
    outer: bool = False,
) -> List[Tuple[Item, Optional[Item]]]:
    """Structural join producing one output pair per match.

    With ``outer`` (the ``?`` semantics) a parent with no matching child
    yields a single ``(parent, None)`` pair — the witness tree "is let
    through" as in Figure 4.

    Inputs must be sorted in document order of their node ids.
    """
    if metrics is not None:
        metrics.structural_joins += 1
    starts = [
        (child_id(c).doc, child_id(c).start) for c in children
    ]
    out: List[Tuple[Item, Optional[Item]]] = []
    for parent in parents:
        pid = parent_id(parent)
        lo, hi = _descendant_range(pid, starts)
        matched = False
        for idx in range(lo, hi):
            child = children[idx]
            if _axis_ok(pid, child_id(child), axis):
                out.append((parent, child))
                matched = True
        if outer and not matched:
            out.append((parent, None))
    return out


def nest_join(
    parents: Sequence[Item],
    children: Sequence[Item],
    axis: str,
    metrics: Optional[Metrics] = None,
    parent_id: Callable[[Item], NodeId] = lambda x: x,
    child_id: Callable[[Item], NodeId] = lambda x: x,
    outer: bool = False,
) -> List[Tuple[Item, List[Item]]]:
    """Nest-structural-join (Definition 8): cluster all matches per parent.

    One output per parent holding *all* its matching children; parents with
    no match are dropped (``+``) or kept with an empty cluster when
    ``outer`` is set (``*`` — the left-outer-nest variant).
    """
    if metrics is not None:
        metrics.structural_joins += 1
        metrics.nest_joins += 1
    starts = [
        (child_id(c).doc, child_id(c).start) for c in children
    ]
    out: List[Tuple[Item, List[Item]]] = []
    for parent in parents:
        pid = parent_id(parent)
        lo, hi = _descendant_range(pid, starts)
        cluster = [
            children[idx]
            for idx in range(lo, hi)
            if _axis_ok(pid, child_id(children[idx]), axis)
        ]
        if cluster or outer:
            out.append((parent, cluster))
    return out


def join_for_mspec(
    parents: Sequence[Item],
    children: Sequence[Item],
    axis: str,
    mspec: str,
    metrics: Optional[Metrics] = None,
    parent_id: Callable[[Item], NodeId] = lambda x: x,
    child_id: Callable[[Item], NodeId] = lambda x: x,
    child_starts: Optional[Sequence[Tuple[int, int]]] = None,
) -> List[Tuple[Item, List[List[Item]]]]:
    """Dispatch a pattern edge to the right join and normalise the output.

    Returns, for each surviving parent, the list of *alternatives*; each
    alternative is the list of children to place in the witness tree:

    * ``-``  one alternative per matching child (cross-product semantics),
    * ``?``  like ``-`` plus one empty alternative when nothing matched,
    * ``+``  exactly one alternative holding the whole cluster,
    * ``*``  one alternative holding the (possibly empty) cluster.

    This normal form is what the pattern matcher combines across edges.

    ``child_starts`` may carry the pre-sorted ``(doc, start)`` keys of
    ``children``; the extension matcher passes a cached copy so probing
    one anchor at a time stays logarithmic instead of rebuilding the key
    array per probe.
    """
    if child_starts is not None:
        if metrics is not None:
            metrics.structural_joins += 1
            if mspec in ("+", "*"):
                metrics.nest_joins += 1
        out: List[Tuple[Item, List[List[Item]]]] = []
        for parent in parents:
            pid = parent_id(parent)
            lo, hi = _descendant_range(pid, child_starts)
            matched = [
                children[idx]
                for idx in range(lo, hi)
                if _axis_ok(pid, child_id(children[idx]), axis)
            ]
            if mspec == "-":
                if matched:
                    out.append((parent, [[m] for m in matched]))
            elif mspec == "?":
                out.append(
                    (parent, [[m] for m in matched] if matched else [[]])
                )
            elif mspec == "+":
                if matched:
                    out.append((parent, [matched]))
            else:  # "*"
                out.append((parent, [matched]))
        return out
    if mspec in ("-", "?"):
        pairs = pair_join(
            parents, children, axis, metrics, parent_id, child_id,
            outer=(mspec == "?"),
        )
        grouped: dict = {}
        order: List[Item] = []
        for parent, child in pairs:
            key = id(parent)
            if key not in grouped:
                grouped[key] = (parent, [])
                order.append(parent)
            if child is not None:
                grouped[key][1].append([child])
            else:
                grouped[key][1].append([])
        return [grouped[id(p)] for p in order]
    if mspec in ("+", "*"):
        nested = nest_join(
            parents, children, axis, metrics, parent_id, child_id,
            outer=(mspec == "*"),
        )
        return [(parent, [cluster]) for parent, cluster in nested]
    raise ValueError(f"unknown matching specification: {mspec!r}")
