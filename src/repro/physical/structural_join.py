"""Structural joins over interval-encoded node ids.

The basic primitive of Section 5.2: given two node-id lists sorted in
document order, find the (ancestor, descendant) or (parent, child) pairs.
Both inputs arrive sorted by ``(doc, start)`` — the tag index returns them
that way — so the probe cost is merge-like.

Four result shapes implement the four matching specifications (Section 5.2):

========  =======================  =============================
mSpec     algorithm                function
========  =======================  =============================
``-``     structural join          :func:`pair_join`
``?``     left-outer join          :func:`pair_join` (outer)
``+``     nest-structural-join     :func:`nest_join`
``*``     left-outer-nest-join     :func:`nest_join` (outer)
========  =======================  =============================

Two implementations coexist:

* the **columnar fast path** (default): consumes precomputed
  ``(doc, start)`` / ``level`` columns when the child input carries them
  (a :class:`~repro.storage.postings.Postings` view from the tag index,
  or any container with cached ``starts``/``levels`` attributes — see
  :func:`child_columns`), and probes with a merge-style cursor that skips
  ahead monotonically across sorted parents (stack-tree style: the lower
  bound of each parent's descendant range never moves backwards, so every
  binary search runs over the unconsumed suffix only).  Parent-child
  joins over raw postings probe the ``parent.level + 1`` level partition
  instead of scanning the full ancestor range and filtering.
* the **legacy path** (``pair_join_legacy`` and friends): the original
  per-parent binary search over a per-call key array.  It is kept as the
  executable specification — the equivalence tests assert both paths
  produce identical output — and as the "before" configuration of the
  BENCH_3 fast-path benchmark.  ``use_fast_path(False)`` routes the
  public functions to it.

Both paths keep the original ``Sequence[Item]`` signatures: items may be
bare :class:`NodeId` values or any objects with ``parent_id``/``child_id``
extractors (the pattern matcher passes ``_MTree`` match variants).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from contextlib import contextmanager
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..model.node_id import NodeId
from ..storage.postings import Postings
from ..storage.stats import Metrics
from ..telemetry import hooks as telemetry

Item = TypeVar("Item")

_identity: Callable = lambda x: x

#: Module switch between the columnar fast path and the legacy joins.
_FAST_PATH = True


def fast_path_enabled() -> bool:
    """Whether the public join functions use the columnar fast path."""
    return _FAST_PATH


def set_fast_path(enabled: bool) -> bool:
    """Switch the fast path on or off; returns the previous setting."""
    global _FAST_PATH
    previous = _FAST_PATH
    _FAST_PATH = bool(enabled)
    if telemetry.enabled():
        # the toggle is the fast path's coarse telemetry surface: its
        # per-join work already flows through the Metrics counters
        # (structural_joins, postings_reused) exported at scrape time
        telemetry.instrument("fastpath.enabled", float(_FAST_PATH))
    return previous


@contextmanager
def use_fast_path(enabled: bool = True) -> Iterator[None]:
    """Scoped fast-path toggle (benchmarks and equivalence tests)."""
    previous = set_fast_path(enabled)
    try:
        yield
    finally:
        set_fast_path(previous)


# ----------------------------------------------------------------------
# columnar probe machinery
# ----------------------------------------------------------------------
def child_columns(
    children: Sequence[Item],
    child_id: Callable[[Item], NodeId] = _identity,
    metrics: Optional[Metrics] = None,
) -> Tuple[List[Tuple[int, int]], List[int]]:
    """The ``(doc, start)`` and ``level`` columns of a child input.

    A container that already carries ``starts``/``levels`` attributes (a
    tag-index :class:`Postings` view, or a candidate list a previous join
    annotated) is consumed as-is — metered as ``postings_reused``.
    Otherwise the columns are computed once and, when the container
    accepts attributes (the pattern matcher's ``Candidates`` lists do),
    cached on it so the next join over the same input skips the rebuild.

    The columns always describe the *node ids* of the items (whatever
    ``child_id`` extracts), which is well-defined because every caller's
    extractor returns the item's one node id.
    """
    starts = getattr(children, "starts", None)
    levels = getattr(children, "levels", None)
    if starts is not None and levels is not None:
        if metrics is not None:
            metrics.postings_reused += 1
        return starts, levels
    starts = []
    levels = []
    for child in children:
        cid = child_id(child)
        starts.append((cid.doc, cid.start))
        levels.append(cid.level)
    try:
        children.starts = starts  # type: ignore[union-attr]
        children.levels = levels  # type: ignore[union-attr]
    except AttributeError:
        pass  # plain lists/tuples cannot cache; nothing lost but the reuse
    return starts, levels


def _iter_matches(
    parents: Sequence[Item],
    children: Sequence[Item],
    axis: str,
    metrics: Optional[Metrics],
    parent_id: Callable[[Item], NodeId],
    child_id: Callable[[Item], NodeId],
    child_starts: Optional[Sequence[Tuple[int, int]]] = None,
    child_levels: Optional[Sequence[int]] = None,
) -> Iterator[Tuple[Item, List[Item]]]:
    """Yield ``(parent, matched_children)`` per parent, in parent order.

    The workhorse of the fast path.  Parents are expected sorted by
    ``(doc, start)`` (the documented contract); the cursor then only
    moves forward.  An out-of-order parent is still answered correctly —
    the cursor resets — it merely costs the skip optimisation.
    """
    if axis not in ("ad", "pc"):
        raise ValueError(f"unknown axis: {axis!r}")
    if axis == "pc" and isinstance(children, Postings):
        yield from _iter_matches_pc_partitioned(
            parents, children, parent_id, metrics
        )
        return
    if child_starts is not None:
        starts: Sequence[Tuple[int, int]] = child_starts
        levels = child_levels
        if metrics is not None:
            metrics.postings_reused += 1
    else:
        starts, levels = child_columns(children, child_id, metrics)
    cursor = 0
    prev_key: Optional[Tuple[int, int]] = None
    for parent in parents:
        pid = parent_id(parent)
        key = (pid.doc, pid.start)
        if prev_key is not None and key < prev_key:
            cursor = 0  # unsorted parent: fall back to a full probe
        prev_key = key
        lo = bisect_right(starts, key, cursor)
        cursor = lo
        hi = bisect_left(starts, (pid.doc, pid.end), lo)
        if axis == "ad":
            matched = list(children[lo:hi])
        elif levels is not None:
            want = pid.level + 1
            matched = [
                children[idx] for idx in range(lo, hi)
                if levels[idx] == want
            ]
        else:
            want = pid.level + 1
            matched = [
                children[idx] for idx in range(lo, hi)
                if child_id(children[idx]).level == want
            ]
        yield parent, matched


def _iter_matches_pc_partitioned(
    parents: Sequence[Item],
    children: Postings,
    parent_id: Callable[[Item], NodeId],
    metrics: Optional[Metrics],
) -> Iterator[Tuple[Item, List[Item]]]:
    """Parent-child matching against level-partitioned raw postings.

    For each parent only the ``parent.level + 1`` partition is probed:
    containment plus the level equality is exactly the parent-child test,
    so no per-child axis filter runs at all.  One forward-only cursor per
    partition preserves the stack-tree skipping within each level.
    """
    if metrics is not None:
        metrics.postings_reused += 1
    cursors: Dict[int, int] = {}
    prev_key: Optional[Tuple[int, int]] = None
    for parent in parents:
        pid = parent_id(parent)
        key = (pid.doc, pid.start)
        if prev_key is not None and key < prev_key:
            cursors.clear()
        prev_key = key
        level = pid.level + 1
        part = children.at_level(level)
        lo = bisect_right(part.starts, key, cursors.get(level, 0))
        cursors[level] = lo
        hi = bisect_left(part.starts, (pid.doc, pid.end), lo)
        yield parent, list(part.ids[lo:hi])


# ----------------------------------------------------------------------
# public joins (fast path with legacy dispatch)
# ----------------------------------------------------------------------
def pair_join(
    parents: Sequence[Item],
    children: Sequence[Item],
    axis: str,
    metrics: Optional[Metrics] = None,
    parent_id: Callable[[Item], NodeId] = _identity,
    child_id: Callable[[Item], NodeId] = _identity,
    outer: bool = False,
) -> List[Tuple[Item, Optional[Item]]]:
    """Structural join producing one output pair per match.

    With ``outer`` (the ``?`` semantics) a parent with no matching child
    yields a single ``(parent, None)`` pair — the witness tree "is let
    through" as in Figure 4.

    Inputs must be sorted in document order of their node ids.
    """
    if not _FAST_PATH:
        return pair_join_legacy(
            parents, children, axis, metrics, parent_id, child_id, outer
        )
    if metrics is not None:
        metrics.structural_joins += 1
    out: List[Tuple[Item, Optional[Item]]] = []
    for parent, matched in _iter_matches(
        parents, children, axis, metrics, parent_id, child_id
    ):
        if matched:
            for child in matched:
                out.append((parent, child))
        elif outer:
            out.append((parent, None))
    return out


def nest_join(
    parents: Sequence[Item],
    children: Sequence[Item],
    axis: str,
    metrics: Optional[Metrics] = None,
    parent_id: Callable[[Item], NodeId] = _identity,
    child_id: Callable[[Item], NodeId] = _identity,
    outer: bool = False,
) -> List[Tuple[Item, List[Item]]]:
    """Nest-structural-join (Definition 8): cluster all matches per parent.

    One output per parent holding *all* its matching children; parents with
    no match are dropped (``+``) or kept with an empty cluster when
    ``outer`` is set (``*`` — the left-outer-nest variant).
    """
    if not _FAST_PATH:
        return nest_join_legacy(
            parents, children, axis, metrics, parent_id, child_id, outer
        )
    if metrics is not None:
        metrics.structural_joins += 1
        metrics.nest_joins += 1
    out: List[Tuple[Item, List[Item]]] = []
    for parent, matched in _iter_matches(
        parents, children, axis, metrics, parent_id, child_id
    ):
        if matched or outer:
            out.append((parent, matched))
    return out


def join_for_mspec(
    parents: Sequence[Item],
    children: Sequence[Item],
    axis: str,
    mspec: str,
    metrics: Optional[Metrics] = None,
    parent_id: Callable[[Item], NodeId] = _identity,
    child_id: Callable[[Item], NodeId] = _identity,
    child_starts: Optional[Sequence[Tuple[int, int]]] = None,
    child_levels: Optional[Sequence[int]] = None,
) -> List[Tuple[Item, List[List[Item]]]]:
    """Dispatch a pattern edge to the right join and normalise the output.

    Returns, for each surviving parent, the list of *alternatives*; each
    alternative is the list of children to place in the witness tree:

    * ``-``  one alternative per matching child (cross-product semantics),
    * ``?``  like ``-`` plus one empty alternative when nothing matched,
    * ``+``  exactly one alternative holding the whole cluster,
    * ``*``  one alternative holding the (possibly empty) cluster.

    This normal form is what the pattern matcher combines across edges.

    ``child_starts`` / ``child_levels`` may carry the pre-sorted probe
    columns of ``children`` when the caller computed them out of band;
    containers that cache their own columns (``Postings``, the matcher's
    ``Candidates``) need neither — the join discovers and reuses the
    attached columns automatically.
    """
    if mspec not in ("-", "?", "+", "*"):
        raise ValueError(f"unknown matching specification: {mspec!r}")
    if not _FAST_PATH:
        return join_for_mspec_legacy(
            parents, children, axis, mspec, metrics,
            parent_id, child_id, child_starts,
        )
    if metrics is not None:
        metrics.structural_joins += 1
        if mspec in ("+", "*"):
            metrics.nest_joins += 1
    out: List[Tuple[Item, List[List[Item]]]] = []
    for parent, matched in _iter_matches(
        parents, children, axis, metrics, parent_id, child_id,
        child_starts, child_levels,
    ):
        if mspec == "-":
            if matched:
                out.append((parent, [[m] for m in matched]))
        elif mspec == "?":
            out.append(
                (parent, [[m] for m in matched] if matched else [[]])
            )
        elif mspec == "+":
            if matched:
                out.append((parent, [matched]))
        else:  # "*"
            out.append((parent, [matched]))
    return out


# ----------------------------------------------------------------------
# legacy implementations (executable specification + BENCH_3 baseline)
# ----------------------------------------------------------------------
def _descendant_range(
    parent: NodeId, starts: Sequence[Tuple[int, int]]
) -> Tuple[int, int]:
    """Index range of ``starts`` lying strictly inside ``parent``'s interval.

    ``starts`` is a sorted list of ``(doc, start)`` keys.
    """
    lo = bisect_right(starts, (parent.doc, parent.start))
    hi = bisect_left(starts, (parent.doc, parent.end))
    return lo, hi


def _axis_ok(parent: NodeId, child: NodeId, axis: str) -> bool:
    if axis == "ad":
        return True  # containment already guaranteed by the range scan
    if axis == "pc":
        return child.level == parent.level + 1
    raise ValueError(f"unknown axis: {axis!r}")


def pair_join_legacy(
    parents: Sequence[Item],
    children: Sequence[Item],
    axis: str,
    metrics: Optional[Metrics] = None,
    parent_id: Callable[[Item], NodeId] = _identity,
    child_id: Callable[[Item], NodeId] = _identity,
    outer: bool = False,
) -> List[Tuple[Item, Optional[Item]]]:
    """The original :func:`pair_join`: independent binary search per parent,
    probe-key array rebuilt on every call."""
    if metrics is not None:
        metrics.structural_joins += 1
    starts = [
        (child_id(c).doc, child_id(c).start) for c in children
    ]
    out: List[Tuple[Item, Optional[Item]]] = []
    for parent in parents:
        pid = parent_id(parent)
        lo, hi = _descendant_range(pid, starts)
        matched = False
        for idx in range(lo, hi):
            child = children[idx]
            if _axis_ok(pid, child_id(child), axis):
                out.append((parent, child))
                matched = True
        if outer and not matched:
            out.append((parent, None))
    return out


def nest_join_legacy(
    parents: Sequence[Item],
    children: Sequence[Item],
    axis: str,
    metrics: Optional[Metrics] = None,
    parent_id: Callable[[Item], NodeId] = _identity,
    child_id: Callable[[Item], NodeId] = _identity,
    outer: bool = False,
) -> List[Tuple[Item, List[Item]]]:
    """The original :func:`nest_join` (see :func:`pair_join_legacy`)."""
    if metrics is not None:
        metrics.structural_joins += 1
        metrics.nest_joins += 1
    starts = [
        (child_id(c).doc, child_id(c).start) for c in children
    ]
    out: List[Tuple[Item, List[Item]]] = []
    for parent in parents:
        pid = parent_id(parent)
        lo, hi = _descendant_range(pid, starts)
        cluster = [
            children[idx]
            for idx in range(lo, hi)
            if _axis_ok(pid, child_id(children[idx]), axis)
        ]
        if cluster or outer:
            out.append((parent, cluster))
    return out


def join_for_mspec_legacy(
    parents: Sequence[Item],
    children: Sequence[Item],
    axis: str,
    mspec: str,
    metrics: Optional[Metrics] = None,
    parent_id: Callable[[Item], NodeId] = _identity,
    child_id: Callable[[Item], NodeId] = _identity,
    child_starts: Optional[Sequence[Tuple[int, int]]] = None,
) -> List[Tuple[Item, List[List[Item]]]]:
    """The original :func:`join_for_mspec` over the legacy joins."""
    if child_starts is not None:
        if metrics is not None:
            metrics.structural_joins += 1
            if mspec in ("+", "*"):
                metrics.nest_joins += 1
        out: List[Tuple[Item, List[List[Item]]]] = []
        for parent in parents:
            pid = parent_id(parent)
            lo, hi = _descendant_range(pid, child_starts)
            matched = [
                children[idx]
                for idx in range(lo, hi)
                if _axis_ok(pid, child_id(children[idx]), axis)
            ]
            if mspec == "-":
                if matched:
                    out.append((parent, [[m] for m in matched]))
            elif mspec == "?":
                out.append(
                    (parent, [[m] for m in matched] if matched else [[]])
                )
            elif mspec == "+":
                if matched:
                    out.append((parent, [matched]))
            else:  # "*"
                out.append((parent, [matched]))
        return out
    if mspec in ("-", "?"):
        pairs = pair_join_legacy(
            parents, children, axis, metrics, parent_id, child_id,
            outer=(mspec == "?"),
        )
        grouped: dict = {}
        order: List[Item] = []
        for parent, child in pairs:
            key = id(parent)
            if key not in grouped:
                grouped[key] = (parent, [])
                order.append(parent)
            if child is not None:
                grouped[key][1].append([child])
            else:
                grouped[key][1].append([])
        return [grouped[id(p)] for p in order]
    if mspec in ("+", "*"):
        nested = nest_join_legacy(
            parents, children, axis, metrics, parent_id, child_id,
            outer=(mspec == "*"),
        )
        return [(parent, [cluster]) for parent, cluster in nested]
    raise ValueError(f"unknown matching specification: {mspec!r}")
