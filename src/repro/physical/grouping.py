"""Explicit group-by restructuring — the operation TLC avoids.

TAX and GTP have no annotated pattern edges, so whenever a query needs
nested structure (aggregates, LET bindings, multi-argument RETURNs) they run
a *grouping procedure*: split the flat witness trees, group by the parent
node, rebuild the nested tree, and merge the per-branch results (Section
6.1 describes the DAG-like split/group/merge).  We implement it faithfully
as the baselines' restructuring primitive; its cost relative to nest-joins
is exactly what Figures 15 and 16 measure.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..model.node_id import AnyNodeId
from ..model.sequence import TreeSequence
from ..model.tree import TNode, XTree
from ..storage.stats import Metrics


def group_by_node(
    trees: TreeSequence,
    group_lcl: int,
    member_lcl: int,
    metrics: Optional[Metrics] = None,
) -> TreeSequence:
    """Group flat witness trees by the identity of their ``group_lcl`` node.

    Input trees each contain one node of class ``group_lcl`` and one node of
    class ``member_lcl`` (the flat pattern-match output).  The result has
    one tree per distinct group node, with *all* its members attached under
    it — the structure a single nest-join would have produced directly.

    The procedure materialises a hash of every input tree (this is the
    expensive part: "groupby costs more than nest-joins", Section 6.3).
    """
    if metrics is not None:
        metrics.groupby_ops += 1
    buckets: Dict[AnyNodeId, XTree] = {}
    order: List[AnyNodeId] = []
    for tree in trees:
        group_nodes = tree.nodes_in_class(group_lcl)
        if not group_nodes:
            continue
        group_node = group_nodes[0]
        members = tree.nodes_in_class(member_lcl)
        key = group_node.nid
        if key not in buckets:
            host_root = group_node.clone()
            _prune_class(host_root, member_lcl)
            buckets[key] = XTree(host_root)
            order.append(key)
        host = buckets[key].root
        for member in members:
            host.add_child(member.clone())
        buckets[key].invalidate()
        if metrics is not None:
            metrics.trees_built += 1
    return TreeSequence([buckets[key] for key in order])


def _prune_class(node: TNode, lcl: int) -> None:
    """Remove every node of class ``lcl`` (with its subtree) below ``node``."""
    node.children = [c for c in node.children if lcl not in c.lcls]
    for child in node.children:
        _prune_class(child, lcl)


def group_merge(
    base: TreeSequence,
    branches: Sequence[TreeSequence],
    base_key_lcl: int,
    branch_key_lcls: Sequence[int],
    metrics: Optional[Metrics] = None,
) -> TreeSequence:
    """Merge grouped branches back onto base trees by shared node identity.

    This is the "merge the produced paths" step of the baselines' DAG
    procedure: each branch sequence was grouped independently; its trees
    re-attach to the base tree whose ``base_key_lcl`` node has the same
    stored identity as the branch's ``branch_key_lcls[i]`` node.
    """
    if metrics is not None:
        metrics.groupby_ops += 1
    out = TreeSequence()
    branch_maps: List[Dict[AnyNodeId, List[XTree]]] = []
    for branch, key_lcl in zip(branches, branch_key_lcls):
        mapping: Dict[AnyNodeId, List[XTree]] = {}
        for tree in branch:
            keys = tree.nodes_in_class(key_lcl)
            if keys:
                mapping.setdefault(keys[0].nid, []).append(tree)
        branch_maps.append(mapping)
    for tree in base:
        keys = tree.nodes_in_class(base_key_lcl)
        if not keys:
            out.append(tree)
            continue
        key = keys[0].nid
        merged = tree.clone()
        anchor = merged.nodes_in_class(base_key_lcl)[0]
        for mapping in branch_maps:
            for branch_tree in mapping.get(key, ()):
                for child in branch_tree.root.children:
                    anchor.add_child(child.clone())
        merged.invalidate()
        out.append(merged)
        if metrics is not None:
            metrics.trees_built += 1
    return out


def split_by_class(
    trees: TreeSequence,
    keep: Callable[[TNode], bool],
    metrics: Optional[Metrics] = None,
) -> TreeSequence:
    """Split step of the DAG procedure: project each tree to chosen nodes.

    Returns clones of the input trees retaining only nodes accepted by
    ``keep`` (roots always survive).
    """
    if metrics is not None:
        metrics.groupby_ops += 1
    out = TreeSequence()
    for tree in trees:
        root = tree.root.clone()

        def prune(node: TNode) -> None:
            node.children = [c for c in node.children if keep(c)]
            for child in node.children:
                prune(child)

        prune(root)
        out.append(XTree(root))
    return out
