"""Physical operators: structural/nest/value joins, grouping, navigation."""

from .grouping import group_by_node, group_merge, split_by_class
from .holistic import match_path_holistic, path_stack
from .twigstack import TwigNode, match_twig_holistic, twig_stack
from .navigation import (
    check_content,
    child_step,
    descendant_step,
    navigate_path,
)
from .sort import restore_document_order, sort_trees
from .stack_join import stack_tree_desc
from .structural_join import (
    child_columns,
    fast_path_enabled,
    join_for_mspec,
    join_for_mspec_legacy,
    nest_join,
    nest_join_legacy,
    pair_join,
    pair_join_legacy,
    set_fast_path,
    use_fast_path,
)
from .value_join import merge_equi_join, nest_merge, theta_join

__all__ = [
    "group_by_node",
    "match_path_holistic",
    "path_stack",
    "TwigNode",
    "match_twig_holistic",
    "twig_stack",
    "group_merge",
    "split_by_class",
    "check_content",
    "child_step",
    "descendant_step",
    "navigate_path",
    "restore_document_order",
    "stack_tree_desc",
    "sort_trees",
    "child_columns",
    "fast_path_enabled",
    "join_for_mspec",
    "join_for_mspec_legacy",
    "nest_join",
    "nest_join_legacy",
    "pair_join",
    "pair_join_legacy",
    "set_fast_path",
    "use_fast_path",
    "merge_equi_join",
    "nest_merge",
    "theta_join",
]
