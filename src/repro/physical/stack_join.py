"""Stack-based structural join (the paper's reference [1]).

TIMBER performs pattern matching "using the very popular structural join
algorithms [1, 3]".  The default join in this package probes descendant
runs by binary search; this module implements the classic
**Stack-Tree-Desc** algorithm of Al-Khalifa et al. (ICDE 2002): one merge
pass over both inputs with an in-memory stack of nested ancestors,
O(|A| + |D| + |output|).

Both algorithms produce identical pairs (a property test asserts it);
``bench_ablation_stackjoin.py`` compares their constants.  Stack-Tree
shines when ancestor lists are long and nested; the bisect join when
ancestors are few and descendant lists are huge.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from ..model.node_id import NodeId
from ..storage.stats import Metrics

Item = TypeVar("Item")


def stack_tree_desc(
    ancestors: Sequence[Item],
    descendants: Sequence[Item],
    axis: str = "ad",
    metrics: Optional[Metrics] = None,
    ancestor_id: Callable[[Item], NodeId] = lambda x: x,
    descendant_id: Callable[[Item], NodeId] = lambda x: x,
) -> List[Tuple[Item, Item]]:
    """All (ancestor, descendant) pairs, in descendant (document) order.

    Inputs must be sorted in document order of their node ids.  ``axis``
    is ``"ad"`` or ``"pc"`` (parent-child keeps only adjacent levels,
    exactly like the probe-based join).
    """
    if metrics is not None:
        metrics.structural_joins += 1
    out: List[Tuple[Item, Item]] = []
    stack: List[Item] = []
    a_index = 0
    n_ancestors = len(ancestors)

    for descendant in descendants:
        d_id = descendant_id(descendant)
        # push every ancestor that starts before this descendant
        while a_index < n_ancestors:
            candidate = ancestors[a_index]
            c_id = ancestor_id(candidate)
            if (c_id.doc, c_id.start) < (d_id.doc, d_id.start):
                # pop ancestors that ended before this candidate starts
                while stack and not _covers(
                    ancestor_id(stack[-1]), c_id
                ):
                    stack.pop()
                stack.append(candidate)
                a_index += 1
            else:
                break
        # pop ancestors that ended before this descendant
        while stack and not _covers(ancestor_id(stack[-1]), d_id):
            stack.pop()
        for entry in stack:
            e_id = ancestor_id(entry)
            if e_id.doc != d_id.doc:
                continue
            if axis == "pc" and d_id.level != e_id.level + 1:
                continue
            out.append((entry, descendant))
    return out


def _covers(ancestor: NodeId, other: NodeId) -> bool:
    """True iff ``other`` starts inside ``ancestor``'s interval."""
    return (
        ancestor.doc == other.doc
        and ancestor.start < other.start
        and other.start < ancestor.end
    )
