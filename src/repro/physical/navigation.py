"""Navigation primitives for the navigational baseline.

Section 6.1: "The algorithm traverses down a path by recursively getting
all children of a node and checking them for a condition on content or name
before proceeding on the next iteration."  Every child fetched counts a
navigation step (and pays the buffer-pool touch through the document's
metered ``children_ids``), which is why navigation suffers on ``//`` paths,
on counts and on highly selective queries (Section 6.3).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..model.node_id import NodeId
from ..storage.database import Database


def child_step(
    db: Database, node: NodeId, tag: Optional[str] = None
) -> List[NodeId]:
    """All children of ``node``, optionally filtered by tag.

    Fetches *every* child (and meters it) before filtering — navigation has
    no index to consult, it must look at each child's name.
    """
    db.metrics.navigation_steps += 1
    children = db.children(node)
    if tag is None:
        return children
    out = []
    for child in children:
        if db.tag_of(child) == tag:
            out.append(child)
    return out


def descendant_step(
    db: Database, node: NodeId, tag: Optional[str] = None
) -> List[NodeId]:
    """All descendants of ``node`` with the given tag, document order.

    Recursively fetches all children of all nodes below ``node`` — the
    worst case the paper highlights for ``//`` paths.
    """
    out: List[NodeId] = []
    stack = [node]
    while stack:
        current = stack.pop()
        db.metrics.navigation_steps += 1
        children = db.children(current)
        for child in reversed(children):
            stack.append(child)
        for child in children:
            if tag is None or db.tag_of(child) == tag:
                out.append(child)
    out.sort(key=lambda nid: nid.order_key)
    return out


def navigate_path(
    db: Database,
    start: NodeId,
    steps: List[tuple],
) -> List[NodeId]:
    """Follow a simple path of ``(axis, tag)`` steps from ``start``.

    ``axis`` is ``"pc"`` (``/tag``) or ``"ad"`` (``//tag``).  Returns the
    nodes reached, in document order, duplicates removed (two ``//`` steps
    can reach one node twice).
    """
    frontier = [start]
    for axis, tag in steps:
        next_frontier: List[NodeId] = []
        seen = set()
        for node in frontier:
            if axis == "pc":
                reached = child_step(db, node, tag)
            else:
                reached = descendant_step(db, node, tag)
            for nid in reached:
                if nid not in seen:
                    seen.add(nid)
                    next_frontier.append(nid)
        next_frontier.sort(key=lambda nid: nid.order_key)
        frontier = next_frontier
    return frontier


def check_content(
    db: Database, node: NodeId, predicate: Callable[[Optional[str]], bool]
) -> bool:
    """Evaluate a content predicate on one node (metered fetch)."""
    return predicate(db.value_of(node))
