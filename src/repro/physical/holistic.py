"""Holistic path matching: the PathStack algorithm (reference [3]).

Section 7 notes that algebraic native XQuery engines evaluate path
expressions "via structural joins [1], holistic joins [3]".  The default
matcher composes binary structural joins edge by edge, materialising the
intermediate result of every join.  **PathStack** (Bruno, Koudas,
Srivastava: *Holistic Twig Joins*, SIGMOD 2002) evaluates a whole linear
path in one synchronized pass over the per-tag candidate streams, with a
chain of stacks encoding all partial solutions compactly — no
intermediate results, O(sum of input sizes + output size).

This module implements PathStack for linear chains (each pattern node has
at most one child), which covers the paper's long-path queries (x15/x16
walk a seven-step chain).  ``bench_ablation_holistic.py`` compares it
against the binary-join pipeline; a property test asserts both produce
identical solution sets.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..model.node_id import NodeId
from ..storage.stats import Metrics

#: One stack entry: (node, index of the parent-stack top at push time).
_Entry = Tuple[NodeId, int]


def path_stack(
    streams: Sequence[Sequence[NodeId]],
    axes: Sequence[str],
    metrics: Optional[Metrics] = None,
) -> List[Tuple[NodeId, ...]]:
    """All root-to-leaf solutions of a linear path pattern.

    ``streams[i]`` holds the candidates for path level *i* in document
    order; ``axes[i]`` (``"ad"`` or ``"pc"``) constrains the edge between
    level *i-1* and level *i* (``axes[0]`` is ignored — the root level
    has no incoming edge).  Solutions are emitted in leaf document order;
    each is a tuple of one node per level.
    """
    n_levels = len(streams)
    if n_levels == 0:
        return []
    if len(axes) != n_levels:
        raise ValueError("need one axis per level")
    if metrics is not None:
        metrics.structural_joins += 1
    stacks: List[List[_Entry]] = [[] for _ in range(n_levels)]
    cursors = [0] * n_levels
    out: List[Tuple[NodeId, ...]] = []

    def next_level() -> Optional[int]:
        """The level whose current candidate starts first."""
        best = None
        best_key = None
        for level in range(n_levels):
            if cursors[level] >= len(streams[level]):
                continue
            node = streams[level][cursors[level]]
            key = (node.doc, node.start)
            if best_key is None or key < best_key:
                best, best_key = level, key
        return best

    while True:
        if cursors[n_levels - 1] >= len(streams[n_levels - 1]):
            break  # no further leaf can produce a solution
        level = next_level()
        if level is None:
            break
        node = streams[level][cursors[level]]
        cursors[level] += 1
        for stack in stacks:
            while stack and not _spans(stack[-1][0], node):
                stack.pop()
        if level > 0 and not stacks[level - 1]:
            continue  # no live ancestor: the candidate cannot extend
        parent_top = len(stacks[level - 1]) - 1 if level > 0 else -1
        stacks[level].append((node, parent_top))
        if level == n_levels - 1:
            _emit(stacks, axes, len(stacks[level]) - 1, out)
    return out


def _spans(ancestor: NodeId, node: NodeId) -> bool:
    """Does ``ancestor``'s interval still cover ``node``'s start?"""
    return ancestor.doc == node.doc and node.start < ancestor.end


def _emit(
    stacks: List[List[_Entry]],
    axes: Sequence[str],
    leaf_index: int,
    out: List[Tuple[NodeId, ...]],
) -> None:
    """Expand every solution ending at the just-pushed leaf entry."""
    n_levels = len(stacks)

    def expand(level: int, entry_index: int, suffix: Tuple[NodeId, ...]):
        node, parent_top = stacks[level][entry_index]
        chain = (node,) + suffix
        if level == 0:
            out.append(chain)
            return
        for ancestor_index in range(parent_top + 1):
            ancestor = stacks[level - 1][ancestor_index][0]
            if not ancestor.contains(node):
                continue
            if axes[level] == "pc" and node.level != ancestor.level + 1:
                continue
            expand(level - 1, ancestor_index, chain)

    expand(n_levels - 1, leaf_index, ())


def match_path_holistic(
    db,
    doc_name: str,
    steps: Sequence[Tuple[str, str]],
    metrics: Optional[Metrics] = None,
) -> List[Tuple[NodeId, ...]]:
    """Match a linear ``(axis, tag)`` path against a document holistically.

    Convenience wrapper: pulls candidate streams from the tag index and
    runs :func:`path_stack`.  The implicit root level is the document's
    ``doc_root``.
    """
    streams: List[Sequence[NodeId]] = [[db.document(doc_name).root_id]]
    axes: List[str] = ["ad"]
    for axis, tag in steps:
        streams.append(db.tag_lookup(doc_name, tag))
        axes.append(axis)
    solutions = path_stack(streams, axes, metrics)
    return [solution[1:] for solution in solutions]  # drop doc_root
