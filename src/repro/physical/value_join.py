"""Value joins with the sort–merge–sort strategy of Section 5.1.

The paper avoids nested-loop joins (the naive way to preserve document
order) by exploiting Property 3 of its node identifiers: sort both inputs by
join value, merge, then re-sort the output by the node id of the left
input's root.  Node ids encode document order, so the final cheap sort
restores it, "achieving better performance and linear scalability without
sacrificing document ordering".

The nest variant (Definition 8's :func:`nest_merge`) clusters *all* matching
right items under each left item — the Nest-Value-Join — and the outer
variants keep left items with no match (Left-Outer-Nest-Value-Join).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from ..model.value import atomize, compare
from ..storage.stats import Metrics

Item = TypeVar("Item")
Key = Callable[[Item], object]


def _sorted_by_value(items: Sequence[Item], key: Key) -> List[Tuple[tuple, Item]]:
    from ..model.value import sort_key

    decorated = [(sort_key(atomize(key(item))), item) for item in items]
    decorated.sort(key=lambda pair: pair[0])
    return decorated


def merge_equi_join(
    left: Sequence[Item],
    right: Sequence[Item],
    left_key: Key,
    right_key: Key,
    metrics: Optional[Metrics] = None,
) -> List[Tuple[Item, Item]]:
    """Equi-join two sequences by atomized value (sort-merge).

    Output order is by join value; callers re-sort by node id afterwards
    (the second "sort" of sort–merge–sort).
    """
    if metrics is not None:
        metrics.value_joins += 1
        metrics.sort_ops += 2
    lsorted = _sorted_by_value(left, left_key)
    rsorted = _sorted_by_value(right, right_key)
    out: List[Tuple[Item, Item]] = []
    i = j = 0
    while i < len(lsorted) and j < len(rsorted):
        lk, rk = lsorted[i][0], rsorted[j][0]
        if lk < rk:
            i += 1
        elif lk > rk:
            j += 1
        else:
            j_end = j
            while j_end < len(rsorted) and rsorted[j_end][0] == lk:
                j_end += 1
            i_end = i
            while i_end < len(lsorted) and lsorted[i_end][0] == lk:
                i_end += 1
            for li in range(i, i_end):
                for rj in range(j, j_end):
                    out.append((lsorted[li][1], rsorted[rj][1]))
            i, j = i_end, j_end
    return out


def theta_join(
    left: Sequence[Item],
    right: Sequence[Item],
    op: str,
    left_key: Key,
    right_key: Key,
    metrics: Optional[Metrics] = None,
) -> List[Tuple[Item, Item]]:
    """General comparison join.

    Equality dispatches to the sort-merge path; other operators fall back
    to a block-nested loop over atomized values (the paper's implementation
    had no join-value index either).
    """
    if op == "=":
        return merge_equi_join(left, right, left_key, right_key, metrics)
    if metrics is not None:
        metrics.value_joins += 1
    out: List[Tuple[Item, Item]] = []
    rvals = [(atomize(right_key(r)), r) for r in right]
    for litem in left:
        lval = atomize(left_key(litem))
        for rval, ritem in rvals:
            if compare(lval, op, rval):
                out.append((litem, ritem))
    return out


def nest_merge(
    pairs: Sequence[Tuple[Item, Item]],
    all_left: Sequence[Item],
    outer: bool = False,
    metrics: Optional[Metrics] = None,
) -> List[Tuple[Item, List[Item]]]:
    """Cluster join pairs per left item — the Nest-Value-Join output shape.

    ``all_left`` supplies the original left order and the unmatched items
    for the outer variant.  Each left item appears at most once, with the
    list of all right matches (document order of arrival preserved).
    """
    if metrics is not None:
        metrics.nest_joins += 1
    clusters: dict = {}
    for litem, ritem in pairs:
        clusters.setdefault(id(litem), []).append(ritem)
    out: List[Tuple[Item, List[Item]]] = []
    for litem in all_left:
        cluster = clusters.get(id(litem))
        if cluster is not None:
            out.append((litem, cluster))
        elif outer:
            out.append((litem, []))
    return out
