"""Sorting helpers shared by the Sort operator and the join machinery."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..model.sequence import TreeSequence
from ..model.tree import XTree
from ..model.value import sort_key
from ..storage.stats import Metrics


def sort_trees(
    trees: TreeSequence,
    keys: Sequence[Callable[[XTree], object]],
    descending: bool = False,
    metrics: Optional[Metrics] = None,
) -> TreeSequence:
    """Stable multi-key sort of a tree sequence by atomic key values.

    Each key callable extracts one atomic value per tree; values order via
    :func:`~repro.model.value.sort_key` so mixed content never raises.
    """
    if metrics is not None:
        metrics.sort_ops += 1

    def composite(tree: XTree) -> tuple:
        return tuple(sort_key(key(tree)) for key in keys)

    ordered: List[XTree] = sorted(trees, key=composite, reverse=descending)
    return TreeSequence(ordered)


def restore_document_order(
    trees: TreeSequence, metrics: Optional[Metrics] = None
) -> TreeSequence:
    """The final cheap sort of sort–merge–sort: order trees by root id."""
    if metrics is not None:
        metrics.sort_ops += 1
    return trees.sorted_by_root()
