"""Abstract syntax for the Figure 5 XQuery fragment.

The fragment: FLWOR expressions with FOR/LET over simple paths or nested
FLWORs, a WHERE of simple predicates / aggregate predicates / value joins /
quantifiers combined with AND and OR, optional ORDER BY, and a RETURN of
paths, aggregates, nested FLWORs or element constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class Step:
    """One path step: axis (``pc`` for ``/``, ``ad`` for ``//``) and name.

    Attribute steps use the ``@name`` convention.
    """

    axis: str
    name: str


@dataclass
class PathExpr:
    """A Simple Path: ``document("d")//a/b`` or ``$var/a/@b`` (no branches).

    ``text_fn`` marks a trailing ``/text()``.
    """

    doc: Optional[str]  # document name, or None when rooted at a variable
    var: Optional[str]  # variable name (without $), or None
    steps: List[Step] = field(default_factory=list)
    text_fn: bool = False

    def describe(self) -> str:
        source = f'document("{self.doc}")' if self.doc else f"${self.var}"
        body = "".join(
            ("//" if s.axis == "ad" else "/") + s.name for s in self.steps
        )
        return f"{source}{body}" + ("/text()" if self.text_fn else "")


Atom = Union[str, int, float]


@dataclass
class SimplePredicate:
    """``<SP> <Predicate> <Value>`` — e.g. ``$p/age > 25``."""

    path: PathExpr
    op: str
    value: Atom


@dataclass
class AggrPredicate:
    """``Aggr(<SP>) <Predicate> <Value>`` — e.g. ``count($o/bidder) > 5``."""

    fname: str
    path: PathExpr
    op: str
    value: Atom


@dataclass
class ValueJoin:
    """``<SP> <Predicate> <SP>`` — e.g. ``$p/@id = $o/bidder//@person``."""

    left: PathExpr
    op: str
    right: PathExpr


@dataclass
class Quantifier:
    """``EVERY|SOME $var IN <SP> SATISFIES <SimplePredicateExpr>``."""

    kind: str  # "every" | "some"
    var: str
    path: PathExpr
    predicate: SimplePredicate


@dataclass
class BoolExpr:
    """``AND``/``OR`` combination of where expressions."""

    op: str  # "and" | "or"
    left: "WhereExpr"
    right: "WhereExpr"


WhereExpr = Union[SimplePredicate, AggrPredicate, ValueJoin, Quantifier, BoolExpr]


@dataclass
class ForClause:
    """``FOR $var IN <SP | FLWOR>``."""

    var: str
    source: Union[PathExpr, "FLWOR"]


@dataclass
class LetClause:
    """``LET $var := <SP | FLWOR>``."""

    var: str
    source: Union[PathExpr, "FLWOR"]


@dataclass
class AggrExpr:
    """An aggregate used as a value: ``count($o/bidder)``."""

    fname: str
    path: PathExpr


@dataclass
class ElementConstructor:
    """``<tag attr={path}...> content </tag>`` in a RETURN clause."""

    tag: str
    attrs: List[Tuple[str, Union[str, PathExpr, AggrExpr]]] = field(
        default_factory=list
    )
    children: List["ReturnExpr"] = field(default_factory=list)


@dataclass
class TextLiteral:
    """Literal text inside an element constructor."""

    text: str


ReturnExpr = Union[
    PathExpr, AggrExpr, ElementConstructor, TextLiteral, "FLWOR"
]


@dataclass
class OrderSpec:
    """``ORDER BY <SP>, … <Mode>``."""

    paths: List[PathExpr]
    descending: bool = False


@dataclass
class FLWOR:
    """A full FLWOR block."""

    clauses: List[Union[ForClause, LetClause]]
    where: Optional[WhereExpr] = None
    order: Optional[OrderSpec] = None
    ret: Optional[ReturnExpr] = None

    def for_vars(self) -> List[str]:
        """Names of FOR-bound variables, in clause order."""
        return [
            c.var for c in self.clauses if isinstance(c, ForClause)
        ]

    def let_vars(self) -> List[str]:
        """Names of LET-bound variables, in clause order."""
        return [
            c.var for c in self.clauses if isinstance(c, LetClause)
        ]
