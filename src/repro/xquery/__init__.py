"""XQuery front-end: Figure 5 fragment parser and Figure 6 translator."""

from .ast_nodes import (
    AggrExpr,
    AggrPredicate,
    BoolExpr,
    ElementConstructor,
    FLWOR,
    ForClause,
    LetClause,
    OrderSpec,
    PathExpr,
    Quantifier,
    SimplePredicate,
    Step,
    TextLiteral,
    ValueJoin,
)
from .fuzz import QueryFuzzer, sample_queries
from .parser import parse_query
from .paths import FLIPPED_OP, graft_steps, sp_to_apt
from .translator import TLCTranslator, TranslationResult, translate_query

__all__ = [
    "AggrExpr",
    "AggrPredicate",
    "BoolExpr",
    "ElementConstructor",
    "FLWOR",
    "ForClause",
    "LetClause",
    "OrderSpec",
    "PathExpr",
    "Quantifier",
    "SimplePredicate",
    "Step",
    "TextLiteral",
    "ValueJoin",
    "QueryFuzzer",
    "sample_queries",
    "parse_query",
    "FLIPPED_OP",
    "graft_steps",
    "sp_to_apt",
    "TLCTranslator",
    "TranslationResult",
    "translate_query",
]
