"""XQuery → TLC plan translation (the Algorithm TLC of Figure 6).

One :class:`_Block` per FLWOR block.  Processing follows the paper's
per-reduction cases:

* **FOR/LET over a document path** creates (or extends) a leaf Select's
  annotated pattern tree — FOR edges use ``-``, LET edges use ``*``;
  multiple document sources combine through a cartesian Join whose
  predicates are filled in later (boxes 1, 2, 5 of Figure 7).
* **Simple predicates** add content comparisons to the pattern leaf.
* **Aggregate predicates** graft a ``*`` path and insert
  Aggregate + Filter(ALO) on that source's branch (boxes 3, 4).
* **Value joins** graft ``-`` paths on both sides and register the
  predicate at the join covering both sources; a side that references an
  *outer* block's variable becomes a deferred predicate applied at the
  outer↔inner join (Figure 8's Join 9).
* **Quantifiers** graft a ``*`` path and emit a Filter in EVERY/ALO mode
  (box 10 of Figure 8); predicates over constructed content are placed
  after the join.
* **ORDER BY / RETURN** emit Project (keep bound variables + join root +
  classes the return needs), NodeIDDE on FOR variables, one extension
  Select per return path (``*`` edges), Aggregates for aggregate returns,
  a Sort, and the final Construct (boxes 6–10 of Figure 7).
* **Nested FLWORs** translate recursively and join to the outer plan with
  a ``-`` (FOR) or ``*`` (LET / RETURN) edge; inner projections and the
  inner construct are widened so deferred join classes and
  outer-referenced classes survive (Figure 8's Project 5 keeping (9),
  Project 11 keeping (12)).

Deviations from the figure, documented in DESIGN.md: OR is implemented as
optional (``*``/``?``) grafts plus one disjunctive filter rather than a
plan union, and the inner duplicate-elimination of a nested query also
keys on deferred join classes (keying only on the FOR variable, as drawn
in Figure 8, would drop join partners).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.aggregate import AggregateOp
from ..core.base import ClassPredicate, JoinPredicate, Operator
from ..core.construct import CClassRef, CElement, CText
from ..core.dedup import DedupOp
from ..core.filter import (
    FilterOp,
    TreeFilterOp,
    cross_class_predicate,
    disjunctive_predicate,
)
from ..core.join import JoinOp
from ..core.project import ProjectOp
from ..core.select import SelectOp
from ..core.sort_op import SortOp
from ..errors import TranslationError
from ..patterns.apt import APT, APTNode
from ..patterns.logical_class import LCLAllocator
from ..patterns.predicates import NodeTest
from .ast_nodes import (
    AggrExpr,
    AggrPredicate,
    BoolExpr,
    ElementConstructor,
    FLWOR,
    ForClause,
    LetClause,
    PathExpr,
    Quantifier,
    SimplePredicate,
    TextLiteral,
    ValueJoin,
)
from .parser import parse_query
from .paths import FLIPPED_OP, graft_steps


@dataclass
class TranslationResult:
    """A translated query: the plan plus bookkeeping for tools and tests."""

    plan: Operator
    var_lcls: Dict[str, int]
    class_tags: Dict[int, str]

    def explain(self) -> str:
        """Readable plan rendering."""
        return self.plan.describe()

    def lint(self):
        """Run the static LC-flow analyzer over this plan.

        Returns a :class:`repro.analysis.AnalysisReport`.
        """
        from ..analysis import lint_plan  # local import: avoids a cycle

        return lint_plan(self.plan)


# ----------------------------------------------------------------------
# sources
# ----------------------------------------------------------------------
@dataclass
class _DocSource:
    """A leaf Select over one stored document."""

    apt: APT
    mspec_join: str = "-"  # how this source joins into the block
    branch_builders: List = field(default_factory=list)

    def build(self) -> Operator:
        top: Operator = SelectOp(self.apt)
        for builder in self.branch_builders:
            top = builder(top)
        return top


@dataclass
class _FlworSource:
    """A nested FLWOR acting as a source (LET/FOR over a sub-query)."""

    block: "_Block"
    mspec_join: str  # "-" for FOR, "*" for LET / RETURN
    branch_builders: List = field(default_factory=list)

    def build(self) -> Operator:
        top = self.block.finish()
        for builder in self.branch_builders:
            top = builder(top)
        return top


@dataclass
class _Binding:
    """Where a variable points: a pattern node or a resolved class."""

    source_index: int
    apt_node: Optional[APTNode] = None  # for document sources
    lcl: Optional[int] = None  # for flwor-derived bindings

    @property
    def label(self) -> int:
        return self.apt_node.lcl if self.apt_node is not None else self.lcl


class _Block:
    """Translation state for one FLWOR block."""

    def __init__(
        self,
        translator: "TLCTranslator",
        flwor: FLWOR,
        parent: Optional["_Block"] = None,
    ) -> None:
        self.translator = translator
        self.flwor = flwor
        self.parent = parent
        # a fork shares the translator's counter: labels allocated while
        # building this block can never collide with a sibling block's
        self.lcls = translator.lcls.fork()
        self.class_tags = translator.class_tags
        self.sources: List[Union[_DocSource, _FlworSource]] = []
        self.bindings: Dict[str, _Binding] = {}
        self.join_preds: List[Tuple[int, int, str, int, int]] = []
        # deferred predicates this block imposes on its parent's join:
        # (outer_lcl, op, inner_lcl)
        self.deferred: List[Tuple[int, str, int]] = []
        self.post_join: List = []  # operator builders applied after the join
        self.extra_keep: List[int] = []  # classes Project must retain
        self.return_joins: List[_FlworSource] = []
        self.construct_spec = None  # set by finish()
        self._finished: Optional[Operator] = None

    # ------------------------------------------------------------------
    # variable lookup across block nesting
    # ------------------------------------------------------------------
    def lookup(self, var: str) -> Tuple["_Block", _Binding]:
        block: Optional[_Block] = self
        while block is not None:
            if var in block.bindings:
                return block, block.bindings[var]
            block = block.parent
        raise TranslationError(f"unbound variable ${var}")

    # ------------------------------------------------------------------
    # FOR / LET
    # ------------------------------------------------------------------
    def process_clauses(self) -> None:
        for clause in self.flwor.clauses:
            mspec = "-" if isinstance(clause, ForClause) else "*"
            if isinstance(clause.source, FLWOR):
                self._bind_nested(clause.var, clause.source, mspec)
            else:
                self._bind_path(clause.var, clause.source, mspec)

    def _bind_path(self, var: str, path: PathExpr, mspec: str) -> None:
        if path.doc is not None:
            apt_root = APTNode(NodeTest("doc_root"), self.lcls.allocate())
            self.class_tags[apt_root.lcl] = "doc_root"
            leaf = graft_steps(
                apt_root, path.steps, mspec, self.lcls, self.class_tags
            )
            self.sources.append(_DocSource(APT(apt_root, path.doc)))
            self.bindings[var] = _Binding(
                len(self.sources) - 1, apt_node=leaf
            )
            return
        owner_block, binding = self.lookup(var_of(path))
        if owner_block is not self:
            raise TranslationError(
                f"FOR/LET over an outer-block variable ${path.var} is not "
                "supported by the Figure 5 fragment"
            )
        if binding.apt_node is not None:
            leaf = graft_steps(
                binding.apt_node,
                path.steps,
                mspec,
                self.lcls,
                self.class_tags,
            )
            self.bindings[var] = _Binding(
                binding.source_index, apt_node=leaf
            )
            return
        # variable over constructed content: resolve statically or extend
        lcl = self.resolve_constructed_path(binding, path)
        self.bindings[var] = _Binding(binding.source_index, lcl=lcl)

    def _bind_nested(self, var: str, inner: FLWOR, mspec: str) -> None:
        inner_block = self.translator.translate_block(inner, parent=self)
        self.sources.append(_FlworSource(inner_block, mspec))
        root_lcl = inner_block.output_root_lcl()
        self.bindings[var] = _Binding(len(self.sources) - 1, lcl=root_lcl)

    # ------------------------------------------------------------------
    # WHERE
    # ------------------------------------------------------------------
    def process_where(self) -> None:
        if self.flwor.where is not None:
            self._where_expr(self.flwor.where)

    def _where_expr(self, expr) -> None:
        if isinstance(expr, BoolExpr):
            if expr.op == "and":
                self._where_expr(expr.left)
                self._where_expr(expr.right)
            else:
                self._where_or(expr)
        elif isinstance(expr, SimplePredicate):
            self._simple_predicate(expr)
        elif isinstance(expr, AggrPredicate):
            self._aggr_predicate(expr)
        elif isinstance(expr, ValueJoin):
            self._value_join(expr)
        elif isinstance(expr, Quantifier):
            self._quantifier(expr)
        else:  # pragma: no cover - parser guarantees the closed set
            raise TranslationError(f"unsupported WHERE expression: {expr!r}")

    # -- simple predicate ----------------------------------------------
    def _simple_predicate(self, pred: SimplePredicate) -> None:
        owner, binding = self.lookup(var_of(pred.path))
        if owner is not self:
            raise TranslationError(
                "correlated simple predicates must use a value join"
            )
        if binding.apt_node is not None:
            leaf = graft_steps(
                binding.apt_node,
                pred.path.steps,
                "-",
                self.lcls,
                self.class_tags,
            )
            leaf.test = leaf.test.with_comparison(pred.op, pred.value)
            return
        lcl = self.resolve_constructed_path(binding, pred.path)
        predicate = ClassPredicate(lcl, pred.op, pred.value)
        self.post_join.append(
            lambda top, p=predicate: FilterOp(p, "ALO", top)
        )

    # -- aggregate predicate ---------------------------------------------
    def _aggr_predicate(self, pred: AggrPredicate) -> None:
        owner, binding = self.lookup(var_of(pred.path))
        if owner is not self:
            raise TranslationError(
                "correlated aggregate predicates are not in the fragment"
            )
        new_lcl = self.lcls.allocate()
        self.class_tags[new_lcl] = pred.fname
        predicate = ClassPredicate(new_lcl, pred.op, pred.value)
        if binding.apt_node is not None:
            leaf = graft_steps(
                binding.apt_node,
                pred.path.steps,
                "*",
                self.lcls,
                self.class_tags,
            )
            source = self.sources[binding.source_index]
            source.branch_builders.append(
                lambda top, f=pred.fname, l=leaf.lcl, n=new_lcl: AggregateOp(
                    f, l, n, top
                )
            )
            source.branch_builders.append(
                lambda top, p=predicate: FilterOp(p, "ALO", top)
            )
            return
        lcl = self.resolve_constructed_path(binding, pred.path)
        self.post_join.append(
            lambda top, f=pred.fname, l=lcl, n=new_lcl: AggregateOp(
                f, l, n, top
            )
        )
        self.post_join.append(
            lambda top, p=predicate: FilterOp(p, "ALO", top)
        )

    # -- value join -------------------------------------------------------
    def _resolve_join_side(
        self, path: PathExpr
    ) -> Tuple[Optional["_Block"], int, int]:
        """Graft one side of a value join; returns (owner, source_idx, lcl).

        Sides of this block graft with ``-`` (Figure 6's ValueJoin case);
        a *correlated* side belonging to an outer block grafts with ``?``
        so that outer trees lacking the path survive — their LET binding
        is simply empty (count 0), not absent.
        """
        owner, binding = self.lookup(var_of(path))
        if binding.apt_node is not None:
            mspec = "-" if owner is self else "?"
            leaf = graft_steps(
                binding.apt_node,
                path.steps,
                mspec,
                owner.lcls,
                owner.class_tags,
            )
            return owner, binding.source_index, leaf.lcl
        lcl = owner_block_resolve(owner, binding, path)
        return owner, binding.source_index, lcl

    def _value_join(self, expr: ValueJoin) -> None:
        left_owner, left_src, left_lcl = self._resolve_join_side(expr.left)
        right_owner, right_src, right_lcl = self._resolve_join_side(
            expr.right
        )
        if left_owner is not self and right_owner is not self:
            raise TranslationError(
                "a value join must involve this block's variables"
            )
        if left_owner is not self:
            # correlated: defer to the outer join (outer lcl first)
            self.deferred.append((left_lcl, expr.op, right_lcl))
            return
        if right_owner is not self:
            self.deferred.append(
                (right_lcl, FLIPPED_OP[expr.op], left_lcl)
            )
            return
        if left_src == right_src:
            predicate = cross_class_predicate(left_lcl, expr.op, right_lcl)
            label = f"({left_lcl}) {expr.op} ({right_lcl})"
            refs = [left_lcl, right_lcl]
            self.post_join.append(
                lambda top, p=predicate, lab=label, r=refs: TreeFilterOp(
                    p, lab, top, lcls=r
                )
            )
            return
        self.join_preds.append(
            (left_src, left_lcl, expr.op, right_lcl, right_src)
        )

    # -- quantifier --------------------------------------------------------
    def _quantifier(self, quant: Quantifier) -> None:
        owner, binding = self.lookup(var_of(quant.path))
        mode = "E" if quant.kind == "every" else "ALO"
        if owner is not self:
            raise TranslationError(
                "quantifier over an outer variable is not in the fragment"
            )
        if binding.apt_node is not None:
            leaf = graft_steps(
                binding.apt_node,
                quant.path.steps,
                "*",
                self.lcls,
                self.class_tags,
            )
            target = leaf
            if quant.predicate.path.steps:
                target = graft_steps(
                    leaf,
                    quant.predicate.path.steps,
                    "-",
                    self.lcls,
                    self.class_tags,
                )
            predicate = ClassPredicate(
                target.lcl, quant.predicate.op, quant.predicate.value
            )
            source = self.sources[binding.source_index]
            source.branch_builders.append(
                lambda top, p=predicate, m=mode: FilterOp(p, m, top)
            )
            self.bindings[quant.var] = _Binding(
                binding.source_index, apt_node=leaf
            )
            return
        lcl = self.resolve_constructed_path(binding, quant.path)
        if quant.predicate.path.steps:
            raise TranslationError(
                "quantifier predicates over constructed content must test "
                "the quantified variable directly"
            )
        predicate = ClassPredicate(
            lcl, quant.predicate.op, quant.predicate.value
        )
        self.post_join.append(
            lambda top, p=predicate, m=mode: FilterOp(p, m, top)
        )

    # -- OR (documented deviation) -----------------------------------------
    def _where_or(self, expr: BoolExpr) -> None:
        disjuncts: List = []

        def flatten(e) -> None:
            if isinstance(e, BoolExpr) and e.op == "or":
                flatten(e.left)
                flatten(e.right)
            else:
                disjuncts.append(e)

        flatten(expr)
        class_preds: List[ClassPredicate] = []
        for disjunct in disjuncts:
            if isinstance(disjunct, SimplePredicate):
                owner, binding = self.lookup(var_of(disjunct.path))
                if owner is not self:
                    raise TranslationError("correlated OR is not supported")
                if binding.apt_node is not None:
                    leaf = graft_steps(
                        binding.apt_node,
                        disjunct.path.steps,
                        "*",
                        self.lcls,
                        self.class_tags,
                    )
                    lcl = leaf.lcl
                else:
                    lcl = self.resolve_constructed_path(
                        binding, disjunct.path
                    )
                class_preds.append(
                    ClassPredicate(lcl, disjunct.op, disjunct.value)
                )
            elif isinstance(disjunct, AggrPredicate):
                owner, binding = self.lookup(var_of(disjunct.path))
                if owner is not self or binding.apt_node is None:
                    raise TranslationError(
                        "OR over constructed/outer content is not supported"
                    )
                leaf = graft_steps(
                    binding.apt_node,
                    disjunct.path.steps,
                    "*",
                    self.lcls,
                    self.class_tags,
                )
                new_lcl = self.lcls.allocate()
                self.class_tags[new_lcl] = disjunct.fname
                source = self.sources[binding.source_index]
                source.branch_builders.append(
                    lambda top, f=disjunct.fname, l=leaf.lcl, n=new_lcl: (
                        AggregateOp(f, l, n, top)
                    )
                )
                class_preds.append(
                    ClassPredicate(new_lcl, disjunct.op, disjunct.value)
                )
            else:
                raise TranslationError(
                    "OR supports simple and aggregate predicates only"
                )
        predicate = disjunctive_predicate(class_preds)
        label = " or ".join(p.describe() for p in class_preds)
        refs = [p.lcl for p in class_preds]
        self.post_join.append(
            lambda top, p=predicate, lab=label, r=refs: TreeFilterOp(
                p, lab, top, lcls=r
            )
        )

    # ------------------------------------------------------------------
    # resolution over constructed content
    # ------------------------------------------------------------------
    def resolve_constructed_path(
        self, binding: _Binding, path: PathExpr
    ) -> int:
        """Class label a path over flwor-derived content resolves to.

        Single steps resolve statically through the inner construct's
        children (tag -> class); deeper or unresolvable paths fall back to
        an in-memory extension Select anchored at the resolved prefix.
        """
        source = self.sources[binding.source_index]
        if not path.steps:
            return binding.label
        spec = None
        if isinstance(source, _FlworSource):
            spec = source.block.construct_spec
        current_lcl = binding.label
        steps = list(path.steps)
        while steps and spec is not None and isinstance(spec, CElement):
            step = steps[0]
            matched = None
            for child in spec.children:
                if isinstance(child, CElement) and child.tag == step.name:
                    matched = (child.lcl, child)
                    break
                if isinstance(child, CClassRef) and (
                    self.class_tags.get(child.lcl) == step.name
                ):
                    matched = (child.lcl, None)
                    break
            if matched is None:
                break
            current_lcl, spec = matched
            steps.pop(0)
        if not steps:
            self.extra_keep.append(current_lcl)
            return current_lcl
        # dynamic fallback: in-memory extension below the resolved class
        ext_root = APTNode(NodeTest(None), 0, lc_ref=current_lcl)
        leaf = graft_steps(ext_root, steps, "*", self.lcls, self.class_tags)
        self.extra_keep.append(current_lcl)
        self.post_join.append(
            lambda top, apt=APT(ext_root): SelectOp(apt, top)
        )
        return leaf.lcl

    def output_root_lcl(self) -> int:
        """Class of this block's output tree roots (after finish())."""
        spec = self.construct_spec
        if isinstance(spec, CElement):
            return spec.lcl
        if isinstance(spec, CClassRef):
            return spec.lcl
        raise TranslationError("block has no construct output")

    # ------------------------------------------------------------------
    # RETURN and assembly
    # ------------------------------------------------------------------
    def finish(self) -> Operator:
        """Assemble the full plan for this block (idempotent)."""
        if self._finished is not None:
            return self._finished
        ret_spec = self._parse_return(self.flwor.ret)
        self.construct_spec = ret_spec["ctree"]
        # deferred join classes must survive this block's project and ride
        # inside its construct output (Figure 8: (9) is kept by Project 5
        # and spliced by Construct 8 so it can participate in Join 9)
        for _, _, inner_lcl in self.deferred:
            ret_spec["keep"].append(inner_lcl)
            ctree = ret_spec["ctree"]
            if isinstance(ctree, CElement):
                already = any(
                    isinstance(c, CClassRef) and c.lcl == inner_lcl
                    for c in ctree.children
                )
                if not already:
                    ctree.children.append(CClassRef(inner_lcl, hidden=True))
            elif not (
                isinstance(ctree, CClassRef) and ctree.lcl == inner_lcl
            ):
                raise TranslationError(
                    "a correlated nested query must RETURN an element "
                    "constructor (the join class needs a place to live)"
                )

        top = self._assemble_join()
        for builder in self.post_join:
            top = builder(top)

        keep = self._project_keep(ret_spec)
        top = ProjectOp(sorted(set(keep)), top)
        dedup_lcls, dedup_bases = self._dedup_lcls()
        if dedup_lcls:
            top = DedupOp(dedup_lcls, "id", top, bases=dedup_bases)

        if self.flwor.order is not None:
            top = self._apply_order(top)

        for source in self.return_joins:
            top = self._join_with(top, source)
        for builder in ret_spec["selects"]:
            top = builder(top)
        from ..core.construct import ConstructOp

        top = ConstructOp(ret_spec["ctree"], top)
        self._finished = top
        return top

    def _assemble_join(self) -> Operator:
        if not self.sources:
            raise TranslationError("FLWOR has no sources")
        tops = [source.build() for source in self.sources]
        first = self.sources[0]
        if isinstance(first, _FlworSource) and first.block.deferred:
            raise TranslationError(
                "a correlated nested query cannot be the first source"
            )
        current = tops[0]
        covered = {0}
        pending = list(self.join_preds)
        for index in range(1, len(self.sources)):
            source = self.sources[index]
            preds: List[JoinPredicate] = []
            rest = []
            for left_src, left_lcl, op, right_lcl, right_src in pending:
                if right_src == index and left_src in covered:
                    preds.append(JoinPredicate(left_lcl, op, right_lcl))
                elif left_src == index and right_src in covered:
                    preds.append(
                        JoinPredicate(right_lcl, FLIPPED_OP[op], left_lcl)
                    )
                else:
                    rest.append(
                        (left_src, left_lcl, op, right_lcl, right_src)
                    )
            pending = rest
            if isinstance(source, _FlworSource):
                for outer_lcl, op, inner_lcl in source.block.deferred:
                    preds.append(JoinPredicate(outer_lcl, op, inner_lcl))
            root_lcl = self.lcls.allocate()
            self.class_tags[root_lcl] = "join_root"
            self._join_root_lcl = root_lcl
            current = JoinOp(
                current,
                tops[index],
                preds,
                root_lcl=root_lcl,
                right_mspec=source.mspec_join,
            )
            covered.add(index)
        if pending:
            raise TranslationError("unplaceable join predicate")
        return current

    def _join_with(self, top: Operator, source: _FlworSource) -> Operator:
        preds = [
            JoinPredicate(outer_lcl, op, inner_lcl)
            for outer_lcl, op, inner_lcl in source.block.deferred
        ]
        root_lcl = self.lcls.allocate()
        self.class_tags[root_lcl] = "join_root"
        return JoinOp(
            top,
            source.build(),
            preds,
            root_lcl=root_lcl,
            right_mspec=source.mspec_join,
        )

    def _project_keep(self, ret_spec) -> List[int]:
        keep: List[int] = []
        if len(self.sources) > 1:
            keep.append(self._join_root_lcl)
        for var in (
            self.flwor.for_vars() + self.flwor.let_vars()
        ):
            binding = self.bindings.get(var)
            if binding is not None:
                keep.append(binding.label)
        keep.extend(self.extra_keep)
        keep.extend(ret_spec["keep"])
        # classes the parent join will need from this block's output are
        # part of the construct, not the project (construct replaces trees)
        return keep

    def _dedup_lcls(self) -> Tuple[List[int], Dict[int, str]]:
        lcls: List[int] = []
        for var in self.flwor.for_vars():
            binding = self.bindings.get(var)
            if binding is not None:
                lcls.append(binding.label)
        # deviation: also key on deferred join classes so that distinct
        # join partners survive the duplicate elimination; they compare by
        # *content* (the join is by value — two personrefs naming the same
        # person are one join partner)
        bases: Dict[int, str] = {}
        for _, _, inner_lcl in self.deferred:
            lcls.append(inner_lcl)
            bases[inner_lcl] = "content"
        return sorted(set(lcls)), bases

    def _apply_order(self, top: Operator) -> Operator:
        order = self.flwor.order
        key_lcls: List[int] = []
        for path in order.paths:
            owner, binding = self.lookup(var_of(path))
            if owner is not self:
                raise TranslationError("ORDER BY over outer variables")
            if binding.apt_node is not None:
                if path.steps:
                    ext_root = APTNode(
                        NodeTest(None), 0, lc_ref=binding.label
                    )
                    leaf = graft_steps(
                        ext_root,
                        path.steps,
                        "*",
                        self.lcls,
                        self.class_tags,
                    )
                    top = SelectOp(APT(ext_root), top)
                    key_lcls.append(leaf.lcl)
                else:
                    key_lcls.append(binding.label)
            else:
                key_lcls.append(
                    self.resolve_constructed_path(binding, path)
                )
        return SortOp(key_lcls, order.descending, top)

    # ------------------------------------------------------------------
    # RETURN parsing
    # ------------------------------------------------------------------
    def _parse_return(self, ret) -> dict:
        """Build the construct tree + the extension selects it needs."""
        spec = {"selects": [], "keep": [], "ctree": None}
        if ret is None:
            raise TranslationError("FLWOR lacks a RETURN clause")
        spec["ctree"] = self._return_expr(ret, spec)
        return spec

    def _return_expr(self, expr, spec):
        if isinstance(expr, ElementConstructor):
            element = CElement(expr.tag, self.lcls.allocate())
            self.class_tags[element.lcl] = expr.tag
            for attr_name, attr_value in expr.attrs:
                if isinstance(attr_value, str):
                    element.attrs.append((attr_name, attr_value))
                else:
                    ref = self._value_ref(attr_value, spec, text=True)
                    element.attrs.append((attr_name, ref))
            for child in expr.children:
                element.children.append(self._return_expr(child, spec))
            return element
        if isinstance(expr, TextLiteral):
            return CText(expr.text)
        if isinstance(expr, PathExpr):
            return self._value_ref(expr, spec, text=expr.text_fn)
        if isinstance(expr, AggrExpr):
            return self._value_ref(expr, spec, text=True)
        if isinstance(expr, FLWOR):
            inner_block = self.translator.translate_block(expr, parent=self)
            source = _FlworSource(inner_block, "*")
            self.return_joins.append(source)
            for outer_lcl, _, _ in inner_block.deferred:
                spec["keep"].append(outer_lcl)
            return CClassRef(inner_block.output_root_lcl())
        raise TranslationError(f"unsupported RETURN expression: {expr!r}")

    def _value_ref(self, expr, spec, text: bool) -> CClassRef:
        """Class reference for one path/aggregate value in the return."""
        if isinstance(expr, AggrExpr):
            base = self._value_ref(expr.path, spec, text=False)
            new_lcl = self.lcls.allocate()
            self.class_tags[new_lcl] = expr.fname
            spec["selects"].append(
                lambda top, f=expr.fname, l=base.lcl, n=new_lcl: AggregateOp(
                    f, l, n, top
                )
            )
            return CClassRef(new_lcl, text_only=True)
        owner, binding = self.lookup(var_of(expr))
        if owner is not self:
            raise TranslationError(
                "RETURN may only reference this block's variables"
            )
        if not expr.steps:
            spec["keep"].append(binding.label)
            return CClassRef(binding.label, text_only=text)
        if binding.apt_node is not None:
            ext_root = APTNode(NodeTest(None), 0, lc_ref=binding.label)
            leaf = graft_steps(
                ext_root, expr.steps, "*", self.lcls, self.class_tags
            )
            spec["selects"].append(
                lambda top, apt=APT(ext_root): SelectOp(apt, top)
            )
            spec["keep"].append(binding.label)
            return CClassRef(leaf.lcl, text_only=text)
        lcl = self.resolve_constructed_path(binding, expr)
        spec["keep"].append(lcl)
        return CClassRef(lcl, text_only=text)


def owner_block_resolve(
    owner: _Block, binding: _Binding, path: PathExpr
) -> int:
    """Resolve a constructed-content path in the owning block's scope."""
    return owner.resolve_constructed_path(binding, path)


def var_of(path: PathExpr) -> str:
    """The root variable of a variable-rooted path."""
    if path.var is None:
        raise TranslationError(
            f"expected a variable-rooted path, got {path.describe()}"
        )
    return path.var


class TLCTranslator:
    """Translates a FLWOR AST (or query text) into a TLC plan."""

    def __init__(self) -> None:
        self.lcls = LCLAllocator()
        self.class_tags: Dict[int, str] = {}

    def translate_block(
        self, flwor: FLWOR, parent: Optional[_Block] = None
    ) -> _Block:
        """Run the SingleBlock procedure for one FLWOR."""
        block = _Block(self, flwor, parent)
        block.process_clauses()
        block.process_where()
        block.finish()
        return block

    def translate(self, flwor: FLWOR) -> TranslationResult:
        """Translate a complete query AST."""
        block = self.translate_block(flwor)
        var_lcls = {
            var: binding.label for var, binding in block.bindings.items()
        }
        return TranslationResult(block.finish(), var_lcls, self.class_tags)


def translate_query(text: str) -> TranslationResult:
    """Parse and translate XQuery text in one call."""
    return TLCTranslator().translate(parse_query(text))
