"""Recursive-descent parser for the Figure 5 XQuery fragment.

Scannerless: the parser walks the raw text directly, which keeps element
constructors (whose lexical rules differ from expressions) simple.
Keywords are case-insensitive (the paper writes ``FOR``/``WHERE``;
real-world XQuery is lowercase).  Both the paper's bare-path content
(``<person> $o/bidder </person>``) and standard braced content
(``{$o/bidder}``) are accepted.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from ..errors import XQuerySyntaxError
from .ast_nodes import (
    AggrExpr,
    AggrPredicate,
    BoolExpr,
    ElementConstructor,
    FLWOR,
    ForClause,
    LetClause,
    OrderSpec,
    PathExpr,
    Quantifier,
    ReturnExpr,
    SimplePredicate,
    Step,
    TextLiteral,
    ValueJoin,
    WhereExpr,
)

_NAME_RE = re.compile(r"[A-Za-z_][\w.\-]*")
_NUMBER_RE = re.compile(r"-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?")
_AGGREGATES = ("count", "sum", "avg", "min", "max")
_COMPARE_OPS = ("!=", "<=", ">=", "=", "<", ">")


class _Cursor:
    """Character cursor with keyword/name/number helpers."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # -- diagnostics --------------------------------------------------
    def error(self, message: str) -> XQuerySyntaxError:
        line = self.text.count("\n", 0, self.pos) + 1
        column = self.pos - self.text.rfind("\n", 0, self.pos)
        return XQuerySyntaxError(message, line, column)

    # -- basic scanning ----------------------------------------------
    def skip_ws(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif self.text.startswith("(:", self.pos):  # XQuery comment
                end = self.text.find(":)", self.pos + 2)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 2
            else:
                return

    def eof(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def peek(self, n: int = 1) -> str:
        return self.text[self.pos : self.pos + n]

    def try_literal(self, literal: str) -> bool:
        self.skip_ws()
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.try_literal(literal):
            raise self.error(f"expected {literal!r}")

    def peek_keyword(self, word: str) -> bool:
        self.skip_ws()
        end = self.pos + len(word)
        if self.text[self.pos : end].lower() != word.lower():
            return False
        if end < len(self.text) and (
            self.text[end].isalnum() or self.text[end] == "_"
        ):
            return False
        return True

    def try_keyword(self, word: str) -> bool:
        if self.peek_keyword(word):
            self.pos += len(word)
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.try_keyword(word):
            raise self.error(f"expected keyword {word!r}")

    def read_name(self) -> str:
        self.skip_ws()
        match = _NAME_RE.match(self.text, self.pos)
        if not match:
            raise self.error("expected a name")
        self.pos = match.end()
        return match.group()

    def read_var(self) -> str:
        self.expect("$")
        return self.read_name()

    def read_string(self) -> str:
        self.skip_ws()
        quote = self.peek()
        if quote not in ("'", '"', "“", "”"):
            raise self.error("expected a string literal")
        close = {"“": "”"}.get(quote, quote)
        self.pos += 1
        end = self.text.find(close, self.pos)
        if end < 0 and close == "”":
            end = self.text.find("“", self.pos)
        if end < 0:
            raise self.error("unterminated string literal")
        value = self.text[self.pos : end]
        self.pos = end + 1
        return value

    def try_number(self):
        self.skip_ws()
        match = _NUMBER_RE.match(self.text, self.pos)
        if not match:
            return None
        self.pos = match.end()
        text = match.group()
        return float(text) if any(c in text for c in ".eE") else int(text)


def parse_query(text: str) -> FLWOR:
    """Parse a complete query and return its FLWOR AST."""
    cursor = _Cursor(text)
    flwor = _parse_flwor(cursor)
    if not cursor.eof():
        raise cursor.error("unexpected trailing content")
    return flwor


# ----------------------------------------------------------------------
# FLWOR structure
# ----------------------------------------------------------------------
def _parse_flwor(cur: _Cursor) -> FLWOR:
    clauses: List[Union[ForClause, LetClause]] = []
    while True:
        if cur.peek_keyword("for"):
            cur.try_keyword("for")
            while True:
                var = cur.read_var()
                cur.expect_keyword("in")
                clauses.append(ForClause(var, _parse_binding_source(cur)))
                if not cur.try_literal(","):
                    break
        elif cur.peek_keyword("let"):
            cur.try_keyword("let")
            while True:
                var = cur.read_var()
                cur.expect(":=")
                clauses.append(LetClause(var, _parse_binding_source(cur)))
                if not cur.try_literal(","):
                    break
        else:
            break
    if not clauses:
        raise cur.error("FLWOR must start with FOR or LET")
    where = None
    if cur.try_keyword("where"):
        where = _parse_where(cur)
    order = None
    if cur.peek_keyword("order"):
        cur.try_keyword("order")
        cur.expect_keyword("by")
        paths = [_parse_path(cur)]
        while cur.try_literal(","):
            paths.append(_parse_path(cur))
        descending = False
        if cur.try_keyword("descending"):
            descending = True
        else:
            cur.try_keyword("ascending")
        order = OrderSpec(paths, descending)
    cur.expect_keyword("return")
    ret = _parse_return_expr(cur)
    return FLWOR(clauses, where, order, ret)


def _parse_binding_source(cur: _Cursor) -> Union[PathExpr, FLWOR]:
    cur.skip_ws()
    if cur.peek() == "(":
        saved = cur.pos
        cur.expect("(")
        if cur.peek_keyword("for") or cur.peek_keyword("let"):
            inner = _parse_flwor(cur)
            cur.expect(")")
            return inner
        cur.pos = saved
    if cur.peek_keyword("for") or cur.peek_keyword("let"):
        return _parse_flwor(cur)
    return _parse_path(cur)


# ----------------------------------------------------------------------
# paths
# ----------------------------------------------------------------------
def _parse_path(cur: _Cursor) -> PathExpr:
    cur.skip_ws()
    doc = None
    var = None
    if cur.peek() == "$":
        var = cur.read_var()
    elif cur.peek_keyword("document") or cur.peek_keyword("doc"):
        cur.try_keyword("document") or cur.try_keyword("doc")
        cur.expect("(")
        doc = cur.read_string()
        cur.expect(")")
    else:
        raise cur.error("a path must start with $var or document(...)")
    steps: List[Step] = []
    text_fn = False
    while True:
        cur.skip_ws()
        if cur.text.startswith("//", cur.pos):
            cur.pos += 2
            axis = "ad"
        elif cur.peek() == "/":
            cur.pos += 1
            axis = "pc"
        else:
            break
        cur.skip_ws()
        if cur.peek_keyword("text"):
            # only the function call form ``text()`` ends the path; an
            # element named ``text`` (XMark's parlist chains) is a step
            after = cur.pos + len("text")
            rest = cur.text[after:].lstrip()
            if rest.startswith("("):
                cur.try_keyword("text")
                cur.expect("(")
                cur.expect(")")
                text_fn = True
                break
        if cur.peek() == "@":
            cur.pos += 1
            steps.append(Step(axis, "@" + cur.read_name()))
        else:
            steps.append(Step(axis, cur.read_name()))
    return PathExpr(doc, var, steps, text_fn)


# ----------------------------------------------------------------------
# WHERE
# ----------------------------------------------------------------------
def _parse_where(cur: _Cursor) -> WhereExpr:
    return _parse_or(cur)


def _parse_or(cur: _Cursor) -> WhereExpr:
    left = _parse_and(cur)
    while cur.try_keyword("or"):
        left = BoolExpr("or", left, _parse_and(cur))
    return left


def _parse_and(cur: _Cursor) -> WhereExpr:
    left = _parse_where_primary(cur)
    while cur.try_keyword("and"):
        left = BoolExpr("and", left, _parse_where_primary(cur))
    return left


def _read_compare_op(cur: _Cursor) -> str:
    cur.skip_ws()
    for op in _COMPARE_OPS:
        if cur.text.startswith(op, cur.pos):
            cur.pos += len(op)
            return op
    raise cur.error("expected a comparison operator")


def _parse_where_primary(cur: _Cursor) -> WhereExpr:
    cur.skip_ws()
    if cur.peek() == "(":
        cur.expect("(")
        inner = _parse_or(cur)
        cur.expect(")")
        return inner
    if cur.peek_keyword("every") or cur.peek_keyword("some"):
        kind = "every" if cur.try_keyword("every") else "some"
        if kind == "some":
            cur.expect_keyword("some")
        var = cur.read_var()
        cur.expect_keyword("in")
        path = _parse_path(cur)
        cur.expect_keyword("satisfies")
        pred_path = _parse_path(cur)
        op = _read_compare_op(cur)
        value = _read_value(cur)
        return Quantifier(kind, var, path, SimplePredicate(pred_path, op, value))
    if cur.peek_keyword("contains"):
        # contains(<SP>, "text") — the x14 function, as an extension
        cur.try_keyword("contains")
        cur.expect("(")
        path = _parse_path(cur)
        cur.expect(",")
        value = _read_value(cur)
        cur.expect(")")
        return SimplePredicate(path, "contains", value)
    for fname in _AGGREGATES:
        if cur.peek_keyword(fname):
            cur.try_keyword(fname)
            cur.expect("(")
            path = _parse_path(cur)
            cur.expect(")")
            op = _read_compare_op(cur)
            value = _read_value(cur)
            return AggrPredicate(fname, path, op, value)
    left = _parse_path(cur)
    op = _read_compare_op(cur)
    cur.skip_ws()
    if cur.peek() in ("$",) or cur.peek_keyword("document") or cur.peek_keyword("doc"):
        right = _parse_path(cur)
        return ValueJoin(left, op, right)
    return SimplePredicate(left, op, _read_value(cur))


def _read_value(cur: _Cursor):
    cur.skip_ws()
    if cur.peek() in ("'", '"', "“"):
        return cur.read_string()
    number = cur.try_number()
    if number is None:
        raise cur.error("expected a literal value")
    return number


# ----------------------------------------------------------------------
# RETURN
# ----------------------------------------------------------------------
def _parse_return_expr(cur: _Cursor) -> ReturnExpr:
    cur.skip_ws()
    if cur.peek() == "<":
        return _parse_constructor(cur)
    if cur.peek() == "(":
        cur.expect("(")
        inner = _parse_return_expr(cur)
        cur.expect(")")
        return inner
    if cur.peek() == "{":
        cur.expect("{")
        inner = _parse_return_expr(cur)
        cur.expect("}")
        return inner
    if cur.peek_keyword("for") or cur.peek_keyword("let"):
        return _parse_flwor(cur)
    for fname in _AGGREGATES:
        if cur.peek_keyword(fname):
            cur.try_keyword(fname)
            cur.expect("(")
            path = _parse_path(cur)
            cur.expect(")")
            return AggrExpr(fname, path)
    return _parse_path(cur)


def _parse_constructor(cur: _Cursor) -> ElementConstructor:
    cur.expect("<")
    tag = cur.read_name()
    attrs: List[Tuple[str, Union[str, PathExpr, AggrExpr]]] = []
    while True:
        cur.skip_ws()
        if cur.peek() in (">", "/"):
            break
        attr_name = cur.read_name()
        cur.expect("=")
        cur.skip_ws()
        if cur.peek() == "{":
            cur.expect("{")
            value = _parse_attr_value(cur)
            cur.expect("}")
        elif cur.peek() in ("'", '"', "“"):
            raw = cur.read_string()
            value = _attr_from_string(raw)
        else:
            value = _parse_attr_value(cur)
        attrs.append((attr_name, value))
    if cur.try_literal("/>"):
        return ElementConstructor(tag, attrs, [])
    cur.expect(">")
    children = _parse_content(cur, tag)
    return ElementConstructor(tag, attrs, children)


def _attr_from_string(raw: str) -> Union[str, PathExpr, AggrExpr]:
    """Attribute strings may embed one ``{expr}``; otherwise literal."""
    stripped = raw.strip()
    if stripped.startswith("{") and stripped.endswith("}"):
        inner = _Cursor(stripped[1:-1])
        value = _parse_attr_value(inner)
        if not inner.eof():
            raise inner.error("unexpected content in attribute expression")
        return value
    return raw


def _parse_attr_value(cur: _Cursor) -> Union[PathExpr, AggrExpr]:
    for fname in _AGGREGATES:
        if cur.peek_keyword(fname):
            cur.try_keyword(fname)
            cur.expect("(")
            path = _parse_path(cur)
            cur.expect(")")
            return AggrExpr(fname, path)
    return _parse_path(cur)


def _parse_content(cur: _Cursor, open_tag: str) -> List[ReturnExpr]:
    children: List[ReturnExpr] = []
    while True:
        cur.skip_ws()
        if cur.eof():
            raise cur.error(f"unclosed constructor <{open_tag}>")
        if cur.text.startswith("</", cur.pos):
            cur.pos += 2
            closing = cur.read_name()
            if closing != open_tag:
                raise cur.error(
                    f"mismatched </{closing}> for <{open_tag}>"
                )
            cur.expect(">")
            return children
        if cur.peek() == "<":
            children.append(_parse_constructor(cur))
            continue
        if cur.peek() == "{":
            cur.expect("{")
            children.append(_parse_return_expr(cur))
            cur.expect("}")
            continue
        if cur.peek() == "$":
            children.append(_parse_path(cur))
            continue
        for fname in _AGGREGATES:
            if cur.peek_keyword(fname):
                children.append(_parse_return_expr(cur))
                break
        else:
            # literal text up to the next markup character
            start = cur.pos
            while cur.pos < len(cur.text) and cur.text[cur.pos] not in "<{$":
                cur.pos += 1
            literal = cur.text[start : cur.pos].strip()
            if literal:
                children.append(TextLiteral(literal))
            continue
