"""Path utilities: SPtoAPT and friends (Figure 6 helpers).

``SPtoAPT`` turns a Simple Path into a chain of annotated pattern nodes
("use Rel from StepAxis, use mSpec for all edges"); ``graft_steps`` is the
working part of ``addToAPT``, attaching such a chain below an existing
pattern node.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..patterns.apt import APTNode
from ..patterns.logical_class import LCLAllocator
from ..patterns.predicates import NodeTest
from .ast_nodes import PathExpr, Step

#: Mirror of each comparison operator when its operands are swapped.
FLIPPED_OP = {"=": "=", "!=": "!=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}


def graft_steps(
    base: APTNode,
    steps: Sequence[Step],
    mspec: str,
    lcls: LCLAllocator,
    class_tags: Optional[Dict[int, str]] = None,
) -> APTNode:
    """Attach a chain of pattern nodes for ``steps`` below ``base``.

    Every edge gets the same matching specification, per Figure 6's
    ``SPtoAPT``.  Existing children are reused when an identical plain step
    (same tag, axis and mspec, no predicate) is already present — the
    within-pattern sharing that keeps one ``$var`` pointing at one node
    when several clauses mention the same prefix.

    Returns the leaf pattern node.  ``class_tags`` (label -> tag) is
    updated for every node created.
    """
    current = base
    for step in steps:
        reuse = None
        for edge in current.edges:
            same_shape = (
                edge.axis == step.axis
                and edge.mspec == mspec
                and edge.child.test.tag == step.name
                and not edge.child.test.comparisons
            )
            if same_shape:
                reuse = edge.child
                break
        if reuse is not None:
            current = reuse
            continue
        child = APTNode(NodeTest(step.name), lcls.allocate())
        current.add_edge(child, step.axis, mspec)
        if class_tags is not None:
            class_tags[child.lcl] = step.name
        current = child
    return current


def sp_to_apt(
    path: PathExpr,
    mspec: str,
    lcls: LCLAllocator,
    class_tags: Optional[Dict[int, str]] = None,
) -> APTNode:
    """``SPtoAPT`` for a document-rooted path: build a fresh pattern chain.

    The root is a ``doc_root`` node (the paper's plans all start there);
    the caller wraps it into an :class:`~repro.patterns.apt.APT` bound to
    ``path.doc``.
    """
    root = APTNode(NodeTest("doc_root"), lcls.allocate())
    if class_tags is not None:
        class_tags[root.lcl] = "doc_root"
    graft_steps(root, path.steps, mspec, lcls, class_tags)
    return root


def path_tail_tags(path: PathExpr) -> List[str]:
    """The step names of a path (used by static resolution messages)."""
    return [step.name for step in path.steps]
