"""Random query generation inside the Figure 5 fragment.

Generates syntactically valid, schema-aware FLWOR queries over the XMark
vocabulary.  Used by the randomized cross-engine tests (four independent
engines must agree on every generated query) and usable as a standalone
workload generator for benchmarking::

    from repro.xquery.fuzz import QueryFuzzer
    fuzzer = QueryFuzzer(seed=7)
    for _ in range(10):
        print(fuzzer.query())
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

#: (path steps from a person/auction variable, value domain) — the paths
#: the fuzzer draws predicates and returns from, with plausible constants.
PERSON_PATHS: List[Tuple[str, List[object]]] = [
    ("/name", ["gold", "Alice Abel"]),
    ("//age", [25, 40, 60]),
    ("/profile/gender", ["male", "female"]),
    ("/profile/education", ["College", "Graduate School"]),
    ("/emailaddress", ["mailto:u1@example.org"]),
    ("/@id", ["person0", "person1", "person7"]),
    ("/profile/@income", [50000, 100000, 150000]),
]

AUCTION_PATHS: List[Tuple[str, List[object]]] = [
    ("/initial", [10, 50, 150]),
    ("/reserve", [20, 100]),
    ("/quantity", [1, 3, 5]),
    ("/type", ["Regular", "Featured"]),
    ("/@id", ["open_auction0", "open_auction3"]),
    ("//increase", [5, 10, 20]),
]

#: Paths with repeated matches, used for counts and quantifiers.
AUCTION_MULTI = ["/bidder", "/bidder/increase", "//increase"]
PERSON_MULTI = ["/profile/interest", "/watches/watch"]


class QueryFuzzer:
    """Deterministic random generator of fragment queries over XMark."""

    def __init__(self, seed: int = 0, doc: str = "auction.xml") -> None:
        self.rng = random.Random(seed)
        self.doc = doc

    # ------------------------------------------------------------------
    def query(self) -> str:
        """One random FLWOR query."""
        shape = self.rng.choice(
            ("single", "single", "join", "nested", "order")
        )
        if shape == "single":
            return self._single_source()
        if shape == "join":
            return self._two_source_join()
        if shape == "nested":
            return self._nested_let()
        return self._order_by()

    # ------------------------------------------------------------------
    def _source(self) -> Tuple[str, str, list, list]:
        """(var, tag, scalar paths, multi paths) for one source kind."""
        if self.rng.random() < 0.5:
            return "p", "person", PERSON_PATHS, PERSON_MULTI
        return "o", "open_auction", AUCTION_PATHS, AUCTION_MULTI

    def _predicate(self, var: str, paths, multi) -> str:
        kind = self.rng.choice(("simple", "simple", "count", "quant"))
        if kind == "simple":
            path, domain = self.rng.choice(paths)
            value = self.rng.choice(domain)
            op = self.rng.choice(
                ("=", "!=") if isinstance(value, str) else ("<", ">", ">=")
            )
            literal = f'"{value}"' if isinstance(value, str) else value
            return f"${var}{path} {op} {literal}"
        if kind == "count":
            path = self.rng.choice(multi)
            threshold = self.rng.randint(0, 4)
            op = self.rng.choice((">", ">=", "<"))
            return f"count(${var}{path}) {op} {threshold}"
        path = self.rng.choice(multi)
        quantifier = self.rng.choice(("EVERY", "SOME"))
        inner = self.rng.choice(("q", "i2"))
        return (
            f"{quantifier} ${inner} IN ${var}{path} "
            f"SATISFIES ${inner} != \"nothing\""
        )

    def _where(self, var: str, paths, multi, extra: str = "") -> str:
        clauses = [
            self._predicate(var, paths, multi)
            for _ in range(self.rng.randint(0, 2))
        ]
        if extra:
            clauses.append(extra)
        if not clauses:
            return ""
        connective = " AND " if self.rng.random() < 0.8 else " OR "
        if connective == " OR ":
            # OR supports simple predicates only: regenerate as simple
            clauses = [
                self._simple_only(var, paths)
                for _ in range(max(2, len(clauses)))
            ]
            if extra:
                return (
                    f"WHERE ({' OR '.join(clauses)}) AND {extra}"
                )
            return "WHERE " + " OR ".join(clauses)
        return "WHERE " + " AND ".join(clauses)

    def _simple_only(self, var: str, paths) -> str:
        path, domain = self.rng.choice(paths)
        value = self.rng.choice(domain)
        literal = f'"{value}"' if isinstance(value, str) else value
        op = "=" if isinstance(value, str) else ">"
        return f"${var}{path} {op} {literal}"

    def _return(self, var: str, paths, multi) -> str:
        kind = self.rng.choice(("text", "splice", "count", "element"))
        if kind == "text":
            path, _ = self.rng.choice(paths)
            return f"RETURN <out>{{${var}{path}/text()}}</out>"
        if kind == "splice":
            path = self.rng.choice(multi)
            return f"RETURN <out>{{${var}{path}}}</out>"
        if kind == "count":
            path = self.rng.choice(multi)
            return f"RETURN <n>{{count(${var}{path})}}</n>"
        path_a, _ = self.rng.choice(paths)
        path_b = self.rng.choice(multi)
        return (
            f"RETURN <r a={{${var}{path_a}/text()}}>"
            f"<b>{{${var}{path_b}}}</b></r>"
        )

    # ------------------------------------------------------------------
    def _single_source(self) -> str:
        var, tag, paths, multi = self._source()
        return "\n".join(
            part
            for part in (
                f'FOR ${var} IN document("{self.doc}")//{tag}',
                self._where(var, paths, multi),
                self._return(var, paths, multi),
            )
            if part
        )

    def _two_source_join(self) -> str:
        join = (
            "$p/@id = $o/bidder//@person"
            if self.rng.random() < 0.6
            else "$o/seller/@person = $p/@id"
        )
        where = self._where("o", AUCTION_PATHS, AUCTION_MULTI, extra=join)
        return "\n".join(
            part
            for part in (
                f'FOR $p IN document("{self.doc}")//person',
                f'FOR $o IN document("{self.doc}")//open_auction',
                where,
                self._return("p", PERSON_PATHS, PERSON_MULTI),
            )
            if part
        )

    def _nested_let(self) -> str:
        correlate = self.rng.choice(
            ("$t/buyer/@person = $p/@id", "$t/seller/@person = $p/@id")
        )
        inner_where = f"WHERE {correlate}"
        if self.rng.random() < 0.4:
            inner_where += " AND $t/price > 50"
        return "\n".join(
            (
                f'FOR $p IN document("{self.doc}")//person',
                f'LET $a := FOR $t IN document("{self.doc}")'
                "//closed_auction",
                f"          {inner_where}",
                "          RETURN <t>{$t/price/text()}</t>",
                "RETURN <row name={$p/name/text()}>{count($a)}</row>",
            )
        )

    def _order_by(self) -> str:
        var, tag, paths, multi = self._source()
        path, _ = self.rng.choice(paths)
        if path.startswith("/@") or "//" in path:
            path = "/name" if tag == "person" else "/initial"
        mode = self.rng.choice(("Ascending", "Descending"))
        return "\n".join(
            part
            for part in (
                f'FOR ${var} IN document("{self.doc}")//{tag}',
                self._where(var, paths, multi),
                f"ORDER BY ${var}{path} {mode}",
                self._return(var, paths, multi),
            )
            if part
        )


def sample_queries(n: int, seed: int = 0) -> List[str]:
    """A reproducible batch of ``n`` fuzzed queries."""
    fuzzer = QueryFuzzer(seed)
    return [fuzzer.query() for _ in range(n)]
