"""Pattern-tree reuse as common-sub-expression elimination (Section 4.1).

The TLC execution model already shares the *results* of a pattern match
between consumers (the evaluator memoises shared sub-plans).  This pass
creates that sharing structurally: leaf Selects whose annotated pattern
trees are identical up to class labels collapse to one operator instance;
the eliminated pattern's labels are renamed to the surviving pattern's
labels throughout the plan, so the match runs once and all consumers read
the same logical classes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.base import Operator
from ..core.select import SelectOp
from ..patterns.apt import APTNode
from .base import rename_lcl


def _shape_signature(node: APTNode) -> tuple:
    """Structural fingerprint of a pattern subtree, ignoring labels."""
    return (
        node.test.tag,
        node.test.comparisons,
        node.lc_ref,
        tuple(
            (edge.axis, edge.mspec, _shape_signature(edge.child))
            for edge in node.edges
        ),
    )


def _label_pairs(
    keep: APTNode, drop: APTNode, out: List[Tuple[int, int]]
) -> None:
    """Collect (dropped label -> kept label) pairs over isomorphic trees."""
    out.append((drop.lcl, keep.lcl))
    for keep_edge, drop_edge in zip(keep.edges, drop.edges):
        _label_pairs(keep_edge.child, drop_edge.child, out)


def share_common_selects(root: Operator) -> int:
    """Collapse structurally identical leaf Selects to shared instances.

    Returns the number of operators eliminated.  The plan becomes a DAG;
    the evaluator's memoisation executes each shared node once.
    """
    canonical: Dict[tuple, SelectOp] = {}
    eliminated = 0
    for op in list(root.walk()):
        for index, child in enumerate(op.inputs):
            if not isinstance(child, SelectOp):
                continue
            if child.apt.root.lc_ref is not None or child.inputs:
                continue
            signature = (child.apt.doc, _shape_signature(child.apt.root))
            existing = canonical.get(signature)
            if existing is None:
                canonical[signature] = child
            elif existing is not child:
                pairs: List[Tuple[int, int]] = []
                _label_pairs(existing.apt.root, child.apt.root, pairs)
                op.inputs[index] = existing
                for old, new in pairs:
                    if old == new:
                        continue
                    for plan_op in root.walk():
                        rename_lcl(plan_op, old, new)
                eliminated += 1
    return eliminated
