"""The rewrite pipeline: apply all Section 4 rules to a TLC plan.

Order matters and follows the paper's Q1 walk-through:

1. share identical pattern matches (Section 4.1),
2. restructure nested/flat same-tag pairs — with **Shadow** when a later
   extension select re-fetches the same nodes (so step 3 can fire), with
   **Flatten** otherwise (Section 4.2),
3. replace redundant re-fetching selects with **Illuminate**
   (Section 4.3).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List

from ..core.base import Operator
from ..core.select import SelectOp
from ..errors import PlanValidationError
from ..xquery.translator import TranslationResult
from .flatten_rewrite import apply_flatten, find_flatten_sites
from .reuse import share_common_selects
from .shadow_rewrite import apply_illuminate, find_illuminate_sites


@dataclass
class RewriteLog:
    """What the optimizer did, for explainers and tests."""

    shared_selects: int = 0
    flattened: List[str] = field(default_factory=list)
    shadowed: List[str] = field(default_factory=list)
    illuminated: List[str] = field(default_factory=list)
    #: rewrite steps whose output passed the LC-flow preservation check
    verified: List[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(
            self.shared_selects
            or self.flattened
            or self.shadowed
            or self.illuminated
        )


class _StepVerifier:
    """Checks that a rewrite step does not break the plan's LC-flow.

    Rewrites legitimately rename labels and restructure operators, so
    "environment preserved" is checked as: the step must not *introduce*
    error diagnostics the plan did not already have (per code, counted).
    """

    def __init__(self, root: Operator) -> None:
        self.baseline = self._profile(root)[0]

    @staticmethod
    def _profile(root: Operator):
        from ..analysis import analyze

        analysis = analyze(root)
        return Counter(d.code for d in analysis.errors), analysis.errors

    def check(self, step: str, root: Operator, log: RewriteLog) -> None:
        profile, errors = self._profile(root)
        introduced = profile - self.baseline
        if introduced:
            raise PlanValidationError(
                f"rewrite step {step!r} broke the plan's LC-flow",
                [d for d in errors if d.code in introduced],
            )
        self.baseline = profile
        log.verified.append(step)


def _has_refetch(root: Operator, parent_lcl: int, tag: str) -> bool:
    """Is there an extension select re-fetching ``tag`` under the class?"""
    for op in root.walk():
        if not isinstance(op, SelectOp):
            continue
        apt_root = op.apt.root
        if apt_root.lc_ref != parent_lcl or len(apt_root.edges) != 1:
            continue
        child = apt_root.edges[0].child
        if (
            apt_root.edges[0].mspec in ("+", "*")
            and not child.edges
            and not child.test.comparisons
            and child.test.tag == tag
        ):
            return True
    return False


def optimize(root: Operator, verify: bool = True) -> tuple:
    """Apply all rewrites; returns (new_root, RewriteLog).

    With ``verify`` (the default) the static LC-flow analyzer runs after
    each of the three rewrite steps; a step that introduces new
    error-severity diagnostics raises
    :class:`~repro.errors.PlanValidationError`.  The verified step names
    are recorded in :attr:`RewriteLog.verified`.
    """
    log = RewriteLog()
    verifier = _StepVerifier(root) if verify else None
    log.shared_selects = share_common_selects(root)
    if verifier:
        verifier.check("reuse", root, log)
    # restructure: one site at a time (each apply invalidates detection)
    for _ in range(8):  # a plan has few sites; bounded for safety
        sites = find_flatten_sites(root)
        if not sites:
            break
        site = sites[0]
        b_node = site.nested_edge.child
        use_shadow = _has_refetch(
            root, site.parent.lcl, b_node.test.tag
        )
        root = apply_flatten(root, site, use_shadow=use_shadow)
        record = (
            f"({site.parent.lcl},{b_node.lcl})"
        )
        if use_shadow:
            log.shadowed.append(record)
        else:
            log.flattened.append(record)
    if verifier:
        verifier.check("restructure", root, log)
    for _ in range(8):
        sites = find_illuminate_sites(root)
        if not sites:
            break
        site = sites[0]
        root = apply_illuminate(root, site)
        log.illuminated.append(
            f"({site.refetch_lcl})->({site.shadowed_lcl})"
        )
    if verifier:
        verifier.check("illuminate", root, log)
    return root, log


def optimize_plan(
    translation: TranslationResult, verify: bool = True
) -> TranslationResult:
    """Optimize a translation result (plan rewritten in place)."""
    plan, _ = optimize(translation.plan, verify=verify)
    return TranslationResult(
        plan, translation.var_lcls, translation.class_tags
    )
