"""The Shadow / Illuminate rewrite (Section 4.3).

After the Shadow variant of the restructuring rewrite, all siblings of
the chosen class member remain in the trees — merely shadowed.  A later
extension Select that re-fetches the *same* nodes from the database
(Figure 7's Selection 9, re-accessing every bidder for the RETURN clause)
is therefore pure redundancy: it can be replaced by a single
**Illuminate**, and downstream references to its fresh class relabelled
to the shadowed class (Figure 12's transformation, and the combination
for Q1 the paper sketches at the end of Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.base import Operator
from ..core.project import ProjectOp
from ..core.select import SelectOp
from ..core.shadow import IlluminateOp, ShadowOp
from .base import consumers_above, parent_map, rename_lcl


@dataclass
class IlluminateSite:
    """One extension Select that can become an Illuminate."""

    select: SelectOp  # the redundant re-fetching extension select
    shadow: ShadowOp  # the Shadow that retained the nodes
    shadowed_lcl: int  # B: the class Shadow hid
    refetch_lcl: int  # C: the class the redundant select would create


def find_illuminate_sites(root: Operator) -> List[IlluminateSite]:
    """Find extension Selects whose target nodes a Shadow already holds."""
    shadows = [op for op in root.walk() if isinstance(op, ShadowOp)]
    if not shadows:
        return []
    sites: List[IlluminateSite] = []
    for op in root.walk():
        if not isinstance(op, SelectOp):
            continue
        apt_root = op.apt.root
        if apt_root.lc_ref is None or len(apt_root.edges) != 1:
            continue
        edge = apt_root.edges[0]
        child = edge.child
        if edge.mspec not in ("+", "*") or child.edges:
            continue
        if child.test.comparisons:
            continue
        for shadow in shadows:
            if shadow.parent_lcl != apt_root.lc_ref:
                continue
            if not _same_tag(root, shadow, child.test.tag):
                continue
            if op not in consumers_above(root, shadow):
                continue  # the select must sit above the shadow
            sites.append(
                IlluminateSite(op, shadow, shadow.child_lcl, child.lcl)
            )
            break
    return sites


def _same_tag(root: Operator, shadow: ShadowOp, tag: Optional[str]) -> bool:
    """Does the shadowed class match nodes of this tag?

    The Shadow's child class comes from the pattern of the select feeding
    it; find that pattern node and compare tags.
    """
    for op in root.walk():
        if isinstance(op, SelectOp) and op.apt.root.lc_ref is None:
            node = op.apt.root.find(shadow.child_lcl)
            if node is not None:
                return node.test.tag == tag
    return False


def apply_illuminate(root: Operator, site: IlluminateSite) -> Operator:
    """Replace the redundant select with Illuminate; relabel upstream."""
    parents = parent_map(root)
    illuminate = IlluminateOp(site.shadowed_lcl, site.select.inputs[0])
    consumer = parents.get(id(site.select))
    if consumer is None:
        root = illuminate
    else:
        consumer.replace_input(site.select, illuminate)
    # everything that would have referenced the re-fetched class now
    # addresses the illuminated one
    for op in root.walk():
        rename_lcl(op, site.refetch_lcl, site.shadowed_lcl)
    # the shadowed members must ride through intermediate projections
    for op in consumers_above(root, site.shadow):
        if op is illuminate:
            break
        if isinstance(op, ProjectOp):
            if site.shadowed_lcl not in op.keep_lcls:
                op.keep_lcls.append(site.shadowed_lcl)
    return root
