"""Plan-analysis utilities for the Section 4 rewrite rules.

The rewrite detectors need to know, for every operator, which logical
classes it *uses* and which it *defines*; and they need to walk and edit
the operator tree (parent links, chain extraction, label renames).
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..core.aggregate import AggregateOp
from ..core.base import Operator
from ..core.construct import CClassRef, CElement, ConstructOp
from ..core.dedup import DedupOp
from ..core.filter import FilterOp, TreeFilterOp
from ..core.flatten import FlattenOp
from ..core.join import JoinOp
from ..core.project import ProjectOp
from ..core.select import SelectOp
from ..core.shadow import IlluminateOp, ShadowOp
from ..core.sort_op import SortOp
from ..core.union import UnionOp


def used_lcls(op: Operator) -> Set[int]:
    """Classes whose members this operator reads.

    Thin wrapper over the :meth:`Operator.lc_consumed` protocol, kept as a
    function because the rewrite detectors predate the protocol.
    """
    return op.lc_consumed()


def defined_lcls(op: Operator) -> Set[int]:
    """Classes this operator introduces (``Operator.lc_produced``)."""
    return op.lc_produced()


def parent_map(root: Operator) -> Dict[int, Operator]:
    """Map ``id(op) -> consumer`` over an operator tree."""
    parents: Dict[int, Operator] = {}
    for op in root.walk():
        for child in op.inputs:
            parents[id(child)] = op
    return parents


def consumers_above(
    root: Operator, start: Operator
) -> List[Operator]:
    """The chain of operators from ``start``'s consumer up to the root."""
    parents = parent_map(root)
    chain: List[Operator] = []
    current = parents.get(id(start))
    while current is not None:
        chain.append(current)
        current = parents.get(id(current))
    return chain


def rename_lcl(op: Operator, old: int, new: int) -> None:
    """Rewrite references of class ``old`` to ``new`` in one operator."""
    if isinstance(op, FilterOp) and op.predicate.lcl == old:
        from ..core.base import ClassPredicate

        op.predicate = ClassPredicate(
            new, op.predicate.op, op.predicate.value
        )
    elif isinstance(op, JoinOp):
        from ..core.base import JoinPredicate

        op.predicates = [
            JoinPredicate(
                new if p.left_lcl == old else p.left_lcl,
                p.op,
                new if p.right_lcl == old else p.right_lcl,
                p.by_id,
            )
            for p in op.predicates
        ]
    elif isinstance(op, ProjectOp):
        op.keep_lcls = [new if l == old else l for l in op.keep_lcls]
    elif isinstance(op, DedupOp):
        op.lcls = [new if l == old else l for l in op.lcls]
        if old in op.bases:
            op.bases[new] = op.bases.pop(old)
    elif isinstance(op, AggregateOp):
        if op.lcl == old:
            op.lcl = new
    elif isinstance(op, SortOp):
        op.lcls = [new if l == old else l for l in op.lcls]
    elif isinstance(op, SelectOp):
        if op.apt.root.lc_ref == old:
            op.apt.root.lc_ref = new
    elif isinstance(op, ConstructOp):
        _rename_in_construct(op.ctree, old, new)
    elif isinstance(op, TreeFilterOp):
        # the predicate closure itself is opaque and cannot be renamed;
        # keeping the declared class list current preserves the analysis
        op.lcls = [new if l == old else l for l in op.lcls]
    elif isinstance(op, (FlattenOp, ShadowOp)):
        if op.parent_lcl == old:
            op.parent_lcl = new
        if op.child_lcl == old:
            op.child_lcl = new
    elif isinstance(op, IlluminateOp):
        if op.lcl == old:
            op.lcl = new
    elif isinstance(op, UnionOp):
        if op.dedup_lcl == old:
            op.dedup_lcl = new


def _rename_in_construct(spec, old: int, new: int) -> None:
    if isinstance(spec, CClassRef):
        if spec.lcl == old:
            spec.lcl = new
        return
    if isinstance(spec, CElement):
        for index, (name, value) in enumerate(spec.attrs):
            if isinstance(value, CClassRef) and value.lcl == old:
                value.lcl = new
        for child in spec.children:
            _rename_in_construct(child, old, new)


def splice_above(
    root: Operator,
    below: Operator,
    new_chain: List[Operator],
) -> Operator:
    """Insert operators between ``below`` and its consumer.

    ``new_chain`` is ordered bottom-up; each element must accept its input
    as ``inputs[0]`` (pre-wired by the caller except the first).  Returns
    the (possibly new) plan root.
    """
    parents = parent_map(root)
    consumer = parents.get(id(below))
    current = below
    for op in new_chain:
        op.inputs = [current]
        current = op
    if consumer is None:
        return current
    consumer.replace_input(below, current)
    return root
