"""Plan-analysis utilities for the Section 4 rewrite rules.

The rewrite detectors need to know, for every operator, which logical
classes it *uses* and which it *defines*; and they need to walk and edit
the operator tree (parent links, chain extraction, label renames).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core.aggregate import AggregateOp
from ..core.base import Operator
from ..core.construct import CClassRef, CElement, ConstructOp
from ..core.dedup import DedupOp
from ..core.filter import FilterOp, TreeFilterOp
from ..core.flatten import FlattenOp
from ..core.join import JoinOp
from ..core.project import ProjectOp
from ..core.select import SelectOp
from ..core.shadow import IlluminateOp, ShadowOp
from ..core.sort_op import SortOp
from ..core.union import UnionOp


def used_lcls(op: Operator) -> Set[int]:
    """Classes whose members this operator reads."""
    if isinstance(op, FilterOp):
        return {op.predicate.lcl}
    if isinstance(op, TreeFilterOp):
        return set()  # opaque predicate: treated as using nothing known
    if isinstance(op, JoinOp):
        out: Set[int] = set()
        for pred in op.predicates:
            out.add(pred.left_lcl)
            out.add(pred.right_lcl)
        return out
    if isinstance(op, ProjectOp):
        return set(op.keep_lcls)
    if isinstance(op, DedupOp):
        return set(op.lcls)
    if isinstance(op, AggregateOp):
        return {op.lcl}
    if isinstance(op, SortOp):
        return set(op.lcls)
    if isinstance(op, (FlattenOp, ShadowOp)):
        return {op.parent_lcl, op.child_lcl}
    if isinstance(op, IlluminateOp):
        return {op.lcl}
    if isinstance(op, SelectOp):
        ref = op.apt.root.lc_ref
        return {ref} if ref is not None else set()
    if isinstance(op, ConstructOp):
        return set(_construct_refs(op.ctree))
    if isinstance(op, UnionOp):
        return {op.dedup_lcl} if op.dedup_lcl is not None else set()
    return set()


def defined_lcls(op: Operator) -> Set[int]:
    """Classes this operator introduces."""
    if isinstance(op, AggregateOp):
        return {op.new_lcl}
    if isinstance(op, SelectOp):
        return set(op.apt.lcls())
    if isinstance(op, JoinOp):
        return {op.root_lcl} if op.root_lcl else set()
    if isinstance(op, ConstructOp):
        return set(_construct_defs(op.ctree))
    return set()


def _construct_refs(spec) -> Iterator[int]:
    if isinstance(spec, CClassRef):
        yield spec.lcl
        return
    if isinstance(spec, CElement):
        for _, value in spec.attrs:
            if isinstance(value, CClassRef):
                yield value.lcl
        for child in spec.children:
            yield from _construct_refs(child)


def _construct_defs(spec) -> Iterator[int]:
    if isinstance(spec, CElement):
        if spec.lcl:
            yield spec.lcl
        for child in spec.children:
            yield from _construct_defs(child)


def parent_map(root: Operator) -> Dict[int, Operator]:
    """Map ``id(op) -> consumer`` over an operator tree."""
    parents: Dict[int, Operator] = {}
    for op in root.walk():
        for child in op.inputs:
            parents[id(child)] = op
    return parents


def consumers_above(
    root: Operator, start: Operator
) -> List[Operator]:
    """The chain of operators from ``start``'s consumer up to the root."""
    parents = parent_map(root)
    chain: List[Operator] = []
    current = parents.get(id(start))
    while current is not None:
        chain.append(current)
        current = parents.get(id(current))
    return chain


def rename_lcl(op: Operator, old: int, new: int) -> None:
    """Rewrite references of class ``old`` to ``new`` in one operator."""
    if isinstance(op, FilterOp) and op.predicate.lcl == old:
        from ..core.base import ClassPredicate

        op.predicate = ClassPredicate(
            new, op.predicate.op, op.predicate.value
        )
    elif isinstance(op, JoinOp):
        from ..core.base import JoinPredicate

        op.predicates = [
            JoinPredicate(
                new if p.left_lcl == old else p.left_lcl,
                p.op,
                new if p.right_lcl == old else p.right_lcl,
                p.by_id,
            )
            for p in op.predicates
        ]
    elif isinstance(op, ProjectOp):
        op.keep_lcls = [new if l == old else l for l in op.keep_lcls]
    elif isinstance(op, DedupOp):
        op.lcls = [new if l == old else l for l in op.lcls]
        if old in op.bases:
            op.bases[new] = op.bases.pop(old)
    elif isinstance(op, AggregateOp):
        if op.lcl == old:
            op.lcl = new
    elif isinstance(op, SortOp):
        op.lcls = [new if l == old else l for l in op.lcls]
    elif isinstance(op, SelectOp):
        if op.apt.root.lc_ref == old:
            op.apt.root.lc_ref = new
    elif isinstance(op, ConstructOp):
        _rename_in_construct(op.ctree, old, new)


def _rename_in_construct(spec, old: int, new: int) -> None:
    if isinstance(spec, CClassRef):
        if spec.lcl == old:
            spec.lcl = new
        return
    if isinstance(spec, CElement):
        for index, (name, value) in enumerate(spec.attrs):
            if isinstance(value, CClassRef) and value.lcl == old:
                value.lcl = new
        for child in spec.children:
            _rename_in_construct(child, old, new)


def splice_above(
    root: Operator,
    below: Operator,
    new_chain: List[Operator],
) -> Operator:
    """Insert operators between ``below`` and its consumer.

    ``new_chain`` is ordered bottom-up; each element must accept its input
    as ``inputs[0]`` (pre-wired by the caller except the first).  Returns
    the (possibly new) plan root.
    """
    parents = parent_map(root)
    consumer = parents.get(id(below))
    current = below
    for op in new_chain:
        op.inputs = [current]
        current = op
    if consumer is None:
        return current
    consumer.replace_input(below, current)
    return root
