"""Section 4 rewrites: pattern reuse, Flatten, Shadow/Illuminate."""

from .base import defined_lcls, parent_map, rename_lcl, used_lcls
from .flatten_rewrite import FlattenSite, apply_flatten, find_flatten_sites
from .pipeline import RewriteLog, optimize, optimize_plan
from .reuse import share_common_selects
from .shadow_rewrite import (
    IlluminateSite,
    apply_illuminate,
    find_illuminate_sites,
)

__all__ = [
    "defined_lcls",
    "parent_map",
    "rename_lcl",
    "used_lcls",
    "FlattenSite",
    "apply_flatten",
    "find_flatten_sites",
    "RewriteLog",
    "optimize",
    "optimize_plan",
    "share_common_selects",
    "IlluminateSite",
    "apply_illuminate",
    "find_illuminate_sites",
]
