"""The Flatten rewrite (Section 4.2).

Detection (Phase 1): a leaf Select whose pattern has a node A with two
edges to same-tag children — B under a nested edge (``+``/``*``, used by
an aggregate) and C under a flat edge (``-``/``?``, used by a later
operator such as a value join) — where tree(B) ⊆ tree(C), and B is not
used above the aggregate chain.

Transformation (Phase 2): drop C from the pattern (the select matches the
``*`` side only once), run the aggregate chain, then **Flatten** on (A, B)
to recover the one-pair-per-tree structure, and re-attach C's extra
branches with an extension Select anchored at B.  The database is touched
once for the shared tag instead of twice (Figure 10).

When ``use_shadow`` is set, Shadow replaces Flatten (the hidden siblings
can later be re-activated by Illuminate instead of re-fetched — the Q1
combination the end of Section 4.3 describes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.base import Operator
from ..core.flatten import FlattenOp
from ..core.select import SelectOp
from ..core.shadow import ShadowOp
from ..errors import RewriteError
from ..patterns.apt import APT, APTEdge, APTNode
from ..patterns.predicates import NodeTest
from .base import consumers_above, defined_lcls, splice_above, used_lcls


@dataclass
class FlattenSite:
    """One detected opportunity for the Flatten rewrite."""

    select: SelectOp
    parent: APTNode  # A
    nested_edge: APTEdge  # (A, B) with + / *
    flat_edge: APTEdge  # (A, C) with - / ?
    chain: List[Operator]  # the contiguous use[tree(B)] operators above


def find_flatten_sites(root: Operator) -> List[FlattenSite]:
    """Phase 1: all plan locations where the rewrite applies."""
    sites: List[FlattenSite] = []
    for op in root.walk():
        if not isinstance(op, SelectOp) or op.apt.root.lc_ref is not None:
            continue
        for parent in op.apt.root.walk():
            site = _match_node(root, op, parent)
            if site is not None:
                sites.append(site)
    return sites


def _match_node(
    root: Operator, select: SelectOp, parent: APTNode
) -> Optional[FlattenSite]:
    nested = [e for e in parent.edges if e.mspec in ("+", "*")]
    flat = [e for e in parent.edges if e.mspec in ("-", "?")]
    for nested_edge in nested:
        b_node = nested_edge.child
        # tree(B) ⊆ tree(C): we support the common shape where B is a
        # plain leaf — every C with the same tag/axis then contains it
        if b_node.edges or b_node.test.comparisons:
            continue
        for flat_edge in flat:
            c_node = flat_edge.child
            if c_node.test.tag != b_node.test.tag:
                continue
            if flat_edge.axis != nested_edge.axis:
                continue
            chain = _aggregate_chain(root, select, b_node.lcl)
            if chain is None:
                continue
            if _b_used_above(root, select, chain, b_node.lcl, c_node.lcl):
                continue
            return FlattenSite(select, parent, nested_edge, flat_edge, chain)
    return None


def _aggregate_chain(
    root: Operator, select: SelectOp, b_lcl: int
) -> Optional[List[Operator]]:
    """The contiguous consumers of the select that only use B's classes."""
    chain: List[Operator] = []
    allowed = {b_lcl}
    for op in consumers_above(root, select):
        uses = used_lcls(op)
        if uses and uses <= allowed:
            chain.append(op)
            allowed |= defined_lcls(op)
            continue
        break
    return chain if chain else None


def _b_used_above(
    root: Operator,
    select: SelectOp,
    chain: List[Operator],
    b_lcl: int,
    c_lcl: int,
) -> bool:
    """notuse[tree(B)] check: B and C's root untouched above the chain."""
    in_chain = {id(op) for op in chain} | {id(select)}
    for op in consumers_above(root, select):
        if id(op) in in_chain:
            continue
        uses = used_lcls(op)
        if b_lcl in uses or c_lcl in uses:
            return True
    return False


def apply_flatten(
    root: Operator, site: FlattenSite, use_shadow: bool = False
) -> Operator:
    """Phase 2: perform the rewrite in place; returns the plan root."""
    parent = site.parent
    b_node = site.nested_edge.child
    c_node = site.flat_edge.child
    if site.flat_edge not in parent.edges:
        raise RewriteError("flatten site is stale")
    # drop tree(C) from the select's pattern
    parent.edges = [e for e in parent.edges if e is not site.flat_edge]
    # rebuild the dropped constraints as an extension below B:
    # C's own predicate moves to the extension root test, C's subtree
    # (tree(C) - tree(B)) keeps its labels so later operators still work
    restructure: Operator = (
        ShadowOp(parent.lcl, b_node.lcl)
        if use_shadow
        else FlattenOp(parent.lcl, b_node.lcl)
    )
    new_chain: List[Operator] = [restructure]
    if c_node.edges or c_node.test.comparisons:
        ext_root = APTNode(
            NodeTest(None, c_node.test.comparisons),
            0,
            lc_ref=b_node.lcl,
        )
        ext_root.edges = list(c_node.edges)
        new_chain.append(SelectOp(APT(ext_root)))
    below = site.chain[-1] if site.chain else site.select
    return splice_above(root, below, new_chain)
