"""XMark substrate: synthetic data generator and the benchmark queries."""

from .generator import XMarkGenerator, load_xmark
from .queries import (
    FIGURE15_ORDER,
    FIGURE16_QUERIES,
    FIGURE17_QUERIES,
    QUERIES,
    BenchQuery,
    query,
)
from .schema import FACTOR1_COUNTS, REGIONS, scaled

__all__ = [
    "XMarkGenerator",
    "load_xmark",
    "FIGURE15_ORDER",
    "FIGURE16_QUERIES",
    "FIGURE17_QUERIES",
    "QUERIES",
    "BenchQuery",
    "query",
    "FACTOR1_COUNTS",
    "REGIONS",
    "scaled",
]
