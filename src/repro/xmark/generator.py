"""Deterministic synthetic XMark document generator.

Builds a :class:`~repro.storage.xml_parser.ParsedElement` tree directly
(no text round-trip) so large factors load quickly; ``generate_xml`` also
renders text for tests of the parser path.  Seeded: the same (factor,
seed) always produces the same document.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..storage.database import Database
from ..storage.document import Document
from ..storage.xml_parser import ParsedElement
from ..storage.xml_serializer import serialize_parsed
from . import schema


class XMarkGenerator:
    """Generates synthetic auction documents at a given scale factor."""

    def __init__(self, factor: float = 0.01, seed: int = 20040613) -> None:
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        self.factor = factor
        self.rng = random.Random(seed * 1_000_003 + round(factor * 1_000_000))
        self.n_persons = schema.scaled(
            schema.FACTOR1_COUNTS["person"], factor
        )
        self.n_open = schema.scaled(
            schema.FACTOR1_COUNTS["open_auction"], factor
        )
        self.n_closed = schema.scaled(
            schema.FACTOR1_COUNTS["closed_auction"], factor
        )
        self.n_items = schema.scaled(schema.FACTOR1_COUNTS["item"], factor)
        self.n_categories = schema.scaled(
            schema.FACTOR1_COUNTS["category"], factor
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self) -> ParsedElement:
        """Build the full ``site`` tree."""
        site = ParsedElement("site")
        site.children.append(self._regions())
        site.children.append(self._categories())
        site.children.append(self._people())
        site.children.append(self._open_auctions())
        site.children.append(self._closed_auctions())
        return site

    def generate_xml(self) -> str:
        """Render the generated document as XML text."""
        return serialize_parsed(self.generate())

    def load_into(self, db: Database, name: str = "auction.xml") -> Document:
        """Generate and store the document in ``db`` under ``name``."""
        return db.load_parsed(name, self.generate())

    # ------------------------------------------------------------------
    # value helpers
    # ------------------------------------------------------------------
    def _word(self) -> str:
        return self.rng.choice(schema.WORDS)

    def _sentence(self, n_words: int = 4) -> str:
        return " ".join(self._word() for _ in range(n_words))

    def _name(self) -> str:
        return (
            f"{self.rng.choice(schema.FIRST_NAMES)} "
            f"{self.rng.choice(schema.LAST_NAMES)}"
        )

    def _maybe(self, probability: float) -> bool:
        return self.rng.random() < probability

    def _person_ref(self) -> str:
        return f"person{self.rng.randrange(self.n_persons)}"

    def _item_ref(self) -> str:
        return f"item{self.rng.randrange(self.n_items)}"

    def _category_ref(self) -> str:
        return f"category{self.rng.randrange(self.n_categories)}"

    @staticmethod
    def _leaf(tag: str, text) -> ParsedElement:
        return ParsedElement(tag, text=str(text))

    # ------------------------------------------------------------------
    # sections
    # ------------------------------------------------------------------
    def _regions(self) -> ParsedElement:
        regions = ParsedElement("regions")
        shares = schema.REGION_WEIGHTS
        item_no = 0
        for region_name, share in zip(schema.REGIONS, shares):
            region = ParsedElement(region_name)
            count = max(1, round(self.n_items * share))
            for _ in range(count):
                if item_no >= self.n_items:
                    break
                region.children.append(self._item(item_no, region_name))
                item_no += 1
            regions.children.append(region)
        while item_no < self.n_items:  # rounding remainder goes to europe
            regions.children[3].children.append(
                self._item(item_no, "europe")
            )
            item_no += 1
        return regions

    def _item(self, number: int, region: str) -> ParsedElement:
        item = ParsedElement("item", {"id": f"item{number}"})
        if self._maybe(0.1):
            item.attrs["featured"] = "yes"
        item.children.append(self._leaf("location", region))
        item.children.append(
            self._leaf("quantity", self.rng.randint(1, 10))
        )
        item.children.append(self._leaf("name", self._sentence(2)))
        item.children.append(
            self._leaf("payment", self.rng.choice(
                ("Cash", "Creditcard", "Money order")
            ))
        )
        item.children.append(self._description())
        item.children.append(self._leaf("shipping", "Will ship worldwide"))
        for _ in range(self.rng.randint(1, 3)):
            item.children.append(
                ParsedElement("incategory", {"category": self._category_ref()})
            )
        mailbox = ParsedElement("mailbox")
        for _ in range(self.rng.randint(0, schema.MAIL_MAX)):
            mail = ParsedElement("mail")
            mail.children.append(self._leaf("from", self._name()))
            mail.children.append(self._leaf("to", self._name()))
            mail.children.append(self._leaf("date", self._date()))
            mail.children.append(self._leaf("text", self._sentence(6)))
            mailbox.children.append(mail)
        item.children.append(mailbox)
        return item

    def _description(self) -> ParsedElement:
        description = ParsedElement("description")
        description.children.append(self._leaf("text", self._sentence(5)))
        for _ in range(self.rng.randint(0, schema.KEYWORD_MAX)):
            description.children.append(self._leaf("keyword", self._word()))
        return description

    def _categories(self) -> ParsedElement:
        categories = ParsedElement("categories")
        for number in range(self.n_categories):
            category = ParsedElement(
                "category", {"id": f"category{number}"}
            )
            category.children.append(
                self._leaf("name", f"{self._word()} {number}")
            )
            category.children.append(self._description())
            categories.children.append(category)
        return categories

    def _people(self) -> ParsedElement:
        people = ParsedElement("people")
        for number in range(self.n_persons):
            people.children.append(self._person(number))
        return people

    def _person(self, number: int) -> ParsedElement:
        person = ParsedElement("person", {"id": f"person{number}"})
        person.children.append(self._leaf("name", self._name()))
        person.children.append(
            self._leaf("emailaddress", f"mailto:u{number}@example.org")
        )
        if self._maybe(schema.P_PHONE):
            person.children.append(
                self._leaf("phone", f"+1 ({self.rng.randint(100, 999)}) "
                           f"{self.rng.randint(1000000, 9999999)}")
            )
        if self._maybe(schema.P_ADDRESS):
            address = ParsedElement("address")
            address.children.append(
                self._leaf("street", f"{self.rng.randint(1, 99)} "
                           f"{self._word().title()} St")
            )
            address.children.append(
                self._leaf("city", self.rng.choice(schema.CITIES))
            )
            address.children.append(
                self._leaf("country", self.rng.choice(schema.COUNTRIES))
            )
            address.children.append(
                self._leaf("zipcode", self.rng.randint(10000, 99999))
            )
            person.children.append(address)
        if self._maybe(schema.P_HOMEPAGE):
            person.children.append(
                self._leaf("homepage", f"https://example.org/u{number}")
            )
        if self._maybe(schema.P_CREDITCARD):
            person.children.append(
                self._leaf("creditcard", " ".join(
                    str(self.rng.randint(1000, 9999)) for _ in range(4)
                ))
            )
        profile = ParsedElement("profile")
        if self._maybe(schema.P_INCOME):
            profile.attrs["income"] = str(
                round(self.rng.uniform(9000, 240000), 2)
            )
        for _ in range(self.rng.randint(0, schema.INTEREST_MAX)):
            profile.children.append(
                ParsedElement("interest", {"category": self._category_ref()})
            )
        if self._maybe(schema.P_EDUCATION):
            profile.children.append(
                self._leaf("education", self.rng.choice(schema.EDUCATIONS))
            )
        if self._maybe(schema.P_GENDER):
            profile.children.append(
                self._leaf("gender", self.rng.choice(("male", "female")))
            )
        profile.children.append(
            self._leaf("business", self.rng.choice(("Yes", "No")))
        )
        if self._maybe(schema.P_AGE):
            profile.children.append(
                self._leaf("age", self.rng.randint(18, 70))
            )
        person.children.append(profile)
        if self._maybe(schema.P_WATCHES):
            watches = ParsedElement("watches")
            for _ in range(self.rng.randint(1, schema.WATCH_MAX)):
                watches.children.append(
                    ParsedElement(
                        "watch",
                        {"open_auction":
                         f"open_auction{self.rng.randrange(self.n_open)}"},
                    )
                )
            person.children.append(watches)
        return person

    def _open_auctions(self) -> ParsedElement:
        auctions = ParsedElement("open_auctions")
        for number in range(self.n_open):
            auctions.children.append(self._open_auction(number))
        return auctions

    def _n_bidders(self) -> int:
        count = 0
        while (
            count < schema.BIDDER_MAX
            and self.rng.random() < (schema.BIDDER_P if count else 0.85)
        ):
            count += 1
        return count

    def _open_auction(self, number: int) -> ParsedElement:
        auction = ParsedElement(
            "open_auction", {"id": f"open_auction{number}"}
        )
        initial = round(self.rng.uniform(1, 300), 2)
        auction.children.append(self._leaf("initial", initial))
        if self._maybe(schema.P_RESERVE):
            auction.children.append(
                self._leaf("reserve", round(initial * 1.5, 2))
            )
        current = initial
        for _ in range(self._n_bidders()):
            bidder = ParsedElement("bidder")
            bidder.children.append(self._leaf("date", self._date()))
            bidder.children.append(self._leaf("time", self._time()))
            bidder.children.append(
                ParsedElement("personref", {"person": self._person_ref()})
            )
            increase = round(self.rng.uniform(1.5, 30), 2)
            current = round(current + increase, 2)
            bidder.children.append(self._leaf("increase", increase))
            auction.children.append(bidder)
        auction.children.append(self._leaf("current", current))
        if self._maybe(0.3):
            auction.children.append(self._leaf("privacy", "Yes"))
        auction.children.append(
            ParsedElement("itemref", {"item": self._item_ref()})
        )
        auction.children.append(
            ParsedElement("seller", {"person": self._person_ref()})
        )
        auction.children.append(self._annotation(deep=False))
        auction.children.append(
            self._leaf("quantity", self.rng.randint(1, 10))
        )
        auction.children.append(
            self._leaf("type", self.rng.choice(schema.AUCTION_TYPES))
        )
        interval = ParsedElement("interval")
        interval.children.append(self._leaf("start", self._date()))
        interval.children.append(self._leaf("end", self._date()))
        auction.children.append(interval)
        return auction

    def _closed_auctions(self) -> ParsedElement:
        auctions = ParsedElement("closed_auctions")
        for number in range(self.n_closed):
            auction = ParsedElement(
                "closed_auction", {"id": f"closed_auction{number}"}
            )
            auction.children.append(
                ParsedElement("seller", {"person": self._person_ref()})
            )
            auction.children.append(
                ParsedElement("buyer", {"person": self._person_ref()})
            )
            auction.children.append(
                ParsedElement("itemref", {"item": self._item_ref()})
            )
            auction.children.append(
                self._leaf("price", round(self.rng.uniform(5, 400), 2))
            )
            auction.children.append(self._leaf("date", self._date()))
            auction.children.append(
                self._leaf("quantity", self.rng.randint(1, 5))
            )
            auction.children.append(
                self._leaf("type", self.rng.choice(schema.AUCTION_TYPES))
            )
            auction.children.append(self._annotation(deep=True))
            auctions.children.append(auction)
        return auctions

    def _annotation(self, deep: bool) -> ParsedElement:
        annotation = ParsedElement("annotation")
        annotation.children.append(
            ParsedElement("author", {"person": self._person_ref()})
        )
        description = ParsedElement("description")
        if deep and self._maybe(schema.P_PARLIST):
            # the deep chain x15/x16 walk:
            # description/parlist/listitem/text/keyword
            parlist = ParsedElement("parlist")
            for _ in range(self.rng.randint(1, 2)):
                listitem = ParsedElement("listitem")
                text = ParsedElement("text", text=self._sentence(4))
                text.children.append(self._leaf("keyword", self._word()))
                listitem.children.append(text)
                parlist.children.append(listitem)
            description.children.append(parlist)
        else:
            description.children.append(
                self._leaf("text", self._sentence(4))
            )
        annotation.children.append(description)
        annotation.children.append(
            self._leaf("happiness", self.rng.randint(1, 10))
        )
        return annotation

    def _date(self) -> str:
        return (
            f"{self.rng.randint(1, 12):02d}/"
            f"{self.rng.randint(1, 28):02d}/"
            f"{self.rng.randint(1999, 2004)}"
        )

    def _time(self) -> str:
        return (
            f"{self.rng.randint(0, 23):02d}:"
            f"{self.rng.randint(0, 59):02d}:00"
        )


def load_xmark(
    db: Database,
    factor: float = 0.01,
    name: str = "auction.xml",
    seed: int = 20040613,
) -> Document:
    """Generate an XMark document at ``factor`` and load it into ``db``."""
    return XMarkGenerator(factor, seed).load_into(db, name)
