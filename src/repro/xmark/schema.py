"""XMark schema constants: element ratios and value distributions.

The paper evaluates on XMark documents (factor 1 ≈ 710 MB in TIMBER).  The
original ``xmlgen`` C generator is not available offline, so the generator
in this package is a synthetic equivalent that preserves what the queries
actually exercise:

* the element *ratios* of XMark factor 1 (persons : open auctions :
  closed auctions : items : categories = 25500 : 12000 : 9750 : 21750 :
  1000),
* the optional elements the paper's heterogeneity discussion depends on
  (``age``, ``reserve``, ``homepage`` … present for a fraction of nodes),
* repeated sub-elements with skewed fan-out (``bidder`` per auction —
  Q1/Q2 need a tail of auctions with more than 5 bidders),
* the deep ``annotation/description/parlist/listitem`` chains of the
  long-path queries (x15, x16), and ``keyword`` content for x14.
"""

from __future__ import annotations

#: Element counts at XMark scale factor 1.
FACTOR1_COUNTS = {
    "person": 25500,
    "open_auction": 12000,
    "closed_auction": 9750,
    "item": 21750,
    "category": 1000,
}

#: The six XMark regions items are distributed over.
REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")

#: Relative share of items per region (Europe/N-America heavy, as XMark).
REGION_WEIGHTS = (0.05, 0.15, 0.10, 0.30, 0.30, 0.10)

#: Probability that an optional element is present.
P_AGE = 0.5
P_GENDER = 0.7
P_INCOME = 0.6
P_HOMEPAGE = 0.3
P_CREDITCARD = 0.4
P_ADDRESS = 0.6
P_RESERVE = 0.45
P_PHONE = 0.5
P_EDUCATION = 0.35
P_WATCHES = 0.5
P_PARLIST = 0.5  # closed-auction annotation gets the deep parlist chain

#: Bidder fan-out: geometric-ish tail so some auctions exceed 5 bidders
#: even at small factors (Q1/Q2 filter on ``count(bidder) > 5``).
BIDDER_MAX = 14
BIDDER_P = 0.60  # continuation probability per extra bidder

#: Interests / watches fan-outs.
INTEREST_MAX = 5
WATCH_MAX = 6
KEYWORD_MAX = 3
MAIL_MAX = 2

#: Word pool for names and description text (small; content values matter
#: more than prose for the queries).
WORDS = (
    "gold", "silver", "amber", "ivory", "jade", "linen", "cedar", "apple",
    "river", "stone", "cloud", "ember", "falcon", "harbor", "meadow",
    "north", "quill", "saddle", "tundra", "willow",
)

FIRST_NAMES = (
    "Alice", "Bob", "Carol", "David", "Erika", "Frank", "Grace", "Henri",
    "Ines", "Jack", "Karin", "Louis", "Mona", "Nils", "Olga", "Pavel",
    "Quinn", "Rosa", "Sven", "Tara",
)

LAST_NAMES = (
    "Abel", "Bauer", "Chen", "Dumas", "Evans", "Fischer", "Garcia", "Haas",
    "Ito", "Jonsson", "Klein", "Lopez", "Moreau", "Novak", "Olsen",
    "Pereira", "Qureshi", "Rossi", "Sato", "Toth",
)

CITIES = (
    "Paris", "Ann Arbor", "Vancouver", "Berlin", "Kyoto", "Lagos",
    "Santiago", "Sydney", "Mumbai", "Tromso",
)

COUNTRIES = (
    "France", "United States", "Canada", "Germany", "Japan", "Nigeria",
    "Chile", "Australia", "India", "Norway",
)

EDUCATIONS = ("High School", "College", "Graduate School", "Other")

AUCTION_TYPES = ("Regular", "Featured", "Dutch")


def scaled(count: int, factor: float) -> int:
    """Scale a factor-1 count, keeping at least one element."""
    return max(1, round(count * factor))
