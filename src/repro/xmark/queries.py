"""The benchmark query suite: x1…x20, Q1, Q2 and x10a.

These are the XMark queries adapted to the Figure 5 XQuery fragment.
Each query preserves the "heterogeneity instigators" Figure 15's comments
column attributes its performance behaviour to (arguments per RETURN,
counts, LET bindings, ``//`` steps, value joins, sorts, output size);
constructs outside the fragment (positional access, ``contains()``,
arithmetic, negation) are replaced by fragment-expressible equivalents
with the same access pattern, as recorded per query below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

DOC = "auction.xml"


@dataclass(frozen=True)
class BenchQuery:
    """One benchmark query with its Figure 15 metadata."""

    name: str
    text: str
    comment: str  # the Figure 15 comments column
    adaptation: str = ""  # how it deviates from the original XMark text


_QUERIES: List[BenchQuery] = [
    BenchQuery(
        "x1",
        f'''
        FOR $b IN document("{DOC}")//person
        WHERE $b/@id = "person0"
        RETURN <out>{{$b/name/text()}}</out>
        ''',
        "1 A/R, single OT",
    ),
    BenchQuery(
        "x2",
        f'''
        FOR $b IN document("{DOC}")//open_auction
        RETURN <increase>{{$b/bidder/increase/text()}}</increase>
        ''',
        "1 A/R, lots OT",
        "positional bidder[1] access replaced by the bidder increases",
    ),
    BenchQuery(
        "x3",
        f'''
        FOR $p IN document("{DOC}")//person
        FOR $o IN document("{DOC}")//open_auction
        WHERE count($o/bidder) > 2
          AND $p/@id = $o/bidder//@person
        RETURN <bid><who>{{$p/name/text()}}</who>{{$o/initial}}</bid>
        ''',
        "J, 2 A/R, avg OT",
        "positional arithmetic replaced by a bidder join + count "
        "(keeps the flatten-rewritable shape used in Figure 16)",
    ),
    BenchQuery(
        "x4",
        f'''
        FOR $o IN document("{DOC}")//open_auction
        WHERE $o/@id = "open_auction3" OR $o/@id = "open_auction7"
        RETURN <history>{{$o/initial/text()}}</history>
        ''',
        "1 A/R, two OT",
        "positional before() replaced by a two-id disjunction",
    ),
    BenchQuery(
        "x5",
        f'''
        FOR $o IN document("{DOC}")//open_auction
        WHERE count($o/bidder) > 0 AND $o/bidder/increase > 20
        RETURN <hot>{{$o/bidder}}</hot>
        ''',
        "small count, 1 A/R",
        "price-threshold count replaced by per-auction bidder count "
        "(keeps the shadow-rewritable shape used in Figure 16)",
    ),
    BenchQuery(
        "x6",
        f'''
        FOR $r IN document("{DOC}")/site/regions
        RETURN <cnt>{{count($r//item)}}</cnt>
        ''',
        "big count, '//'",
    ),
    BenchQuery(
        "x7",
        f'''
        FOR $s IN document("{DOC}")/site
        RETURN <counts>
          <m>{{count($s//mail)}}</m>
          <i>{{count($s//item)}}</i>
          <d>{{count($s//description)}}</d>
        </counts>
        ''',
        "3 big counts, '//'",
    ),
    BenchQuery(
        "x8",
        f'''
        FOR $p IN document("{DOC}")//person
        LET $a := FOR $t IN document("{DOC}")//closed_auction
                  WHERE $t/buyer/@person = $p/@id
                  RETURN <tr>{{$t/price/text()}}</tr>
        RETURN <item person={{$p/name/text()}}>{{count($a)}}</item>
        ''',
        "J, LET, 2 A/R",
    ),
    BenchQuery(
        "x9",
        f'''
        FOR $p IN document("{DOC}")//person
        LET $a := FOR $t IN document("{DOC}")//closed_auction
                  FOR $e IN document("{DOC}")//europe
                  WHERE $t/buyer/@person = $p/@id
                    AND $t/itemref/@item = $e/item/@id
                  RETURN <tr>{{$t/price/text()}}</tr>
        RETURN <person name={{$p/name/text()}}>{{count($a)}}</person>
        ''',
        "2J, LETs, 2 A/R",
        "the inner item name return is simplified to the sale price",
    ),
    BenchQuery(
        "x10",
        f'''
        FOR $c IN document("{DOC}")//category
        LET $p := FOR $q IN document("{DOC}")//person
                  WHERE $q/profile/interest/@category = $c/@id
                  RETURN <personne>
                    <statistiques>
                      <sexe>{{$q/profile/gender/text()}}</sexe>
                      <age>{{$q/profile/age/text()}}</age>
                      <education>{{$q/profile/education/text()}}</education>
                      <revenu>{{$q/profile/@income}}</revenu>
                    </statistiques>
                    <coordonnees>
                      <nom>{{$q/name/text()}}</nom>
                      <rue>{{$q/address/street/text()}}</rue>
                      <ville>{{$q/address/city/text()}}</ville>
                      <pays>{{$q/address/country/text()}}</pays>
                      <reseau>
                        <courrier>{{$q/emailaddress/text()}}</courrier>
                        <pagePerso>{{$q/homepage/text()}}</pagePerso>
                      </reseau>
                    </coordonnees>
                    <cartePaiement>{{$q/creditcard/text()}}</cartePaiement>
                  </personne>
        RETURN <categorie><id>{{$c/name/text()}}</id>{{$p}}</categorie>
        ''',
        "LET, 12 A/R, lots OT",
        "distinct-values over interests becomes a category-driven join",
    ),
    BenchQuery(
        "x10a",
        f'''
        FOR $c IN document("{DOC}")//category
        LET $p := FOR $q IN document("{DOC}")//person
                  WHERE $q/profile/interest/@category = $c/@id
                  RETURN <personne>
                    <statistiques>
                      <sexe>{{$q/profile/gender/text()}}</sexe>
                      <age>{{$q/profile/age/text()}}</age>
                      <education>{{$q/profile/education/text()}}</education>
                      <revenu>{{$q/profile/@income}}</revenu>
                    </statistiques>
                    <coordonnees>
                      <nom>{{$q/name/text()}}</nom>
                      <rue>{{$q/address/street/text()}}</rue>
                      <ville>{{$q/address/city/text()}}</ville>
                      <pays>{{$q/address/country/text()}}</pays>
                      <reseau>
                        <courrier>{{$q/emailaddress/text()}}</courrier>
                        <pagePerso>{{$q/homepage/text()}}</pagePerso>
                      </reseau>
                    </coordonnees>
                    <cartePaiement>{{$q/creditcard/text()}}</cartePaiement>
                  </personne>
        WHERE $c/@id = "category0"
        RETURN <categorie><id>{{$c/name/text()}}</id>{{$p}}</categorie>
        ''',
        "LET, 12 A/R, few OT",
        "x10 with a highly selective filter, as in the paper",
    ),
    BenchQuery(
        "x11",
        f'''
        FOR $p IN document("{DOC}")//person
        LET $l := FOR $i IN document("{DOC}")//open_auction
                  WHERE $p/profile/@income > $i/initial
                  RETURN <it/>
        RETURN <items name={{$p/name/text()}}>{{count($l)}}</items>
        ''',
        "count, LET, lots OT",
        "the 5000-times-initial arithmetic is dropped; the theta join stays",
    ),
    BenchQuery(
        "x12",
        f'''
        FOR $p IN document("{DOC}")//person
        LET $l := FOR $i IN document("{DOC}")//open_auction
                  WHERE $p/profile/@income > $i/initial
                  RETURN <it/>
        WHERE $p/profile/@income > 150000
        RETURN <items person={{$p/name/text()}}>{{count($l)}}</items>
        ''',
        "count, LET, avg OT",
    ),
    BenchQuery(
        "x13",
        f'''
        FOR $i IN document("{DOC}")/site/regions/australia/item
        RETURN <item name={{$i/name/text()}}>{{$i/description}}</item>
        ''',
        "2 A/R, avg OT",
    ),
    BenchQuery(
        "x14",
        f'''
        FOR $i IN document("{DOC}")//item
        WHERE contains($i//keyword, "gold")
        RETURN <out>{{$i/name/text()}}</out>
        ''',
        "'//', contains on desc",
        "contains() applied to descendant keywords (short generated "
        "keywords make it equivalent to equality)",
    ),
    BenchQuery(
        "x15",
        f'''
        FOR $a IN document("{DOC}")/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/text/keyword
        RETURN $a
        ''',
        "long path, return $var",
    ),
    BenchQuery(
        "x16",
        f'''
        FOR $a IN document("{DOC}")/site/closed_auctions/closed_auction
        WHERE $a/annotation/description/parlist/listitem/text/keyword = "gold"
        RETURN <person id={{$a/seller/@person}}/>
        ''',
        "long path, 1 A/R",
    ),
    BenchQuery(
        "x17",
        f'''
        FOR $p IN document("{DOC}")//person
        WHERE $p/profile/gender = "female"
        RETURN <out>{{$p/name/text()}}</out>
        ''',
        "1 A/R, lots OT",
        "empty(homepage) negation replaced by a low-selectivity predicate",
    ),
    BenchQuery(
        "x18",
        f'''
        FOR $i IN document("{DOC}")//open_auction
        WHERE $i/reserve > 100
        RETURN <r>{{$i/reserve/text()}}</r>
        ''',
        "1 A/R, lots OT",
        "the currency conversion function is dropped",
    ),
    BenchQuery(
        "x19",
        f'''
        FOR $b IN document("{DOC}")//item
        ORDER BY $b/location Ascending
        RETURN <item name={{$b/name/text()}}><loc>{{$b/location/text()}}</loc></item>
        ''',
        "//, 2 A/R, sort, lots OT",
    ),
    BenchQuery(
        "x20",
        f'''
        FOR $s IN document("{DOC}")/site/people
        RETURN <result>
          <p>{{count($s//person)}}</p>
          <i>{{count($s//interest)}}</i>
          <w>{{count($s//watch)}}</w>
          <e>{{count($s//emailaddress)}}</e>
        </result>
        ''',
        "4 counts",
        "income-bracket partitioning becomes four disjoint counts",
    ),
    BenchQuery(
        "Q1",
        f'''
        FOR $p IN document("{DOC}")//person
        FOR $o IN document("{DOC}")//open_auction
        WHERE count($o/bidder) > 5 AND $p/age > 25
          AND $p/@id = $o/bidder//@person
        RETURN <person name={{$p/name/text()}}> $o/bidder </person>
        ''',
        "'//', J, count, 2 A/R",
        "the paper's running example, verbatim ($p/age resolves under "
        "profile via the // fallback below)",
    ),
    BenchQuery(
        "Q2",
        f'''
        FOR $p IN document("{DOC}")//person
        LET $a := FOR $o IN document("{DOC}")//open_auction
                  WHERE count($o/bidder) > 5
                    AND $p/@id = $o/bidder//@person
                  RETURN <myauction> {{$o/bidder}}
                         <myquan>{{$o/quantity/text()}}</myquan>
                         </myauction>
        WHERE $p/age > 25
          AND EVERY $i IN $a/myquan SATISFIES $i > 2
        RETURN <person name={{$p/name/text()}}>{{$a/bidder}}</person>
        ''',
        "//, J, count, 2 A/R, LET",
        "the paper's nested running example, verbatim",
    ),
]

# Q1/Q2 write "$p/age" although age sits under profile in XMark; the paper
# uses the same shorthand.  Rewrite those steps to descendant steps so the
# queries mean what the paper intends.
for _query in _QUERIES:
    if _query.name in ("Q1", "Q2"):
        object.__setattr__(
            _query, "text", _query.text.replace("$p/age", "$p//age")
        )

QUERIES: Dict[str, BenchQuery] = {q.name: q for q in _QUERIES}

#: Paper ordering of Figure 15 rows.
FIGURE15_ORDER = [
    "x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9", "x10",
    "x11", "x12", "x13", "x14", "x15", "x16", "x17", "x18", "x19", "x20",
    "Q1", "Q2", "x10a",
]

#: Queries the Flatten / Shadow-Illuminate rewrites apply to (Figure 16).
FIGURE16_QUERIES = ["x3", "x5", "Q1", "Q2"]

#: Queries plotted in the scalability experiment (Figure 17).
FIGURE17_QUERIES = ["x3", "x5", "x13", "Q1", "Q2"]


def query(name: str) -> BenchQuery:
    """Look up one benchmark query by name."""
    return QUERIES[name]
