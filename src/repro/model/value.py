"""Untyped-atomic value semantics for XML content.

XML text content is untyped.  The paper's queries compare content both
numerically (``$p/age > 25``) and as strings (``@id = @person``), so this
module centralises the coercion and comparison rules used by every engine in
the reproduction (TLC, TAX, GTP and the navigational baseline), guaranteeing
that all four agree on predicate semantics.

Rules (untyped-atomic, XPath 1.0 flavoured):

* If *both* operands parse as numbers, compare numerically.
* Otherwise compare the raw strings (Python string ordering).
* ``None`` (a node without content) never satisfies any comparison.
"""

from __future__ import annotations

import operator
from typing import Callable, Optional, Union

Atomic = Union[str, int, float]

#: Comparison operators accepted by the Figure 5 grammar, plus
#: ``contains`` (substring test — the XMark x14 function, supported as an
#: extension across all four engines).
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=", "contains")

_PY_OPS: dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "contains": lambda left, right: str(right) in str(left),
}


def coerce_number(text: Atomic) -> Optional[float]:
    """Return ``text`` as a float if it looks numeric, else ``None``.

    Accepts integers, decimals and scientific notation with surrounding
    whitespace; rejects empty strings and non-numeric junk.
    """
    if isinstance(text, (int, float)):
        return float(text)
    if text is None:
        return None
    stripped = text.strip()
    if not stripped:
        return None
    try:
        number = float(stripped)
    except ValueError:
        return None
    if number != number:  # NaN breaks comparison trichotomy: treat the
        return None       # literal text "nan" as a plain string
    return number


def compare(left: Optional[Atomic], op: str, right: Optional[Atomic]) -> bool:
    """Compare two atomic values under untyped-atomic semantics.

    ``left`` and ``right`` may be strings (raw XML content), numbers, or
    ``None`` (absent content).  Absent content fails every comparison,
    including ``!=`` — a missing value is "unknown", not "different".

    >>> compare("25", ">", 20)
    True
    >>> compare("person12", "=", "person12")
    True
    >>> compare(None, "=", "x")
    False
    """
    if op not in _PY_OPS:
        raise ValueError(f"unknown comparison operator: {op!r}")
    if left is None or right is None:
        return False
    if op == "contains":
        return _PY_OPS[op](str(left), str(right))
    left_num = coerce_number(left)
    right_num = coerce_number(right)
    if left_num is not None and right_num is not None:
        return _PY_OPS[op](left_num, right_num)
    return _PY_OPS[op](str(left), str(right))


def atomize(value: Optional[Atomic]) -> Optional[Atomic]:
    """Normalise a value for duplicate-elimination and sort keys.

    Numbers and numeric strings collapse to floats so that ``"07"`` and
    ``"7.0"`` are duplicates; other strings pass through unchanged.
    """
    if value is None:
        return None
    number = coerce_number(value)
    if number is not None:
        return number
    return str(value)


def sort_key(value: Optional[Atomic]) -> tuple:
    """Total-order sort key over heterogeneous atomic values.

    Orders ``None`` first, then numbers, then strings, so that ``ORDER BY``
    never raises on mixed content.
    """
    if value is None:
        return (0, 0.0, "")
    number = coerce_number(value)
    if number is not None:
        return (1, number, "")
    return (2, 0.0, str(value))
