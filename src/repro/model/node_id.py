"""Node identifiers: interval encoding plus temporary ids.

Section 5.1 of the paper lists four properties a node identifier must
satisfy:

1. uniqueness,
2. structural-relationship testing (for structural joins),
3. absolute document order within a tree,
4. sortability within all nodes of the same logical class.

Stored nodes use the classic ``(doc, start, end, level)`` interval encoding,
which satisfies all four.  *Temporary* nodes created during query execution
(join roots, constructed elements) only need properties 1 and 4 — the paper's
key observation that avoids renumbering in-memory trees ("Dynamic-Intervals"
style) — so they carry a monotonically increasing sequence number instead.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Tuple, Union


@dataclass(frozen=True)
class NodeId:
    """Interval-encoded identifier of a node stored in the database.

    ``start`` and ``end`` delimit the node's extent in document order:
    node *a* is an ancestor of *b* iff ``a.start < b.start`` and
    ``b.end < a.end`` (within the same document).  ``level`` is the depth
    from the document root (root = 0) and turns ancestor tests into
    parent tests.
    """

    doc: int
    start: int
    end: int
    level: int

    def contains(self, other: "NodeId") -> bool:
        """True iff ``self`` is a proper ancestor of ``other``."""
        return (
            self.doc == other.doc
            and self.start < other.start
            and other.end < self.end
        )

    def is_parent_of(self, other: "NodeId") -> bool:
        """True iff ``self`` is the parent of ``other``."""
        return self.contains(other) and other.level == self.level + 1

    def precedes(self, other: "NodeId") -> bool:
        """True iff ``self`` comes before ``other`` in document order.

        An ancestor precedes its descendants (the same convention the paper
        uses for assigning node ids: "The same holds for element A
        containing B", footnote 4).
        """
        return (self.doc, self.start) < (other.doc, other.start)

    @property
    def order_key(self) -> Tuple[int, int, int]:
        """Sort key implementing Properties 3 and 4 for stored nodes.

        Stored nodes sort before all temporary nodes (group 0).
        """
        return (0, self.doc, self.start)


@dataclass(frozen=True)
class TempId:
    """Identifier of a temporary node created during query execution.

    Satisfies Property 1 (unique) and Property 4 (nodes of one logical class
    are sortable by creation order), but deliberately *not* Properties 2 and
    3 — temporary nodes are not part of any stored document.
    """

    seq: int

    @property
    def order_key(self) -> Tuple[int, int, int]:
        """Sort key: temporary nodes order after stored nodes, by creation."""
        return (1, 0, self.seq)


AnyNodeId = Union[NodeId, TempId]


class TempIdAllocator:
    """Thread-safe allocator of :class:`TempId` values.

    A single process-wide allocator (``DEFAULT_TEMP_IDS``) backs normal
    execution; tests may construct private allocators for deterministic ids.
    """

    def __init__(self) -> None:
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def next(self) -> TempId:
        """Allocate a fresh temporary id.

        Lockless: ``next()`` on :func:`itertools.count` is atomic in
        CPython, and id allocation is hot enough (one per constructed
        tree node) for lock overhead to show up in profiles.  The lock
        still guards :meth:`reset`, which swaps the counter object.
        """
        return TempId(next(self._counter))

    def reset(self) -> None:
        """Restart numbering from zero (test isolation only)."""
        with self._lock:
            self._counter = itertools.count()


DEFAULT_TEMP_IDS = TempIdAllocator()


def new_temp_id() -> TempId:
    """Allocate a temporary id from the process-wide allocator."""
    return DEFAULT_TEMP_IDS.next()


def structurally_related(
    ancestor: AnyNodeId, descendant: AnyNodeId, axis: str
) -> bool:
    """Test the structural relationship required by a pattern edge.

    ``axis`` is ``"pc"`` (parent-child) or ``"ad"`` (ancestor-descendant).
    Temporary ids carry no structural information (Property 2 waived), so
    any test involving one is False — in-memory structure must be consulted
    instead, which is exactly what logical classes are for.
    """
    if not isinstance(ancestor, NodeId) or not isinstance(descendant, NodeId):
        return False
    if axis == "pc":
        return ancestor.is_parent_of(descendant)
    if axis == "ad":
        return ancestor.contains(descendant)
    raise ValueError(f"unknown axis: {axis!r}")
