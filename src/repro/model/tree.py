"""In-memory result trees with logical-class membership.

Intermediate results in every engine of this reproduction are *sequences of
trees*.  Each tree node carries:

* ``tag``   — element name; attribute nodes use the ``@name`` convention,
* ``value`` — the node's atomic text content (or ``None``),
* ``nid``   — its identifier: a stored :class:`~repro.model.node_id.NodeId`
  for database nodes, a :class:`~repro.model.node_id.TempId` for nodes
  created during execution (join roots, constructed elements),
* ``lcls``  — the set of Logical Class Labels the node belongs to
  (Definition 4; a node may be marked by more than one class),
* ``shadowed`` — visibility flag used by the Shadow/Illuminate operators
  (Section 4.3): a shadowed node remains a member of its logical classes but
  is invisible to every operator except Illuminate.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .node_id import AnyNodeId, new_temp_id
from .value import Atomic


class TNode:
    """A node of an in-memory result tree."""

    __slots__ = ("tag", "value", "nid", "children", "lcls", "shadowed")

    def __init__(
        self,
        tag: str,
        value: Optional[Atomic] = None,
        nid: Optional[AnyNodeId] = None,
        lcls: Optional[Iterable[int]] = None,
    ) -> None:
        self.tag = tag
        self.value = value
        self.nid: AnyNodeId = nid if nid is not None else new_temp_id()
        self.children: List["TNode"] = []
        self.lcls: set = set(lcls) if lcls else set()
        self.shadowed = False

    # ------------------------------------------------------------------
    # structure manipulation
    # ------------------------------------------------------------------
    def add_child(self, child: "TNode") -> "TNode":
        """Append ``child`` and return it (for chaining)."""
        self.children.append(child)
        return child

    def add_children(self, children: Iterable["TNode"]) -> None:
        """Append every tree node in ``children`` in order."""
        self.children.extend(children)

    def remove_child(self, child: "TNode") -> None:
        """Remove ``child`` by identity."""
        self.children = [c for c in self.children if c is not child]

    def visible_children(self) -> List["TNode"]:
        """Children that are not shadowed."""
        return [c for c in self.children if not c.shadowed]

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def walk(self, include_shadowed: bool = False) -> Iterator["TNode"]:
        """Pre-order traversal of this subtree.

        Shadowed nodes (and their entire subtrees) are skipped unless
        ``include_shadowed`` is set — mirroring the paper's rule that a
        shadowed node "is not visible to any operator other than
        illuminate".
        """
        if self.shadowed and not include_shadowed:
            return
        stack = [self]
        while stack:
            node = stack.pop()
            if node.shadowed and not include_shadowed and node is not self:
                continue
            yield node
            stack.extend(reversed(node.children))

    def find(
        self, want: Callable[["TNode"], bool], include_shadowed: bool = False
    ) -> List["TNode"]:
        """All nodes in this subtree satisfying ``want``, in document order."""
        return [n for n in self.walk(include_shadowed) if want(n)]

    def parent_map(self, include_shadowed: bool = True) -> Dict[int, "TNode"]:
        """Map ``id(child) -> parent`` over this subtree."""
        mapping: Dict[int, TNode] = {}
        for node in self.walk(include_shadowed=include_shadowed):
            for child in node.children:
                mapping[id(child)] = node
        return mapping

    # ------------------------------------------------------------------
    # copying and equality
    # ------------------------------------------------------------------
    def clone(self) -> "TNode":
        """Deep copy preserving node ids, classes and shadow flags."""
        copy = TNode(self.tag, self.value, self.nid, self.lcls)
        copy.shadowed = self.shadowed
        copy.children = [child.clone() for child in self.children]
        return copy

    def canonical(self, by_content: bool = True) -> Tuple:
        """Hashable canonical form for duplicate elimination and testing.

        With ``by_content`` the form is ``(tag, value, children...)``; node
        identity is ignored.  Without it the node id participates, matching
        the ``ci`` parameter of the Duplicate-Elimination operator.
        Shadowed nodes are excluded (invisible to the operator).
        """
        kids = tuple(
            c.canonical(by_content) for c in self.children if not c.shadowed
        )
        if by_content:
            return (self.tag, self.value, kids)
        return (self.tag, self.value, self.nid, kids)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def to_xml(self) -> str:
        """Serialise this subtree to a compact XML string.

        ``@name`` children render as attributes; shadowed nodes are omitted.
        Intended for examples and tests — the storage layer owns the real
        serialiser.
        """
        if self.tag.startswith("@"):
            return ""
        attrs = "".join(
            ' {}="{}"'.format(
                c.tag[1:],
                _escape(str(c.value)) if c.value is not None else "",
            )
            for c in self.children
            if c.tag.startswith("@") and not c.shadowed
        )
        inner = "".join(
            c.to_xml()
            for c in self.children
            if not c.tag.startswith("@") and not c.shadowed
        )
        text = _escape(str(self.value)) if self.value is not None else ""
        body = f"{text}{inner}"
        if not body:
            return f"<{self.tag}{attrs}/>"
        return f"<{self.tag}{attrs}>{body}</{self.tag}>"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        lcl = f" lcls={sorted(self.lcls)}" if self.lcls else ""
        shadow = " shadowed" if self.shadowed else ""
        return f"<TNode {self.tag}={self.value!r}{lcl}{shadow}>"


def _escape(text: str) -> str:
    """Escape XML special characters in text and attribute content."""
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


class XTree:
    """A single tree of an intermediate result, with its LC index.

    The logical-class index (``LCL -> [nodes]``) is derived lazily from node
    markings and cached; operators that perform structural surgery call
    :meth:`invalidate` (or construct a fresh ``XTree``).
    """

    __slots__ = ("root", "_lc_index", "_lc_index_shadowed", "_saw_shadowed")

    def __init__(self, root: TNode) -> None:
        self.root = root
        self._lc_index: Optional[Dict[int, List[TNode]]] = None
        self._lc_index_shadowed: Optional[Dict[int, List[TNode]]] = None
        #: True/False once a visible-index build observed (or ruled out)
        #: shadowed nodes; None while unknown.  Lets shadow-free trees
        #: serve shadow-inclusive probes from the visible index.
        self._saw_shadowed: Optional[bool] = None

    def invalidate(self) -> None:
        """Drop the cached LC index after structural modification."""
        self._lc_index = None
        self._lc_index_shadowed = None
        self._saw_shadowed = None

    def _build_index(self, include_shadowed: bool) -> Dict[int, List[TNode]]:
        # the walk is inlined: index building is the hottest whole-tree
        # traversal in the system and generator overhead is measurable
        index: Dict[int, List[TNode]] = {}
        root = self.root
        saw_shadowed = root.shadowed
        if root.shadowed and not include_shadowed:
            self._saw_shadowed = True
            return index
        stack = [root]
        while stack:
            node = stack.pop()
            if node.shadowed:
                saw_shadowed = True
                if not include_shadowed and node is not root:
                    continue
            for lcl in node.lcls:
                index.setdefault(lcl, []).append(node)
            stack.extend(reversed(node.children))
        if include_shadowed:
            self._saw_shadowed = saw_shadowed
        else:
            # the visible walk skips shadowed *subtrees*, but it still
            # sees each skipped subtree's root, so the flag is exact
            self._saw_shadowed = saw_shadowed
        return index

    def nodes_in_class(
        self, lcl: int, include_shadowed: bool = False
    ) -> List[TNode]:
        """All (visible) nodes belonging to logical class ``lcl``.

        Base data carries no class markings, so unknown classes map to the
        empty set — exactly the paper's convention ("When no logical class
        information exists in a tree we assume the class maps to the empty
        set").
        """
        return list(self.class_nodes(lcl, include_shadowed))

    def class_nodes(
        self, lcl: int, include_shadowed: bool = False
    ) -> Sequence[TNode]:
        """Borrowed read-only view of a class's member list.

        Unlike :meth:`nodes_in_class` this returns the index's own list
        without copying — callers must not mutate it.  Index lists may
        be shared between trees that share structure, so mutation would
        corrupt more than this tree.  A shadow-inclusive probe on a
        tree known to be shadow-free is answered from the visible index
        (the two are identical then).
        """
        if include_shadowed:
            if self._lc_index_shadowed is not None:
                return self._lc_index_shadowed.get(lcl, ())
            if self._lc_index is not None and self._saw_shadowed is False:
                return self._lc_index.get(lcl, ())
            self._lc_index_shadowed = self._build_index(True)
            return self._lc_index_shadowed.get(lcl, ())
        if self._lc_index is None:
            self._lc_index = self._build_index(False)
        return self._lc_index.get(lcl, ())

    def singleton(self, lcl: int, operator: str) -> TNode:
        """The unique node of class ``lcl``; raises CardinalityError else."""
        from ..errors import CardinalityError

        nodes = self.nodes_in_class(lcl)
        if len(nodes) != 1:
            raise CardinalityError(lcl, len(nodes), operator)
        return nodes[0]

    def clone(self) -> "XTree":
        """Deep copy of the tree (ids, classes and shadow flags preserved)."""
        return XTree(self.root.clone())

    @property
    def order_key(self) -> Tuple[int, int, int]:
        """Document-order key of the tree (its root's id order)."""
        return self.root.nid.order_key

    def canonical(self, by_content: bool = True) -> Tuple:
        """Hashable canonical form of the whole tree."""
        return self.root.canonical(by_content)

    def to_xml(self) -> str:
        """Serialise the tree to XML (see :meth:`TNode.to_xml`)."""
        return self.root.to_xml()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<XTree root={self.root.tag}>"
