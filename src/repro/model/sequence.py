"""Sequences of trees — the currency of every algebra operator.

Every TLC operator "maps one or more sets of trees to one set of trees"
(Section 2.3).  We model the sets as ordered sequences because XQuery
requires document order on output; :class:`TreeSequence` provides the small
set of bulk helpers the operators share.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional

from .tree import TNode, XTree


class TreeSequence:
    """An ordered sequence of :class:`~repro.model.tree.XTree`.

    Thin wrapper over a list: iteration, indexing and length behave as for
    lists, plus ordering helpers used by the physical operators.
    """

    __slots__ = ("trees", "trace")

    def __init__(self, trees: Optional[Iterable[XTree]] = None) -> None:
        self.trees: List[XTree] = list(trees) if trees is not None else []
        #: execution trace attached by ``Engine.run(..., trace=True)``
        #: (a :class:`repro.trace.PlanTrace`); ``None`` otherwise
        self.trace = None

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[XTree]:
        return iter(self.trees)

    def __len__(self) -> int:
        return len(self.trees)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TreeSequence(self.trees[index])
        return self.trees[index]

    def __bool__(self) -> bool:
        return bool(self.trees)

    def append(self, tree: XTree) -> None:
        """Append one tree."""
        self.trees.append(tree)

    def extend(self, trees: Iterable[XTree]) -> None:
        """Append every tree of ``trees`` in order."""
        self.trees.extend(trees)

    # ------------------------------------------------------------------
    # bulk helpers
    # ------------------------------------------------------------------
    def sorted_by_root(self) -> "TreeSequence":
        """New sequence sorted in document order of the tree roots.

        This is the cheap "sort on node id" step of the paper's
        sort-merge-sort join strategy (Section 5.1) that re-establishes
        document order after a value join.
        """
        return TreeSequence(sorted(self.trees, key=lambda t: t.order_key))

    def sorted_by(self, key: Callable[[XTree], object]) -> "TreeSequence":
        """New sequence sorted by an arbitrary key (stable)."""
        return TreeSequence(sorted(self.trees, key=key))

    def map_trees(
        self, transform: Callable[[XTree], Optional[XTree]]
    ) -> "TreeSequence":
        """New sequence of ``transform(tree)`` results, dropping ``None``."""
        out = TreeSequence()
        for tree in self.trees:
            result = transform(tree)
            if result is not None:
                out.append(result)
        return out

    def roots(self) -> List[TNode]:
        """The root nodes of all trees, in sequence order."""
        return [tree.root for tree in self.trees]

    def canonical(self, by_content: bool = True) -> tuple:
        """Hashable canonical form of the whole sequence (for tests)."""
        return tuple(tree.canonical(by_content) for tree in self.trees)

    def to_xml(self) -> str:
        """Serialise every tree, newline separated (for examples/tests)."""
        return "\n".join(tree.to_xml() for tree in self.trees)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TreeSequence n={len(self.trees)}>"
