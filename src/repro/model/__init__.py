"""Data model: atomic values, node identifiers, result trees, sequences."""

from .node_id import (
    AnyNodeId,
    NodeId,
    TempId,
    TempIdAllocator,
    new_temp_id,
    structurally_related,
)
from .sequence import TreeSequence
from .tree import TNode, XTree
from .value import COMPARISON_OPS, atomize, coerce_number, compare, sort_key

__all__ = [
    "AnyNodeId",
    "NodeId",
    "TempId",
    "TempIdAllocator",
    "new_temp_id",
    "structurally_related",
    "TreeSequence",
    "TNode",
    "XTree",
    "COMPARISON_OPS",
    "atomize",
    "coerce_number",
    "compare",
    "sort_key",
]
