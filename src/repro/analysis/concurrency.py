"""Pass 1 — concurrency lint (CC1xx) over the package sources.

A stdlib-``ast`` analyzer that flags the shared-mutable-state patterns a
move from a thread pool to a process pool (or simply more threads) turns
into bugs:

* **CC101** — a module global rebound via ``global X`` with no lock held;
* **CC102** — an instance attribute written outside ``__init__`` and
  outside a held-lock scope, in the *shared-scope* modules
  (``repro.service`` / ``repro.telemetry``) whose objects are touched by
  many threads;
* **CC103** — two code paths that acquire the same pair of locks in
  opposite nesting orders;
* **CC104** — check-then-set lazy initialisation of an attribute
  (``if self._x is None: self._x = ...``) with no lock held;
* **CC105** — a module-level mutable container mutated from function
  scope with no lock held.

Lock recognition is lexical and deliberately generous: any ``with``
context expression whose source text contains ``lock`` counts — that
covers ``with self._lock:``, the sharded ``with self._locks[i]:`` and
``with cell.lock:`` idioms, and ``with _state_lock:`` module locks.
A method whose name ends in ``_locked`` declares "caller holds the
lock" and is analyzed as if a lock were held (the convention the
intraprocedural analysis needs for helpers called under a lock).
The analyzer never imports the analyzed code.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from .findings import (
    GLOBAL_MUTATION,
    GLOBAL_REBIND,
    LOCK_ORDER_CYCLE,
    UNGUARDED_ATTR_WRITE,
    UNSAFE_LAZY_INIT,
    CheckFinding,
)

#: Methods whose attribute writes are construction, not shared mutation.
_CONSTRUCTORS = frozenset(
    {"__init__", "__new__", "__post_init__", "__setstate__"}
)

#: Container-mutating method names (CC105).
_MUTATORS = frozenset(
    {
        "append", "add", "update", "pop", "popitem", "clear", "extend",
        "insert", "remove", "discard", "setdefault", "appendleft",
    }
)

#: An observed nested lock acquisition: (location, line, function).
LockEdge = Tuple[str, int, str]
LockEdges = Dict[Tuple[str, str], LockEdge]


def _lockish(expr: ast.expr) -> Optional[str]:
    """The normalized lock name if ``expr`` looks like a lock, else None.

    The name is the last attribute/identifier component (``self._lock``
    and ``other._lock`` are the *same* lock class for ordering purposes;
    sharded ``self._locks[i]`` normalizes to ``_locks``).
    """
    node = expr
    if isinstance(node, ast.Call):  # with lock: not with lock.acquire()
        return None
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return None
    return name if "lock" in name.lower() else None


def _is_self_attr(node: ast.expr) -> Optional[str]:
    """``self.X`` (or ``self.X[...]``) write target -> attribute name."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _ModuleLint:
    """One module's walk; accumulates findings and lock-order edges."""

    def __init__(
        self, location: str, shared_attrs: bool, edges: LockEdges
    ) -> None:
        self.location = location
        self.shared_attrs = shared_attrs
        self.edges = edges
        self.findings: List[CheckFinding] = []
        self.mutable_globals: set = set()
        self.class_stack: List[str] = []
        self.func_stack: List[str] = []
        self.global_decls: List[set] = []
        self.lock_stack: List[str] = []

    # -- context helpers ------------------------------------------------
    def _symbol(self, suffix: str) -> str:
        parts = self.class_stack + self.func_stack
        return ".".join(parts) + (f":{suffix}" if suffix else "")

    def _report(self, code: str, suffix: str, message: str, line: int):
        self.findings.append(
            CheckFinding(
                code=code,
                location=self.location,
                symbol=self._symbol(suffix),
                message=message,
                line=line,
            )
        )

    @property
    def _locked(self) -> bool:
        if self.lock_stack:
            return True
        # the caller-holds-the-lock naming convention
        return bool(self.func_stack) and self.func_stack[-1].endswith(
            "_locked"
        )

    @property
    def _in_constructor(self) -> bool:
        return bool(self.func_stack) and (
            self.func_stack[-1] in _CONSTRUCTORS
        )

    # -- the walk -------------------------------------------------------
    def run(self, tree: ast.Module) -> List[CheckFinding]:
        for stmt in tree.body:
            self._collect_module_global(stmt)
        for stmt in tree.body:
            self.visit(stmt)
        return self.findings

    def _collect_module_global(self, stmt: ast.stmt) -> None:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        mutable = isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp)
        ) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("list", "dict", "set", "deque",
                                  "defaultdict", "OrderedDict")
        )
        if not mutable:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self.mutable_globals.add(target.id)

    def visit(self, node: ast.AST) -> None:
        handler = getattr(
            self, f"_visit_{type(node).__name__}", self._generic
        )
        handler(node)

    def _generic(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def _visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        for child in node.body:
            self.visit(child)
        self.class_stack.pop()

    def _visit_FunctionDef(self, node) -> None:
        self.func_stack.append(node.name)
        self.global_decls.append(set())
        # a nested function body runs later: locks held at the point of
        # its *definition* are not held when it executes
        held, self.lock_stack = self.lock_stack, []
        for child in node.body:
            self.visit(child)
        self.lock_stack = held
        self.global_decls.pop()
        self.func_stack.pop()

    _visit_AsyncFunctionDef = _visit_FunctionDef

    def _visit_Global(self, node: ast.Global) -> None:
        if self.global_decls:
            self.global_decls[-1].update(node.names)

    def _visit_With(self, node: ast.With) -> None:
        acquired = []
        for item in node.items:
            name = _lockish(item.context_expr)
            if name is not None:
                acquired.append(name)
        for inner in acquired:
            for outer in self.lock_stack:
                if outer != inner:
                    self.edges.setdefault(
                        (outer, inner),
                        (
                            self.location,
                            node.lineno,
                            self._symbol(""),
                        ),
                    )
        self.lock_stack.extend(acquired)
        for child in node.body:
            self.visit(child)
        if acquired:
            del self.lock_stack[-len(acquired):]

    _visit_AsyncWith = _visit_With

    def _declared_global(self, name: str) -> bool:
        return bool(self.global_decls) and name in self.global_decls[-1]

    def _check_write(self, target: ast.expr, line: int) -> None:
        if isinstance(target, ast.Tuple):
            for element in target.elts:
                self._check_write(element, line)
            return
        if isinstance(target, ast.Name):
            if self._declared_global(target.id) and not self._locked:
                self._report(
                    GLOBAL_REBIND,
                    target.id,
                    f"module global {target.id!r} rebound with no lock "
                    "held",
                    line,
                )
            return
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
        if (
            isinstance(target, ast.Subscript)
            and isinstance(base, ast.Name)
            and base.id in self.mutable_globals
            and self.func_stack
            and not self._locked
        ):
            self._report(
                GLOBAL_MUTATION,
                base.id,
                f"module-level container {base.id!r} mutated with no "
                "lock held",
                line,
            )
            return
        if not self.shared_attrs:
            return
        attr = _is_self_attr(target)
        if (
            attr is not None
            and self.func_stack
            and not self._in_constructor
            and not self._locked
        ):
            self._report(
                UNGUARDED_ATTR_WRITE,
                attr,
                f"write to self.{attr} outside a held-lock scope",
                line,
            )

    def _visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_write(target, node.lineno)
        self.visit(node.value)

    def _visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write(node.target, node.lineno)
        self.visit(node.value)

    def _visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_write(node.target, node.lineno)
            self.visit(node.value)

    def _visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.mutable_globals
            and func.attr in _MUTATORS
            and self.func_stack
            and not self._locked
        ):
            self._report(
                GLOBAL_MUTATION,
                func.value.id,
                f"module-level container {func.value.id!r} mutated via "
                f".{func.attr}() with no lock held",
                node.lineno,
            )
        self._generic(node)

    def _visit_If(self, node: ast.If) -> None:
        attr = self._lazy_init_attr(node)
        if (
            attr is not None
            and self.func_stack
            and not self._in_constructor
            and not self._locked
        ):
            self._report(
                UNSAFE_LAZY_INIT,
                attr,
                f"lazy initialisation of self.{attr} is check-then-set "
                "with no lock held",
                node.lineno,
            )
        self._generic(node)

    @staticmethod
    def _lazy_init_attr(node: ast.If) -> Optional[str]:
        """``if self.X is None: ... self.X = ...`` -> ``X``."""
        test = node.test
        attr = None
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            attr = _is_self_attr(test.left)
        elif isinstance(test, ast.UnaryOp) and isinstance(
            test.op, ast.Not
        ):
            attr = _is_self_attr(test.operand)
        if attr is None:
            return None
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if _is_self_attr(target) == attr:
                        return attr
        return None


def order_violations(edges: LockEdges) -> List[CheckFinding]:
    """CC103 findings: lock pairs acquired in both orders."""
    findings = []
    for (outer, inner), (location, line, symbol) in sorted(edges.items()):
        if outer < inner and (inner, outer) in edges:
            other = edges[(inner, outer)]
            findings.append(
                CheckFinding(
                    code=LOCK_ORDER_CYCLE,
                    location=location,
                    symbol=f"{outer}<->{inner}",
                    message=(
                        f"{symbol or 'module'} acquires {outer!r} then "
                        f"{inner!r}, but {other[2] or 'module'} "
                        f"({other[0]}:{other[1]}) nests them the other "
                        "way around"
                    ),
                    line=line,
                )
            )
    return findings


def lint_source(
    text: str, location: str, shared_attrs: bool = False
) -> List[CheckFinding]:
    """Lint one module's source text (fixture-testing entry point)."""
    edges: LockEdges = {}
    lint = _ModuleLint(location, shared_attrs, edges)
    findings = lint.run(ast.parse(text))
    findings.extend(order_violations(edges))
    return findings


#: Package sub-paths whose classes are shared across service threads —
#: the CC102 scope.
SHARED_SCOPES = ("service", "telemetry")


def lint_paths(
    paths: Iterable[Path],
    package_root: Optional[Path] = None,
) -> List[CheckFinding]:
    """Lint every ``.py`` file under ``paths`` (dirs recurse).

    ``package_root`` anchors the locations stored in findings (so the
    suppression baseline is machine-independent); it defaults to the
    parent of the first path.
    """
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    if package_root is None and files:
        package_root = files[0].parent
    findings: List[CheckFinding] = []
    edges: LockEdges = {}
    for file in files:
        try:
            relative = file.relative_to(package_root)
            location = str(Path(package_root.name) / relative)
        except (ValueError, AttributeError):
            location = file.name
        shared = any(
            scope in file.parts for scope in SHARED_SCOPES
        )
        lint = _ModuleLint(location, shared, edges)
        findings.extend(lint.run(ast.parse(file.read_text())))
    findings.extend(order_violations(edges))
    return findings
