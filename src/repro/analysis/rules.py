"""The diagnostic rules of the LC-flow analyzer.

Each rule checks one invariant the paper's algebra relies on: closed
label references (every consumed class is produced upstream), unique
label allocation, shadow/illuminate pairing, the Flatten nesting
contract of Definition 5, join predicate sidedness, well-formed operator
parameters, and no dead classes.  ``check_operator`` runs per operator
during the bottom-up walk; ``check_plan`` runs once at the end.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .visitor import PlanAnalysis, ProducerConflict

from ..core.aggregate import FUNCTIONS, AggregateOp
from ..core.base import Operator
from ..core.construct import ConstructOp, construct_refs
from ..core.dedup import DedupOp
from ..core.filter import MODES, FilterOp, TreeFilterOp
from ..core.flatten import FlattenOp
from ..core.join import JoinOp
from ..core.select import SelectOp
from ..core.shadow import ShadowOp
from ..core.sort_op import SortOp
from ..core.union import UnionOp
from ..errors import PatternError
from ..model.value import _PY_OPS
from ..patterns.apt import AXES, MSPECS
from .diagnostics import (
    BAD_FLATTEN_SITE,
    DEAD_CLASS,
    DUPLICATE_LABEL,
    JOIN_SIDE_MISMATCH,
    MALFORMED_OPERATOR,
    SHADOWED_REF,
    UNDEFINED_REF,
    Diagnostic,
)
from .environment import LCEnv, merge_union

#: Operator types whose consumption reads member *values or counts*; a
#: shadow-hidden class silently shows them only its one visible member.
#: Join reads hidden members by design (deferred correlation classes),
#: and Project/Select/Construct/Illuminate are structure-aware.
_VALUE_READERS = (
    FilterOp,
    TreeFilterOp,
    AggregateOp,
    SortOp,
    DedupOp,
    FlattenOp,
    UnionOp,
)


def _merged(in_envs: List[LCEnv]) -> LCEnv:
    if not in_envs:
        return LCEnv()
    if len(in_envs) == 1:
        return in_envs[0]
    return merge_union(in_envs)


def check_operator(
    op: Operator, in_envs: List[LCEnv], out: List[Diagnostic]
) -> None:
    """Run all per-operator rules against one operator."""
    from .visitor import describe_op

    where = describe_op(op)
    env = _merged(in_envs)

    def emit(code: str, message: str) -> None:
        out.append(Diagnostic(code, message, where, id(op)))

    _check_malformed(op, emit)

    # --- undefined references (LC101) / join sidedness (LC105) --------
    if isinstance(op, JoinOp):
        _check_join_sides(op, in_envs, emit)
    else:
        for label in sorted(op.lc_consumed()):
            if label == 0:
                emit(
                    MALFORMED_OPERATOR,
                    "label 0 is the unlabelled sentinel and cannot be "
                    "referenced",
                )
            elif op.inputs and not env.has(label):
                emit(
                    UNDEFINED_REF,
                    f"class ({label}) is not produced by any upstream "
                    "operator",
                )

    # --- shadow discipline (LC103) ------------------------------------
    if isinstance(op, _VALUE_READERS):
        for label in sorted(op.lc_consumed() & set(env.shadowed)):
            emit(
                SHADOWED_REF,
                f"class ({label}) is hidden by a Shadow here; reading its "
                "members needs an intervening Illuminate",
            )

    # --- Flatten/Shadow nesting contract (LC104) ----------------------
    if isinstance(op, (FlattenOp, ShadowOp)):
        child = env.info(op.child_lcl)
        if (
            child is not None
            and child.parent_known
            and child.parent_label != op.parent_lcl
        ):
            nested = (
                f"({child.parent_label})"
                if child.parent_label is not None
                else "the tree root"
            )
            emit(
                BAD_FLATTEN_SITE,
                f"class ({op.child_lcl}) nests under {nested}, not under "
                f"({op.parent_lcl}); Definition 5 requires C to map to "
                "children of P",
            )


def _check_join_sides(
    op: JoinOp, in_envs: List[LCEnv], emit: Callable[[str, str], None]
) -> None:
    left = in_envs[0] if in_envs else LCEnv()
    right = in_envs[1] if len(in_envs) > 1 else LCEnv()
    for pred in op.predicates:
        for label, own, other, side in (
            (pred.left_lcl, left, right, "left"),
            (pred.right_lcl, right, left, "right"),
        ):
            if label == 0:
                emit(
                    MALFORMED_OPERATOR,
                    "label 0 is the unlabelled sentinel and cannot be "
                    "joined on",
                )
            elif own.has(label):
                continue
            elif other.has(label):
                emit(
                    JOIN_SIDE_MISMATCH,
                    f"join predicate {pred.describe()} expects class "
                    f"({label}) on its {side} input, but it is produced "
                    "on the other side",
                )
            else:
                emit(
                    UNDEFINED_REF,
                    f"join predicate {pred.describe()} references class "
                    f"({label}), which neither input produces",
                )


def _check_malformed(
    op: Operator, emit: Callable[[str, str], None]
) -> None:
    """LC106: operator parameters outside their legal domains."""
    if isinstance(op, SelectOp):
        try:
            op.apt.validate()
        except PatternError as error:
            emit(MALFORMED_OPERATOR, f"invalid pattern: {error}")
        for node in op.apt.root.walk():
            for edge in node.edges:
                if edge.axis not in AXES:
                    emit(
                        MALFORMED_OPERATOR,
                        f"invalid axis {edge.axis!r} in pattern edge",
                    )
                if edge.mspec not in MSPECS:
                    emit(
                        MALFORMED_OPERATOR,
                        f"invalid matching specification {edge.mspec!r}",
                    )
            for cmp_op, _ in node.test.comparisons:
                if cmp_op not in _PY_OPS:
                    emit(
                        MALFORMED_OPERATOR,
                        f"unknown comparison operator {cmp_op!r} in "
                        "pattern predicate",
                    )
    elif isinstance(op, FilterOp):
        if op.mode not in MODES:
            emit(MALFORMED_OPERATOR, f"unknown filter mode {op.mode!r}")
        if op.predicate.op not in _PY_OPS:
            emit(
                MALFORMED_OPERATOR,
                f"unknown comparison operator {op.predicate.op!r}",
            )
    elif isinstance(op, JoinOp):
        if op.right_mspec not in MSPECS:
            emit(
                MALFORMED_OPERATOR,
                f"invalid join matching specification {op.right_mspec!r}",
            )
        for pred in op.predicates:
            if pred.op not in _PY_OPS:
                emit(
                    MALFORMED_OPERATOR,
                    f"unknown comparison operator {pred.op!r} in join "
                    "predicate",
                )
    elif isinstance(op, AggregateOp):
        if op.fname not in FUNCTIONS:
            emit(
                MALFORMED_OPERATOR,
                f"unknown aggregate function {op.fname!r}",
            )
    elif isinstance(op, DedupOp):
        if op.by not in ("id", "content"):
            emit(MALFORMED_OPERATOR, f"invalid dedup basis {op.by!r}")
        for label, basis in op.bases.items():
            if basis not in ("id", "content"):
                emit(
                    MALFORMED_OPERATOR,
                    f"invalid dedup basis {basis!r} for class ({label})",
                )
    elif isinstance(op, ConstructOp):
        for ref in construct_refs(op.ctree):
            if ref.lcl == 0:
                emit(
                    MALFORMED_OPERATOR,
                    "construct pattern references label 0 (the "
                    "unlabelled sentinel)",
                )


def report_conflicts(
    conflicts: List["ProducerConflict"], out: List[Diagnostic]
) -> None:
    """LC102: render duplicate-producer findings from the transfer pass."""
    from .visitor import describe_op

    seen = set()
    for op, existing, incoming in conflicts:
        key = (id(op), existing.label)
        if key in seen:
            continue
        seen.add(key)
        out.append(
            Diagnostic(
                DUPLICATE_LABEL,
                f"class ({existing.label}) is produced independently by "
                f"[{existing.producer_name}] and [{incoming.producer_name}]"
                "; labels must be unique per plan",
                describe_op(op),
                id(op),
            )
        )


def check_plan(analysis: "PlanAnalysis", out: List[Diagnostic]) -> None:
    """Whole-plan rules that need the complete operator set (LC201)."""
    from .visitor import describe_op

    consumed = set()
    for op in analysis.order:
        consumed |= op.lc_consumed()
    for op in analysis.order:
        if isinstance(op, AggregateOp) and op.new_lcl not in consumed:
            out.append(
                Diagnostic(
                    DEAD_CLASS,
                    f"aggregate result class ({op.new_lcl}) is never "
                    "consumed; the aggregate is dead work",
                    describe_op(op),
                    id(op),
                )
            )
