"""Bottom-up LC-flow analysis over an operator DAG — without executing it.

For every operator the visitor computes the :class:`LCEnv` of its output
edge from the environments of its inputs, using each operator's
``lc_produced()/lc_consumed()`` protocol plus operator-specific transfer
functions that model how labels actually flow (Project drops, Construct
splices, Shadow hides, Join merges).  Shared sub-plans (the plan is a DAG
after the reuse rewrite) are visited once, exactly like the evaluator's
memoisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.aggregate import AggregateOp
from ..core.base import Operator
from ..core.construct import CClassRef, CElement, ConstructOp
from ..core.flatten import FlattenOp
from ..core.join import JoinOp
from ..core.project import ProjectOp
from ..core.select import SelectOp
from ..core.shadow import IlluminateOp, ShadowOp
from ..core.union import UnionOp
from ..patterns.apt import APTNode
from .diagnostics import Diagnostic, Severity
from .environment import ClassInfo, LCEnv, merge_join, merge_union

#: A duplicate-producer finding raised during a transfer:
#: (operator, surviving info, conflicting info).
ProducerConflict = Tuple[Operator, ClassInfo, ClassInfo]


def describe_op(op: Operator) -> str:
    """One-line operator rendering used in diagnostics."""
    params = op.params()
    text = f"{op.name} {params}" if params else op.name
    return text if len(text) <= 96 else text[:93] + "..."


@dataclass
class PlanAnalysis:
    """The result of one analyzer run over a plan."""

    plan: Operator
    env_out: Dict[int, LCEnv] = field(default_factory=dict)
    order: List[Operator] = field(default_factory=list)  # postorder, unique
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def env_of(self, op: Operator) -> LCEnv:
        """The environment on the operator's output edge."""
        return self.env_out[id(op)]

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity is Severity.WARNING
        ]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was reported."""
        return not self.errors


def analyze(plan: Operator) -> PlanAnalysis:
    """Run the full LC-flow analysis over ``plan``."""
    from . import rules  # local import: rules uses this module's helpers

    analysis = PlanAnalysis(plan)
    conflicts: List[ProducerConflict] = []

    def run(op: Operator) -> LCEnv:
        key = id(op)
        if key in analysis.env_out:
            return analysis.env_out[key]
        in_envs = [run(child) for child in op.inputs]
        rules.check_operator(op, in_envs, analysis.diagnostics)
        env = transfer(op, in_envs, conflicts)
        analysis.env_out[key] = env
        analysis.order.append(op)
        return env

    run(plan)
    rules.report_conflicts(conflicts, analysis.diagnostics)
    rules.check_plan(analysis, analysis.diagnostics)
    dedupe_diagnostics(analysis.diagnostics)
    return analysis


def dedupe_diagnostics(diagnostics: List[Diagnostic]) -> None:
    """Drop repeated (code, operator, message) findings in place.

    Shared sub-plans are visited once, but rule passes that pair
    operators (duplicate-producer conflicts, plan-wide checks) can
    reach the same conclusion along several paths of a DAG; reporting
    it once is enough.
    """
    seen = set()
    unique = []
    for diag in diagnostics:
        key = (diag.code, diag.op_id, diag.message)
        if key not in seen:
            seen.add(key)
            unique.append(diag)
    diagnostics[:] = unique


# ----------------------------------------------------------------------
# transfer functions
# ----------------------------------------------------------------------
def transfer(
    op: Operator,
    in_envs: List[LCEnv],
    conflicts: List[ProducerConflict],
) -> LCEnv:
    """Compute the operator's output environment from its inputs."""
    if isinstance(op, SelectOp):
        return _select_env(op, in_envs, conflicts)
    if isinstance(op, AggregateOp):
        return _aggregate_env(op, in_envs, conflicts)
    if isinstance(op, JoinOp):
        return _join_env(op, in_envs, conflicts)
    if isinstance(op, ProjectOp):
        return _project_env(op, in_envs)
    if isinstance(op, ConstructOp):
        return _construct_env(op, in_envs, conflicts)
    if isinstance(op, ShadowOp):
        env = _merged(in_envs).copy()
        env.shadowed = env.shadowed | {op.child_lcl}
        return env
    if isinstance(op, IlluminateOp):
        env = _merged(in_envs).copy()
        env.shadowed = env.shadowed - {op.lcl}
        return env
    if isinstance(op, (FlattenOp, UnionOp)):
        return _merged(in_envs)
    # Filter, TreeFilter, Dedup, Sort and any op outside the core algebra:
    # pass the input environment through, adding whatever the protocol
    # declares as produced (conservative for unknown operators).
    env = _merged(in_envs)
    produced = op.lc_produced()
    if not produced:
        return env
    env = env.copy()
    for label in produced:
        _add(
            env,
            ClassInfo(label, id(op), describe_op(op), "unknown"),
            op,
            conflicts,
        )
    return env


def _merged(in_envs: List[LCEnv]) -> LCEnv:
    if not in_envs:
        return LCEnv()
    if len(in_envs) == 1:
        return in_envs[0]
    return merge_union(in_envs)


def _add(
    env: LCEnv,
    info: ClassInfo,
    op: Operator,
    conflicts: List[ProducerConflict],
) -> None:
    existing = env.classes.get(info.label)
    if existing is not None and existing.producer != info.producer:
        conflicts.append((op, existing, info))
    env.classes[info.label] = info


def _select_env(
    op: SelectOp, in_envs: List[LCEnv], conflicts: List[ProducerConflict]
) -> LCEnv:
    env = _merged(in_envs).copy()
    name = describe_op(op)

    def visit(
        node: APTNode, parent: Optional[int], parent_known: bool
    ) -> None:
        if node.lc_ref is not None:
            # reference node: produces nothing, anchors its children
            for edge in node.edges:
                visit(edge.child, node.lc_ref, True)
            return
        if node.lcl:
            _add(
                env,
                ClassInfo(
                    node.lcl,
                    id(op),
                    name,
                    "select",
                    tag=node.test.tag,
                    parent_label=parent,
                    parent_known=parent_known,
                ),
                op,
                conflicts,
            )
        anchor = node.lcl if node.lcl else parent
        known = bool(node.lcl) or parent_known
        for edge in node.edges:
            visit(edge.child, anchor, known)

    visit(op.apt.root, None, True)
    return env


def _aggregate_env(
    op: AggregateOp, in_envs: List[LCEnv], conflicts: List[ProducerConflict]
) -> LCEnv:
    env = _merged(in_envs).copy()
    host = env.info(op.lcl)
    # the result node attaches as a sibling of the aggregated class, so it
    # nests under that class's own parent
    info = ClassInfo(
        op.new_lcl,
        id(op),
        describe_op(op),
        "aggregate",
        tag=op.fname,
        parent_label=host.parent_label if host else None,
        parent_known=host.parent_known if host else False,
    )
    if op.new_lcl:
        _add(env, info, op, conflicts)
    return env


def _join_env(
    op: JoinOp, in_envs: List[LCEnv], conflicts: List[ProducerConflict]
) -> LCEnv:
    left = in_envs[0] if in_envs else LCEnv()
    right = in_envs[1] if len(in_envs) > 1 else LCEnv()
    env, merge_conflicts = merge_join(left, right)
    for existing, incoming in merge_conflicts:
        conflicts.append((op, existing, incoming))
    if op.root_lcl:
        # the fresh join_root becomes the root of every output tree
        _add(
            env,
            ClassInfo(
                op.root_lcl,
                id(op),
                describe_op(op),
                "join_root",
                tag="join_root",
                parent_label=None,
                parent_known=True,
            ),
            op,
            conflicts,
        )
    return env


def _project_env(op: ProjectOp, in_envs: List[LCEnv]) -> LCEnv:
    env = _merged(in_envs)
    kept: Dict[int, ClassInfo] = {}
    for label in op.keep_lcls:
        info = env.info(label)
        if info is not None:
            kept[label] = info
    # shadowed nodes are invisible to Project and therefore *retained* in
    # the intermediate result, awaiting a later Illuminate
    for label in env.shadowed:
        info = env.info(label)
        if info is not None:
            kept.setdefault(label, info)
    # constructed content is atomic for projection: everything nested
    # under a retained constructed element survives with its markings
    for label, info in list(kept.items()):
        if info.origin == "construct":
            for descendant in env.descendants_of(label):
                kept.setdefault(descendant.label, descendant)
    return LCEnv(kept, env.shadowed & set(kept))


def _construct_env(
    op: ConstructOp, in_envs: List[LCEnv], conflicts: List[ProducerConflict]
) -> LCEnv:
    env_in = _merged(in_envs)
    out = LCEnv()
    shadowed = set()
    name = describe_op(op)

    def splice(ref: CClassRef, parent: Optional[int]) -> None:
        if ref.text_only:
            return  # text content carries no class markings
        info = env_in.info(ref.lcl)
        if info is None:
            return  # undefined ref: reported by the rules, nothing flows
        _add(out, info.reparented(parent), op, conflicts)
        labels = [ref.lcl]
        for descendant in env_in.descendants_of(ref.lcl):
            _add_default(out, descendant)
            labels.append(descendant.label)
        if ref.hidden or ref.lcl in env_in.shadowed:
            shadowed.update(labels)

    def visit(spec, parent: Optional[int]) -> None:
        if isinstance(spec, CClassRef):
            splice(spec, parent)
            return
        if not isinstance(spec, CElement):
            return  # CText
        if spec.lcl:
            _add(
                out,
                ClassInfo(
                    spec.lcl,
                    id(op),
                    name,
                    "construct",
                    tag=spec.tag,
                    parent_label=parent,
                    parent_known=True,
                ),
                op,
                conflicts,
            )
        # attribute class refs contribute text content only; no markings
        anchor = spec.lcl if spec.lcl else parent
        for child in spec.children:
            visit(child, anchor)

    visit(op.ctree, None)
    out.shadowed = frozenset(shadowed)
    return out


def _add_default(env: LCEnv, info: ClassInfo) -> None:
    env.classes.setdefault(info.label, info)
