"""Pass 2 — fork/pickle-safety certification (SX2xx).

The process-pool re-architecture the ROADMAP plans requires three kinds
of object to cross process boundaries: compiled plans (shipped to
workers), the :class:`~repro.storage.database.Database` with its
postings and indexes (forked or shipped once), and the per-request
context pieces.  This pass *certifies* them:

* a **static walk** over the object graph (``certify``) that reports
  any unpicklable field — locks and other synchronisation primitives
  (SX201), open files/sockets (SX202), closures/lambdas/generators
  (SX203), and threads / thread-locals / weakrefs / executors / tracer
  handles (SX205) — except where the class ships its own
  ``__reduce__``/``__reduce_ex__``, which replaces the raw fields at
  pickle time and makes the dynamic oracle the authority;
* a **dynamic oracle** (``round_trip``) that actually round-trips the
  object through :mod:`pickle` — SX204 reports any disagreement between
  the oracle and the static verdict, in either direction.

``certify_registry()`` builds one representative instance of every
operator class exported by :mod:`repro.core` (the physical registry)
wired into executable plans, so certification covers each operator's
real constructed field set, not a synthetic approximation.
"""

from __future__ import annotations

import io
import pickle
import threading
import types
import weakref
from dataclasses import fields, is_dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .findings import (
    PICKLE_CLOSURE,
    PICKLE_HANDLE,
    PICKLE_LOCK,
    PICKLE_ORACLE,
    PICKLE_RUNTIME,
    CheckFinding,
)

#: Synchronisation primitive types (SX201).  ``Lock``/``RLock`` are
#: factory functions, so their concrete types are taken from instances.
_LOCK_TYPES: Tuple[type, ...] = (
    type(threading.Lock()),
    type(threading.RLock()),
    threading.Event,
    threading.Condition,
    threading.Semaphore,
    threading.BoundedSemaphore,
    threading.Barrier,
)

#: Runtime-handle type names (SX205) matched by qualified name so this
#: module does not import executors/tracers it only needs to recognise.
_RUNTIME_TYPE_NAMES = frozenset(
    {
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "Future",
        "Tracer",
        "PlanTracer",
    }
)

#: Object-graph edges deeper than this indicate a cycle bug, not data.
_MAX_DEPTH = 64


def _has_custom_reduce(value: Any) -> bool:
    """True when ``type(value)`` defines its own pickle reduction.

    A class that implements ``__reduce__``/``__reduce_ex__`` replaces
    its raw in-memory fields with whatever the reduction returns, so
    neither the instance type nor its attributes reach the wire as-is
    (e.g. a ``threading.local`` subclass that collapses to its merged
    totals).  The static walk must not condemn such nodes; the dynamic
    oracle still round-trips them, so a *broken* reduction is reported
    as an SX204 disagreement instead.
    """
    for klass in type(value).__mro__:
        if klass is object:
            continue
        if "__reduce__" in vars(klass) or "__reduce_ex__" in vars(klass):
            return True
    return False


def _classify(value: Any) -> Optional[Tuple[str, str]]:
    """(code, description) when ``value`` itself is unpicklable."""
    if isinstance(value, _LOCK_TYPES):
        return PICKLE_LOCK, type(value).__name__
    if isinstance(value, io.IOBase):
        return PICKLE_HANDLE, type(value).__name__
    if isinstance(value, (types.FunctionType, types.LambdaType)):
        qualname = getattr(value, "__qualname__", "")
        if "<locals>" in qualname or "<lambda>" in qualname:
            return PICKLE_CLOSURE, qualname or "closure"
        return None  # module-level functions pickle by reference
    if isinstance(
        value, (types.GeneratorType, types.CoroutineType, types.FrameType)
    ):
        return PICKLE_CLOSURE, type(value).__name__
    if isinstance(value, types.ModuleType):
        return PICKLE_RUNTIME, f"module {value.__name__}"
    if isinstance(value, (threading.Thread, threading.local)):
        return PICKLE_RUNTIME, type(value).__name__
    if isinstance(value, weakref.ref):
        return PICKLE_RUNTIME, "weakref"
    if type(value).__name__ in _RUNTIME_TYPE_NAMES:
        return PICKLE_RUNTIME, type(value).__name__
    return None


def _children(value: Any) -> Iterable[Tuple[str, Any]]:
    """(edge label, child) pairs of one object-graph node."""
    if isinstance(value, dict):
        for key, item in value.items():
            yield f"[{key!r}]", item
    elif isinstance(value, (list, tuple, set, frozenset)):
        for index, item in enumerate(value):
            yield f"[{index}]", item
    elif is_dataclass(value) and not isinstance(value, type):
        for field in fields(value):
            yield f".{field.name}", getattr(value, field.name, None)
    else:
        state = getattr(value, "__dict__", None)
        if isinstance(state, dict):
            for key, item in state.items():
                yield f".{key}", item
        for slot_owner in type(value).__mro__:
            for slot in getattr(slot_owner, "__slots__", ()):
                if slot in ("__dict__", "__weakref__"):
                    continue
                if hasattr(value, slot):
                    yield f".{slot}", getattr(value, slot)


_ATOMIC = (str, bytes, bytearray, int, float, complex, bool, type(None))


def certify(obj: Any, name: str) -> List[CheckFinding]:
    """Statically walk ``obj`` and report unpicklable fields (SX2xx)."""
    findings: List[CheckFinding] = []
    seen = set()
    stack: List[Tuple[Any, str, int]] = [(obj, "", 0)]
    while stack:
        value, path, depth = stack.pop()
        if isinstance(value, _ATOMIC) or isinstance(value, type):
            continue
        if id(value) in seen or depth > _MAX_DEPTH:
            continue
        seen.add(id(value))
        if _has_custom_reduce(value):
            continue  # the reduction defines the wire format
        verdict = _classify(value)
        if verdict is not None:
            code, what = verdict
            findings.append(
                CheckFinding(
                    code=code,
                    location=name,
                    symbol=path or "<root>",
                    message=f"unpicklable field: {what}",
                )
            )
            continue  # no need to descend into a condemned node
        for edge, child in _children(value):
            stack.append((child, path + edge, depth + 1))
    findings.sort(key=lambda f: (f.code, f.symbol))
    return findings


def round_trip(obj: Any) -> Optional[str]:
    """Pickle and unpickle ``obj``; the error message on failure."""
    try:
        pickle.loads(pickle.dumps(obj))
        return None
    except Exception as error:  # noqa: BLE001 - the oracle reports all
        return f"{type(error).__name__}: {error}"


def certify_with_oracle(obj: Any, name: str) -> List[CheckFinding]:
    """Static walk cross-checked against the dynamic pickle oracle."""
    findings = certify(obj, name)
    error = round_trip(obj)
    if error is not None and not findings:
        findings.append(
            CheckFinding(
                code=PICKLE_ORACLE,
                location=name,
                symbol="<round-trip>",
                message=f"static walk found nothing but pickling "
                f"failed: {error}",
            )
        )
    elif error is None and findings:
        findings = [
            CheckFinding(
                code=PICKLE_ORACLE,
                location=name,
                symbol=f.symbol,
                message=(
                    f"static walk flagged {f.message!r} but the object "
                    "pickles — custom reduction hides the field"
                ),
            )
            for f in findings
        ]
    return findings


# ----------------------------------------------------------------------
# representative instances of the physical operator registry
# ----------------------------------------------------------------------
def registry_classes() -> List[type]:
    """Every ``*Op`` class exported by :mod:`repro.core`."""
    import repro.core as core

    return [
        getattr(core, export)
        for export in core.__all__
        if export.endswith("Op")
    ]


def representative_plans() -> Dict[str, Any]:
    """Executable plans that together instantiate every registry class.

    Keys name the plan; the test suite asserts the union of operator
    types across these plans covers :func:`registry_classes`, so a new
    operator cannot enter the registry uncertified.
    """
    from ..core import (
        AggregateOp,
        ConstructOp,
        DedupOp,
        FilterOp,
        FlattenOp,
        JoinOp,
        ProjectOp,
        SelectOp,
        IlluminateOp,
        ShadowOp,
        SortOp,
        UnionOp,
    )
    from ..core.base import ClassPredicate, JoinPredicate
    from ..core.construct import CClassRef, CElement, CText
    from ..core.filter import TreeFilterOp, cross_class_predicate
    from ..patterns.apt import APT, pattern_node

    def person_apt() -> APT:
        root = pattern_node("person", lcl=1)
        root.add_edge(pattern_node("name", lcl=2), axis="pc", mspec="-")
        root.add_edge(
            pattern_node("watches", lcl=3), axis="ad", mspec="*"
        )
        return APT(root, doc="auction.xml")

    def item_apt() -> APT:
        root = pattern_node("item", lcl=5)
        root.add_edge(
            pattern_node("location", lcl=6), axis="pc", mspec="?"
        )
        return APT(root, doc="auction.xml")

    select = SelectOp(person_apt())
    filtered = FilterOp(
        ClassPredicate(2, "!=", ""), mode="ALO", input_op=select
    )
    cross = TreeFilterOp(
        cross_class_predicate(2, "=", 2),
        "(2) = (2)",
        input_op=filtered,
        lcls=[2],
    )
    aggregated = AggregateOp("count", 3, 9, input_op=cross)
    shadowed = ShadowOp(1, 3, input_op=aggregated)
    lit = IlluminateOp(3, input_op=shadowed)
    flattened = FlattenOp(1, 2, input_op=lit)
    projected = ProjectOp([1, 2, 9], input_op=flattened)

    left = SelectOp(person_apt())
    right = SelectOp(item_apt())
    joined = JoinOp(
        left,
        right,
        predicates=[JoinPredicate(2, "=", 6)],
        root_lcl=7,
        right_mspec="?",
    )
    deduped = DedupOp([1], "id", input_op=joined)
    ordered = SortOp([2], descending=True, input_op=deduped)
    constructed = ConstructOp(
        CElement(
            "result",
            lcl=8,
            children=[CText("person: "), CClassRef(2, text_only=True)],
        ),
        input_op=ordered,
    )
    unioned = UnionOp(
        [SelectOp(person_apt()), SelectOp(item_apt())], dedup_lcl=1
    )
    return {
        "pipeline": projected,
        "join": constructed,
        "union": unioned,
    }


def certify_registry() -> List[CheckFinding]:
    """SX findings over representative plans of every registry operator."""
    findings: List[CheckFinding] = []
    for name, plan in representative_plans().items():
        findings.extend(certify_with_oracle(plan, f"plan:{name}"))
    return findings


def certify_sweep() -> List[CheckFinding]:
    """SX findings over the 23 XMark queries, translated and optimized."""
    from ..rewrites.pipeline import optimize_plan
    from ..xmark import QUERIES
    from ..xquery.translator import translate_query

    findings: List[CheckFinding] = []
    for name in sorted(QUERIES):
        translation = translate_query(QUERIES[name].text)
        findings.extend(
            certify_with_oracle(translation.plan, f"xmark:{name}")
        )
        optimized = optimize_plan(translation, verify=False)
        findings.extend(
            certify_with_oracle(optimized.plan, f"xmark:{name}+opt")
        )
    return findings


def certify_storage(db: Any) -> List[CheckFinding]:
    """SX findings over a Database and its postings/index objects."""
    findings = certify_with_oracle(db, "storage:Database")
    for doc_name in db.document_names():
        index = db.tag_index(doc_name)
        findings.extend(
            certify_with_oracle(index, f"storage:TagIndex({doc_name})")
        )
        for tag in index.tags()[:8]:
            findings.extend(
                certify_with_oracle(
                    index.postings(tag),
                    f"storage:Postings({doc_name},{tag})",
                )
            )
    return findings
