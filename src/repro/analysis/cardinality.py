"""Pass 3 — cardinality interval bounds (LC3xx) over a plan.

An abstract interpretation that runs the plan over *intervals of tree
counts* instead of tree sequences: every operator's output edge gets a
``[lo, hi]`` bound derived from per-tag node counts
(:class:`~repro.storage.stats.CardinalityStats`) and each operator's
transfer function.  ``hi is None`` means unbounded.

Two warnings fall out:

* **LC301** — an operator's upper bound is provably zero against the
  target database (a tag that never occurs, a join with an empty side):
  the branch is dead weight and the query author or the planner should
  know;
* **LC302** — an operator *introduces* an unbounded or explosive upper
  bound (beyond ``blowup_factor ×`` the database node count) from
  bounded inputs: the fingerprint of a cross-product-like join or a
  missed selective rewrite.

Bounds are conservative upper bounds, never estimates: each embedding
of a pattern (or pairing of join inputs) is counted as if every choice
were independent.  The bounds are exposed to users through ``repro
explain --lint`` and to CI through the ``repro check`` cardinality
pass over the XMark sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.aggregate import AggregateOp
from ..core.base import Operator
from ..core.construct import ConstructOp
from ..core.dedup import DedupOp
from ..core.filter import FilterOp, TreeFilterOp
from ..core.flatten import FlattenOp
from ..core.join import JoinOp
from ..core.project import ProjectOp
from ..core.select import SelectOp
from ..core.shadow import IlluminateOp, ShadowOp
from ..core.sort_op import SortOp
from ..core.union import UnionOp
from ..patterns.apt import APTNode
from ..storage.stats import CardinalityStats
from .diagnostics import CARDINALITY_BLOWUP, EMPTY_BRANCH, Diagnostic
from .visitor import describe_op

#: Default LC302 threshold: a join bound beyond ``10000 ×`` the database
#: node count is treated as explosive even though finite.  Predicated
#: value joins are still counted as cross products (value selectivity is
#: unknown), so the default leaves headroom for legitimate plans.
BLOWUP_FACTOR = 10_000


@dataclass(frozen=True)
class Interval:
    """A closed cardinality interval; ``hi=None`` means unbounded."""

    lo: int = 0
    hi: Optional[int] = None

    def render(self) -> str:
        upper = "inf" if self.hi is None else str(self.hi)
        return f"[{self.lo}, {upper}]"

    @property
    def empty(self) -> bool:
        return self.hi == 0


def _mul(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return 0 if a == 0 or b == 0 else None
    return a * b


def _add(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return a + b


@dataclass
class CardinalityAnalysis:
    """Interval bounds per operator plus the LC3xx diagnostics."""

    bounds: Dict[int, Interval] = field(default_factory=dict)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def bound_of(self, op: Operator) -> Interval:
        return self.bounds[id(op)]


def _edge_factor(
    edge, doc: Optional[str], stats: CardinalityStats
) -> Optional[int]:
    """How one pattern edge multiplies its parent's witness count.

    Required edges (``-``) contribute one witness per child embedding;
    optional-single edges (``?``) contribute the child embeddings plus
    the absent case; nested edges (``+``/``*``) group all matches into
    one witness (``+`` with a provably empty child zeroes the parent).
    """
    child = _pattern_embeddings(edge.child, doc, stats)
    if edge.mspec == "-":
        return child
    if edge.mspec == "?":
        return None if child is None else child + 1
    if edge.mspec == "+" and child == 0:
        return 0
    return 1  # '*' and non-empty '+': nesting, no multiplication


def _pattern_embeddings(
    node: APTNode, doc: Optional[str], stats: CardinalityStats
) -> Optional[int]:
    """Upper bound on embeddings of the pattern subtree at ``node``.

    Each embedding picks one match for the node plus one embedding per
    non-nested child, so choices multiply.  When some required
    parent-child edge has a bounded child, the child match *determines*
    the parent (every node has exactly one parent), so the node's own
    count drops out of the product — this is what keeps a deep required
    chain bounded by its leaves instead of the product of every level.
    """
    count = stats.tag_count(doc, node.test.tag)
    if count == 0:
        return 0
    product: Optional[int] = 1
    anchored = False
    for edge in node.edges:
        factor = _edge_factor(edge, doc, stats)
        product = _mul(product, factor)
        if (
            edge.mspec == "-"
            and edge.axis == "pc"
            and factor is not None
        ):
            anchored = True
    if anchored:
        return product
    return _mul(count, product)


def bound_plan(
    plan: Operator,
    stats: Optional[CardinalityStats] = None,
    blowup_factor: int = BLOWUP_FACTOR,
) -> CardinalityAnalysis:
    """Interval-interpret ``plan`` against ``stats``.

    Without stats every leaf is unknown and no diagnostics are raised —
    the bounds degenerate to ``[0, inf]`` but the plumbing (rendering,
    ``explain --lint``) still works.
    """
    analysis = CardinalityAnalysis()
    known = stats is not None
    threshold = (
        max(stats.database_nodes, 1) * blowup_factor if known else None
    )

    def run(op: Operator) -> Interval:
        key = id(op)
        if key in analysis.bounds:
            return analysis.bounds[key]
        ins = [run(child) for child in op.inputs]
        out = transfer(op, ins, stats)
        analysis.bounds[key] = out
        _diagnose(op, ins, out)
        return out

    def _diagnose(
        op: Operator, ins: List[Interval], out: Interval
    ) -> None:
        if not known:
            return
        if out.empty and not any(i.empty for i in ins):
            analysis.diagnostics.append(
                Diagnostic(
                    code=EMPTY_BRANCH,
                    message=(
                        "output bounded at 0 trees against the loaded "
                        "database"
                    ),
                    operator=describe_op(op),
                    op_id=id(op),
                )
            )
            return
        # LC302 fires where a blowup is *introduced*: a bound that
        # becomes unbounded from bounded inputs, or a Join whose output
        # bound explodes past the threshold while both sides were fine.
        # A Select's large product bound is the declared pattern shape,
        # not a plan defect, so it does not trip by itself.
        inputs_fine = all(
            i.hi is not None
            and (threshold is None or i.hi <= threshold)
            for i in ins
        )
        if not inputs_fine:
            return
        if out.hi is None:
            analysis.diagnostics.append(
                Diagnostic(
                    code=CARDINALITY_BLOWUP,
                    message="upper bound becomes unbounded here",
                    operator=describe_op(op),
                    op_id=id(op),
                )
            )
        elif (
            isinstance(op, JoinOp)
            and threshold is not None
            and out.hi > threshold
        ):
            analysis.diagnostics.append(
                Diagnostic(
                    code=CARDINALITY_BLOWUP,
                    message=(
                        f"join output bound {out.render()} exceeds "
                        f"{blowup_factor}x the database node count"
                    ),
                    operator=describe_op(op),
                    op_id=id(op),
                )
            )

    run(plan)
    return analysis


def transfer(
    op: Operator,
    ins: List[Interval],
    stats: Optional[CardinalityStats],
) -> Interval:
    """One operator's interval transfer function."""
    if isinstance(op, SelectOp):
        return _select_bound(op, ins, stats)
    if isinstance(op, JoinOp):
        return _join_bound(op, ins)
    if isinstance(op, UnionOp):
        lo: Optional[int] = 0
        hi: Optional[int] = 0
        for interval in ins:
            lo = (lo or 0) + interval.lo
            hi = _add(hi, interval.hi)
        if getattr(op, "dedup_lcl", None) is not None:
            lo = min(lo or 0, 1) if (lo or 0) > 0 else 0
        return Interval(lo or 0, hi)
    if isinstance(op, (FilterOp, TreeFilterOp)):
        return Interval(0, ins[0].hi if ins else None)
    if isinstance(op, DedupOp):
        source = ins[0] if ins else Interval()
        return Interval(min(source.lo, 1), source.hi)
    if isinstance(
        op,
        (AggregateOp, SortOp, ProjectOp, FlattenOp, ShadowOp,
         IlluminateOp),
    ):
        return ins[0] if ins else Interval()
    if isinstance(op, ConstructOp):
        # one constructed tree per input tree; a leaf Construct emits one
        return ins[0] if ins else Interval(1, 1)
    # unknown operator: conservative
    if len(ins) == 1:
        return Interval(0, ins[0].hi)
    return Interval(0, None)


def _select_bound(
    op: SelectOp, ins: List[Interval], stats: Optional[CardinalityStats]
) -> Interval:
    root = op.apt.root
    if stats is None:
        return Interval(0, None)
    if root.lc_ref is not None:
        # extension: each input tree is extended below its class nodes;
        # the choices below the anchor multiply per input tree
        source = ins[0] if ins else Interval(0, None)
        factor: Optional[int] = 1
        for edge in root.edges:
            factor = _mul(factor, _edge_factor(edge, op.apt.doc, stats))
        return Interval(0, _mul(source.hi, factor))
    if not op.inputs:
        return Interval(0, _pattern_embeddings(root, op.apt.doc, stats))
    # in-memory match over constructed content: per-tree multiplicity
    # is not derivable from document statistics
    return Interval(0, None)


def _join_bound(op: JoinOp, ins: List[Interval]) -> Interval:
    left = ins[0] if ins else Interval()
    right = ins[1] if len(ins) > 1 else Interval()
    mspec = getattr(op, "right_mspec", "-")
    if mspec == "-":
        return Interval(0, _mul(left.hi, right.hi))
    if mspec == "?":
        # left outer, single right per output: every left tree survives
        hi = _mul(
            left.hi, None if right.hi is None else max(right.hi, 1)
        )
        return Interval(left.lo, hi)
    if mspec == "+":
        # nest: matching rights group under one output per left tree
        return Interval(0, left.hi)
    # '*': outer nest — exactly one output per left tree
    return Interval(left.lo, left.hi)
