"""Check findings and the reviewed suppression baseline.

The ``repro check`` passes (concurrency lint, fork/pickle-safety
certification, cardinality bounds) report :class:`CheckFinding` records
rather than plan-anchored :class:`~repro.analysis.diagnostics.Diagnostic`
objects: a finding names a *location* (a source file, an object path, a
benchmark query) and a *symbol* within it, and its identity — the
``key`` — deliberately omits line numbers so that unrelated edits do not
invalidate a reviewed suppression.

The baseline file (``tools/check_baseline.json``) is the list of
findings a reviewer has looked at and accepted.  ``repro check`` fails
only on findings whose key is *not* in the baseline; a baseline entry
whose finding no longer fires is *stale* and reported so the file keeps
shrinking as code improves (CI runs with ``--strict-baseline`` and
fails on drift in either direction).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .diagnostics import Severity

# -- concurrency lint (pass 1) ----------------------------------------
#: A module-level global is rebound from function scope (``global X``)
#: without a lock held — concurrent callers race on the swap.
GLOBAL_REBIND = "CC101"
#: An instance attribute of a shared-scope class (service/telemetry) is
#: written outside ``__init__`` without the writer holding a lock.
UNGUARDED_ATTR_WRITE = "CC102"
#: Two functions acquire the same pair of locks in opposite orders — a
#: deadlock waiting for the right interleaving.
LOCK_ORDER_CYCLE = "CC103"
#: Check-then-set lazy initialisation (``if self._x is None: self._x =
#: ...``) outside a lock — two threads can both run the initialiser.
UNSAFE_LAZY_INIT = "CC104"
#: A module-level mutable container is mutated from function scope
#: without a lock held.
GLOBAL_MUTATION = "CC105"

# -- fork/pickle-safety certification (pass 2) ------------------------
#: A lock, event, condition or other synchronisation primitive is
#: reachable from an object that must cross a process boundary.
PICKLE_LOCK = "SX201"
#: An open file, socket or other OS handle is reachable.
PICKLE_HANDLE = "SX202"
#: A closure, lambda, generator or other local function object is
#: reachable — unpicklable by construction.
PICKLE_CLOSURE = "SX203"
#: The dynamic oracle disagrees: ``pickle.dumps``/``loads`` failed even
#: though the static walk found nothing (or vice versa).
PICKLE_ORACLE = "SX204"
#: A thread, thread-local, weakref, executor or tracer handle is
#: reachable — runtime state that cannot move between processes.
PICKLE_RUNTIME = "SX205"

#: code -> (severity, one-line description) for check findings.  LC3xx
#: findings reuse the plan-diagnostic catalogue in ``diagnostics.py``.
CHECK_CATALOG: Dict[str, Tuple[Severity, str]] = {
    GLOBAL_REBIND: (
        Severity.ERROR,
        "module global rebound from function scope without a lock",
    ),
    UNGUARDED_ATTR_WRITE: (
        Severity.ERROR,
        "shared attribute written outside a held-lock scope",
    ),
    LOCK_ORDER_CYCLE: (
        Severity.ERROR,
        "locks are acquired in inconsistent order across functions",
    ),
    UNSAFE_LAZY_INIT: (
        Severity.ERROR,
        "check-then-set lazy initialisation without a lock",
    ),
    GLOBAL_MUTATION: (
        Severity.ERROR,
        "module-level mutable container mutated without a lock",
    ),
    PICKLE_LOCK: (
        Severity.ERROR,
        "synchronisation primitive reachable from a picklable object",
    ),
    PICKLE_HANDLE: (
        Severity.ERROR,
        "open file or socket reachable from a picklable object",
    ),
    PICKLE_CLOSURE: (
        Severity.ERROR,
        "closure / lambda / generator reachable from a picklable object",
    ),
    PICKLE_ORACLE: (
        Severity.ERROR,
        "pickle round trip disagrees with the static verdict",
    ),
    PICKLE_RUNTIME: (
        Severity.ERROR,
        "thread / weakref / tracer handle reachable from a picklable "
        "object",
    ),
}


@dataclass(frozen=True)
class CheckFinding:
    """One finding of a ``repro check`` pass.

    ``location`` is where the finding lives (a source path relative to
    the package root, an object name, or ``xmark:<query>``); ``symbol``
    is the specific item within it (``Class.method``, ``module:GLOBAL``
    or an attribute path).  ``line`` is display-only and excluded from
    the suppression key.
    """

    code: str
    location: str
    symbol: str
    message: str
    line: int = 0

    @property
    def severity(self) -> Severity:
        from .diagnostics import CATALOG

        if self.code in CHECK_CATALOG:
            return CHECK_CATALOG[self.code][0]
        return CATALOG[self.code][0]

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    @property
    def key(self) -> str:
        """Line-independent identity used by the suppression baseline."""
        return f"{self.code} {self.location}::{self.symbol}"

    def render(self) -> str:
        where = (
            f"{self.location}:{self.line}" if self.line else self.location
        )
        return (
            f"{self.code} {self.severity}: {where} [{self.symbol}] "
            f"{self.message}"
        )


@dataclass
class Baseline:
    """The reviewed suppressions: key -> reason."""

    suppressions: Dict[str, str]

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        payload = json.loads(Path(path).read_text())
        entries = payload.get("suppressions", [])
        suppressions = {}
        for entry in entries:
            suppressions[entry["key"]] = entry.get("reason", "")
        return cls(suppressions)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    def save(self, path: Path) -> None:
        payload = {
            "version": 1,
            "suppressions": [
                {"key": key, "reason": reason}
                for key, reason in sorted(self.suppressions.items())
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def split(
        self, findings: Sequence[CheckFinding]
    ) -> Tuple[List[CheckFinding], List[CheckFinding], List[str]]:
        """Partition findings into (new, suppressed) plus stale keys."""
        new: List[CheckFinding] = []
        suppressed: List[CheckFinding] = []
        fired = set()
        for finding in findings:
            fired.add(finding.key)
            if finding.key in self.suppressions:
                suppressed.append(finding)
            else:
                new.append(finding)
        stale = sorted(set(self.suppressions) - fired)
        return new, suppressed, stale
