"""Human-readable rendering of an analysis: lint reports, annotated plans."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.base import Operator
from .diagnostics import Diagnostic
from .visitor import PlanAnalysis


@dataclass
class AnalysisReport:
    """A :class:`PlanAnalysis` packaged for display.

    ``bounds`` (when the caller supplied database statistics) maps
    operator ids to cardinality :class:`~.cardinality.Interval` bounds,
    rendered into the annotated plan.
    """

    analysis: PlanAnalysis
    bounds: Optional[Dict[int, object]] = None

    @property
    def ok(self) -> bool:
        return self.analysis.ok

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return self.analysis.diagnostics

    def render(self) -> str:
        """The lint report: one line per diagnostic plus a summary."""
        lines = [d.render() for d in self.analysis.diagnostics]
        errors = len(self.analysis.errors)
        warnings = len(self.analysis.warnings)
        if not lines:
            lines.append("plan is clean: no diagnostics")
        else:
            lines.append(
                f"{errors} error{'s' if errors != 1 else ''}, "
                f"{warnings} warning{'s' if warnings != 1 else ''}"
            )
        return "\n".join(lines)

    def annotated_plan(self) -> str:
        """The plan rendered like ``Operator.describe`` with LC-flow notes.

        Each operator line is suffixed with the labels it produces and
        consumes, the live environment on its output edge, and — when
        cardinality bounds were computed — its ``card [lo, hi]`` output
        bound; any diagnostics anchored to it are listed beneath it.
        """
        by_op: Dict[int, List[Diagnostic]] = {}
        for diag in self.analysis.diagnostics:
            if diag.op_id is not None:
                by_op.setdefault(diag.op_id, []).append(diag)

        lines: List[str] = []
        seen: Dict[int, bool] = {}

        def visit(op: Operator, depth: int) -> None:
            pad = "  " * depth
            params = op.params()
            head = f"{pad}{op.name} {params}" if params else f"{pad}{op.name}"
            notes = []
            produced = sorted(op.lc_produced())
            consumed = sorted(op.lc_consumed())
            if produced:
                notes.append(f"+{produced}")
            if consumed:
                notes.append(f"reads {consumed}")
            env = self.analysis.env_out.get(id(op))
            if env is not None:
                live = sorted(env.labels())
                notes.append(f"live {live}")
                if env.shadowed:
                    notes.append(f"shadowed {sorted(env.shadowed)}")
            if self.bounds is not None:
                interval = self.bounds.get(id(op))
                if interval is not None:
                    notes.append(f"card {interval.render()}")
            if notes:
                head += "   # " + " ".join(notes)
            if id(op) in seen:
                lines.append(head + "  (shared)")
                return
            seen[id(op)] = True
            lines.append(head)
            for diag in by_op.get(id(op), ()):
                marker = "!!" if diag.is_error else "??"
                lines.append(
                    f"{pad}  {marker} {diag.code} {diag.severity}: "
                    f"{diag.message}"
                )
            for child in op.inputs:
                visit(child, depth + 1)

        visit(self.analysis.plan, 0)
        return "\n".join(lines)
