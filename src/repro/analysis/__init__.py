"""Static LC-flow analysis of TLC plans.

``analyze(plan)`` walks an operator DAG bottom-up — without executing it
— and computes, for every edge, the environment of live logical classes
with provenance.  The rules in :mod:`.rules` check the invariants the
algebra relies on (closed label references, unique allocation,
shadow/illuminate pairing, Flatten nesting, join sidedness, well-formed
parameters) and report typed :class:`Diagnostic` findings.

``lint_plan(plan)`` is the convenience entry point used by the engine's
strict mode, the rewrite pipeline's per-step verification, and the
``python -m repro lint`` CLI.
"""

from __future__ import annotations

from typing import Optional

from ..core.base import Operator
from .diagnostics import (
    BAD_FLATTEN_SITE,
    CARDINALITY_BLOWUP,
    CATALOG,
    DEAD_CLASS,
    DUPLICATE_LABEL,
    EMPTY_BRANCH,
    JOIN_SIDE_MISMATCH,
    MALFORMED_OPERATOR,
    SHADOWED_REF,
    UNDEFINED_REF,
    Diagnostic,
    Severity,
)
from .environment import ClassInfo, LCEnv
from .findings import Baseline, CHECK_CATALOG, CheckFinding
from .report import AnalysisReport
from .visitor import PlanAnalysis, analyze, dedupe_diagnostics


def lint_plan(plan: Operator, stats=None) -> AnalysisReport:
    """Analyze ``plan`` and package the result for display.

    With ``stats`` (a :class:`~repro.storage.stats.CardinalityStats`),
    the cardinality pass also runs: per-operator interval bounds are
    attached to the report and LC3xx warnings join the diagnostics.
    """
    analysis = analyze(plan)
    bounds: Optional[dict] = None
    if stats is not None:
        from .cardinality import bound_plan

        card = bound_plan(plan, stats)
        bounds = card.bounds
        analysis.diagnostics.extend(card.diagnostics)
        dedupe_diagnostics(analysis.diagnostics)
    return AnalysisReport(analysis, bounds=bounds)


__all__ = [
    "AnalysisReport",
    "BAD_FLATTEN_SITE",
    "Baseline",
    "CARDINALITY_BLOWUP",
    "CATALOG",
    "CHECK_CATALOG",
    "CheckFinding",
    "ClassInfo",
    "DEAD_CLASS",
    "DUPLICATE_LABEL",
    "Diagnostic",
    "EMPTY_BRANCH",
    "JOIN_SIDE_MISMATCH",
    "LCEnv",
    "MALFORMED_OPERATOR",
    "PlanAnalysis",
    "SHADOWED_REF",
    "Severity",
    "UNDEFINED_REF",
    "analyze",
    "dedupe_diagnostics",
    "lint_plan",
]
