"""Static LC-flow analysis of TLC plans.

``analyze(plan)`` walks an operator DAG bottom-up — without executing it
— and computes, for every edge, the environment of live logical classes
with provenance.  The rules in :mod:`.rules` check the invariants the
algebra relies on (closed label references, unique allocation,
shadow/illuminate pairing, Flatten nesting, join sidedness, well-formed
parameters) and report typed :class:`Diagnostic` findings.

``lint_plan(plan)`` is the convenience entry point used by the engine's
strict mode, the rewrite pipeline's per-step verification, and the
``python -m repro lint`` CLI.
"""

from __future__ import annotations

from ..core.base import Operator
from .diagnostics import (
    BAD_FLATTEN_SITE,
    CATALOG,
    DEAD_CLASS,
    DUPLICATE_LABEL,
    JOIN_SIDE_MISMATCH,
    MALFORMED_OPERATOR,
    SHADOWED_REF,
    UNDEFINED_REF,
    Diagnostic,
    Severity,
)
from .environment import ClassInfo, LCEnv
from .report import AnalysisReport
from .visitor import PlanAnalysis, analyze


def lint_plan(plan: Operator) -> AnalysisReport:
    """Analyze ``plan`` and package the result for display."""
    return AnalysisReport(analyze(plan))


__all__ = [
    "AnalysisReport",
    "BAD_FLATTEN_SITE",
    "CATALOG",
    "ClassInfo",
    "DEAD_CLASS",
    "DUPLICATE_LABEL",
    "Diagnostic",
    "JOIN_SIDE_MISMATCH",
    "LCEnv",
    "MALFORMED_OPERATOR",
    "PlanAnalysis",
    "SHADOWED_REF",
    "Severity",
    "UNDEFINED_REF",
    "analyze",
    "lint_plan",
]
