"""The LC-flow environment: which classes are live between operators.

An :class:`LCEnv` is the static abstraction of a tree sequence: the set
of logical class labels its trees may carry, each with provenance — who
produced it, what tag its members match, and which class its members
nest under in the producing pattern.  The provenance is what lets the
rules check Flatten sites and track labels through Construct splices.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

#: Provenance kinds for :attr:`ClassInfo.origin`.
ORIGINS = ("select", "aggregate", "join_root", "construct", "ref")


@dataclass(frozen=True)
class ClassInfo:
    """Static facts about one live logical class."""

    label: int
    producer: int  # id() of the producing operator
    producer_name: str
    origin: str
    tag: Optional[str] = None  # pattern tag / aggregate fname, if known
    parent_label: Optional[int] = None  # class its members nest under
    parent_known: bool = False  # whether parent_label is authoritative

    def reparented(self, parent: Optional[int]) -> "ClassInfo":
        """A copy of this info nested under a different class."""
        return replace(self, parent_label=parent, parent_known=True)


@dataclass
class LCEnv:
    """The environment flowing along one plan edge."""

    classes: Dict[int, ClassInfo] = field(default_factory=dict)
    shadowed: FrozenSet[int] = frozenset()

    # ------------------------------------------------------------------
    def has(self, label: int) -> bool:
        return label in self.classes

    def info(self, label: int) -> Optional[ClassInfo]:
        return self.classes.get(label)

    def labels(self) -> Set[int]:
        return set(self.classes)

    def copy(self) -> "LCEnv":
        return LCEnv(dict(self.classes), self.shadowed)

    # ------------------------------------------------------------------
    def descendants_of(self, label: int) -> List[ClassInfo]:
        """Classes provenance-nested (transitively) under ``label``.

        Used by the Construct transfer: splicing a class keeps the class
        markings of the whole subtree, so every class nested under the
        referenced one survives into the constructed output.
        """
        out: List[ClassInfo] = []
        for info in self.classes.values():
            if info.label == label:
                continue
            seen: Set[int] = set()
            current: Optional[ClassInfo] = info
            while current is not None and current.label not in seen:
                seen.add(current.label)
                parent = current.parent_label
                if parent == label and current.label != label:
                    out.append(info)
                    break
                current = self.classes.get(parent) if parent else None
        return out


#: A duplicate-producer conflict found while merging environments.
Conflict = Tuple[ClassInfo, ClassInfo]


def merge_join(left: LCEnv, right: LCEnv) -> Tuple[LCEnv, List[Conflict]]:
    """Merge the two sides of a Join; report duplicate producers.

    A label present on both sides is fine when both occurrences come from
    the *same* operator instance (a shared sub-plan after the Section 4.1
    reuse rewrite turns the plan into a DAG); two distinct producers for
    one label is the classic translator bug this analyzer exists to catch.
    """
    merged = dict(left.classes)
    conflicts: List[Conflict] = []
    for label, info in right.classes.items():
        existing = merged.get(label)
        if existing is not None and existing.producer != info.producer:
            conflicts.append((existing, info))
        else:
            merged[label] = info
    return LCEnv(merged, left.shadowed | right.shadowed), conflicts


def merge_union(envs: Iterable[LCEnv]) -> LCEnv:
    """Merge Union branches: alternatives, so duplicates are intended.

    The OR translation deliberately assigns the same label on both
    branches ("the root node of each path assigned the same LCL on both
    sides"), so no conflict is reported; the first branch's info wins.
    """
    merged: Dict[int, ClassInfo] = {}
    shadowed: FrozenSet[int] = frozenset()
    for env in envs:
        for label, info in env.classes.items():
            merged.setdefault(label, info)
        shadowed = shadowed | env.shadowed
    return LCEnv(merged, shadowed)
