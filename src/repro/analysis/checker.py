"""The ``repro check`` orchestrator: three passes, one baseline.

``run_check`` executes the selected passes —

* ``concurrency`` — the CC1xx source lint over the package (or any
  ``--paths`` the caller points it at);
* ``forksafety`` — the SX2xx certification over the operator registry's
  representative plans, the 23-query XMark sweep's plans, and a real
  Database with its index/postings objects;
* ``cardinality`` — the LC3xx interval bounds over every sweep plan
  against a small generated XMark instance —

and reconciles the union of findings against the reviewed suppression
baseline (:mod:`.findings`).  The exit contract: new findings fail;
suppressed findings are reported as such; baseline entries that no
longer fire are *stale* and fail under ``--strict-baseline`` (the CI
mode), so the baseline cannot drift in either direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .findings import Baseline, CheckFinding

#: Pass names in execution order.
PASSES = ("concurrency", "forksafety", "cardinality")

#: XMark factor the forksafety/cardinality passes load; small enough to
#: build in well under a second, big enough that every tag occurs.
CHECK_FACTOR = 0.002


@dataclass
class CheckResult:
    """Everything one ``repro check`` run learned."""

    findings: List[CheckFinding] = field(default_factory=list)
    new: List[CheckFinding] = field(default_factory=list)
    suppressed: List[CheckFinding] = field(default_factory=list)
    stale: List[str] = field(default_factory=list)
    per_pass: Dict[str, int] = field(default_factory=dict)

    def exit_code(self, strict_baseline: bool = False) -> int:
        if self.new:
            return 1
        if strict_baseline and self.stale:
            return 1
        return 0

    def render(self) -> str:
        lines: List[str] = []
        for finding in self.new:
            lines.append(finding.render())
        for finding in self.suppressed:
            lines.append(f"suppressed: {finding.key}")
        for key in self.stale:
            lines.append(f"stale baseline entry (no longer fires): {key}")
        ran = ", ".join(
            f"{name}={count}" for name, count in self.per_pass.items()
        )
        lines.append(
            f"check: {len(self.new)} new, {len(self.suppressed)} "
            f"suppressed, {len(self.stale)} stale ({ran})"
        )
        return "\n".join(lines)


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def _concurrency_pass(
    paths: Optional[Sequence[Path]],
) -> List[CheckFinding]:
    from .concurrency import lint_paths

    if paths:
        resolved = [Path(p) for p in paths]
        anchor = resolved[0]
        root = anchor if anchor.is_dir() else anchor.parent
        return lint_paths(resolved, package_root=root)
    root = _package_root()
    return lint_paths([root], package_root=root)


def _forksafety_pass() -> List[CheckFinding]:
    from ..engine import Engine
    from .forksafety import (
        certify_registry,
        certify_storage,
        certify_sweep,
    )

    findings = certify_registry()
    findings.extend(certify_sweep())
    engine = Engine()
    engine.load_xmark(factor=CHECK_FACTOR)
    findings.extend(certify_storage(engine.db))
    return findings


def _cardinality_pass() -> List[CheckFinding]:
    from ..engine import Engine
    from ..rewrites.pipeline import optimize_plan
    from ..storage.stats import CardinalityStats
    from ..xmark import QUERIES
    from ..xquery.translator import translate_query
    from .cardinality import bound_plan

    engine = Engine()
    engine.load_xmark(factor=CHECK_FACTOR)
    stats = CardinalityStats.from_database(engine.db)
    findings: List[CheckFinding] = []
    for name in sorted(QUERIES):
        translation = translate_query(QUERIES[name].text)
        plans = {
            f"xmark:{name}": translation.plan,
            f"xmark:{name}+opt": optimize_plan(
                translation, verify=False
            ).plan,
        }
        for location, plan in plans.items():
            analysis = bound_plan(plan, stats)
            for diag in analysis.diagnostics:
                findings.append(
                    CheckFinding(
                        code=diag.code,
                        location=location,
                        symbol=diag.operator,
                        message=diag.message,
                    )
                )
    return findings


def run_check(
    paths: Optional[Sequence[Path]] = None,
    baseline: Optional[Baseline] = None,
    passes: Sequence[str] = PASSES,
) -> CheckResult:
    """Run the selected passes and reconcile against ``baseline``.

    ``paths`` redirects the concurrency pass at arbitrary sources (the
    docs-smoke job points it at ``examples/``); the object-level passes
    always certify the installed package.
    """
    result = CheckResult()
    for name in passes:
        if name == "concurrency":
            found = _concurrency_pass(paths)
        elif name == "forksafety":
            found = _forksafety_pass()
        elif name == "cardinality":
            found = _cardinality_pass()
        else:
            raise ValueError(f"unknown check pass {name!r}")
        result.per_pass[name] = len(found)
        result.findings.extend(found)
    active = baseline if baseline is not None else Baseline.empty()
    result.new, result.suppressed, result.stale = active.split(
        result.findings
    )
    return result
