"""Typed diagnostics for the static LC-flow analyzer.

Every finding carries a stable code (``LC1xx`` = error, ``LC2xx`` =
warning), the offending operator, and a human-readable message.  The
catalogue below is the authoritative list; DESIGN.md documents each rule
in prose.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Severity(enum.Enum):
    """How bad a diagnostic is: errors abort strict execution."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Undefined reference: an operator consumes a label no upstream operator
#: produces — the class is guaranteed empty, so filters silently drop
#: everything and joins return no pairs.
UNDEFINED_REF = "LC101"
#: Duplicate label allocation: two distinct operators produce the same
#: label in sub-plans that later merge, breaking static addressability
#: ("a single tree cannot have two LCLs pointing to different LCs").
DUPLICATE_LABEL = "LC102"
#: Shadowed reference: a value-reading operator consumes a class that a
#: Shadow hid with no intervening Illuminate — it will see only the one
#: visible member.
SHADOWED_REF = "LC103"
#: Bad Flatten/Shadow site: the child class is not nested directly under
#: the parent class's pattern node, so the operator's "C maps to children
#: of P" contract (Definition 5) fails at runtime.
BAD_FLATTEN_SITE = "LC104"
#: Join side mismatch: a join predicate names a class that lives on the
#: opposite input — every key extraction returns NULL and the join is
#: silently empty.
JOIN_SIDE_MISMATCH = "LC105"
#: Malformed operator: invalid axis/mspec combinations, unknown filter
#: modes or aggregate functions, bad comparison operators, label-0
#: references, or an APT that fails its own validation.
MALFORMED_OPERATOR = "LC106"
#: Dead class: a fresh label is produced (an Aggregate result) but never
#: consumed anywhere in the plan — wasted work, likely a missed Project
#: or a dangling rewrite.
DEAD_CLASS = "LC201"
#: Provably-empty branch: cardinality interval analysis bounds an
#: operator's output at zero trees against the target database — a tag
#: that does not occur, or a join whose side is empty.
EMPTY_BRANCH = "LC301"
#: Intermediate blowup: the cardinality upper bound of an intermediate
#: result is unbounded or exceeds the blowup threshold relative to the
#: database size — a missed selective rewrite or a cross-product-like
#: join.
CARDINALITY_BLOWUP = "LC302"

#: code -> (severity, one-line description), the diagnostic catalogue.
CATALOG = {
    UNDEFINED_REF: (
        Severity.ERROR,
        "reference to a logical class no upstream operator produces",
    ),
    DUPLICATE_LABEL: (
        Severity.ERROR,
        "the same label is allocated by two independent producers",
    ),
    SHADOWED_REF: (
        Severity.ERROR,
        "value access to a Shadow-hidden class without an Illuminate",
    ),
    BAD_FLATTEN_SITE: (
        Severity.ERROR,
        "Flatten/Shadow child class is not nested under the parent class",
    ),
    JOIN_SIDE_MISMATCH: (
        Severity.ERROR,
        "join predicate names a class from the opposite input",
    ),
    MALFORMED_OPERATOR: (
        Severity.ERROR,
        "operator parameters are malformed",
    ),
    DEAD_CLASS: (
        Severity.WARNING,
        "class is produced but never consumed (missed Project?)",
    ),
    EMPTY_BRANCH: (
        Severity.WARNING,
        "cardinality bounds prove this branch produces zero trees",
    ),
    CARDINALITY_BLOWUP: (
        Severity.WARNING,
        "intermediate cardinality bound is unbounded or explosive",
    ),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    code: str
    message: str
    operator: str  # the operator's one-line rendering
    op_id: Optional[int] = None  # id() of the offending operator

    @property
    def severity(self) -> Severity:
        return CATALOG[self.code][0]

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def render(self) -> str:
        """``LC101 error: message [at Operator ...]``."""
        return (
            f"{self.code} {self.severity}: {self.message} "
            f"[at {self.operator}]"
        )
