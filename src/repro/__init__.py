"""TLC: Tree Logical Classes for Efficient Evaluation of XQuery.

A from-scratch reproduction of the SIGMOD 2004 paper: a native XML store,
the TLC algebra (annotated pattern trees + logical classes + nest-joins),
an XQuery fragment front-end, the Flatten / Shadow-Illuminate rewrites,
and the three competing evaluation strategies (TAX, GTP, navigational)
the paper benchmarks against on XMark data.

Quickstart::

    from repro import Engine
    engine = Engine()
    engine.load_xmark(factor=0.01)
    result = engine.run('FOR $p IN document("auction.xml")//person '
                        'WHERE $p//age > 60 RETURN $p/name')
    print(result.to_xml())
"""

from .engine import ENGINES, Engine
from .errors import (
    AlgebraError,
    CardinalityError,
    EvaluationError,
    PatternError,
    ReproError,
    RewriteError,
    StorageError,
    TranslationError,
    XMLParseError,
    XQueryError,
    XQuerySyntaxError,
)
from .model import NodeId, TempId, TNode, TreeSequence, XTree
from .storage import Database, Metrics, QueryReport, parse_xml

__version__ = "1.0.0"

__all__ = [
    "ENGINES",
    "Engine",
    "AlgebraError",
    "CardinalityError",
    "EvaluationError",
    "PatternError",
    "ReproError",
    "RewriteError",
    "StorageError",
    "TranslationError",
    "XMLParseError",
    "XQueryError",
    "XQuerySyntaxError",
    "NodeId",
    "TempId",
    "TNode",
    "TreeSequence",
    "XTree",
    "Database",
    "Metrics",
    "QueryReport",
    "parse_xml",
    "__version__",
]
