"""Aggregate-Function ``AF[fname, LCL_a, newLCL]`` (Section 2.3).

Applies an aggregate (count, sum, avg, min, max) over all nodes of one
logical class per tree, and adds a result node *as a sibling of the class
nodes*, marked with a fresh class label.  "If LCa maps to the empty set,
the generated node will contain 0 for count and the flag 'empty' for all
other functions" — in that case the node attaches under the tree root (the
paper leaves the sibling position undefined when the class is empty).

This operator runs entirely on in-memory witness trees — no data access —
which is why TLC computes counts "without touching the data in a fraction
of a second" while navigation iterates over all nodes (Section 6.3).
"""

from __future__ import annotations

from typing import List, Optional

from ..columns.batch import ColumnBatch
from ..errors import AlgebraError
from ..model.sequence import TreeSequence
from ..model.tree import TNode
from ..model.value import coerce_number
from .base import Context, Operator

#: Aggregate functions of the Figure 5 grammar.
FUNCTIONS = ("count", "sum", "avg", "min", "max")


class AggregateOp(Operator):
    """Per-tree aggregate over a logical class, materialised as a node."""

    name = "Aggregate"

    def __init__(
        self,
        fname: str,
        lcl: int,
        new_lcl: int,
        input_op: Operator = None,
    ) -> None:
        super().__init__([input_op] if input_op is not None else [])
        if fname not in FUNCTIONS:
            raise AlgebraError(f"unknown aggregate function {fname!r}")
        self.fname = fname
        self.lcl = lcl
        self.new_lcl = new_lcl

    # ------------------------------------------------------------------
    def _compute(self, nodes: List[TNode]) -> Optional[object]:
        return self._fold(len(nodes), (n.value for n in nodes))

    def _fold(self, count: int, contents) -> Optional[object]:
        """The aggregate itself, over node count and node contents."""
        if self.fname == "count":
            return count
        values = [
            number
            for number in (coerce_number(value) for value in contents)
            if number is not None
        ]
        if not values:
            return "empty"
        if self.fname == "sum":
            return sum(values)
        if self.fname == "avg":
            return sum(values) / len(values)
        if self.fname == "min":
            return min(values)
        return max(values)

    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        out = TreeSequence()
        for tree in inputs[0]:
            copy = tree.clone()
            nodes = copy.nodes_in_class(self.lcl)
            result = TNode(self.fname, self._compute(nodes))
            result.lcls.add(self.new_lcl)
            if nodes:
                parents = copy.root.parent_map()
                host = parents.get(id(nodes[0]), copy.root)
            else:
                host = copy.root
            host.add_child(result)
            copy.invalidate()
            out.append(copy)
        return out

    def execute_batch(self, ctx: Context, inputs: list):
        """Columnar form: the aggregate node splices into the row slice.

        Per row the class values fold straight off the value column and
        the result node — tag ``fname``, fresh class label, no stored
        id — is inserted at the end of the host's subtree slice, which
        is exactly "as a sibling of the class nodes" (the per-tree path
        appends it as the host's last child).
        """
        source = inputs[0]
        if not isinstance(source, ColumnBatch) or not self.new_lcl:
            return super().execute_batch(ctx, inputs)
        src_offsets = source.offsets
        src_tags, src_values = source.tags, source.values
        src_nids, src_labels = source.nids, source.labels
        src_parents = source.parents
        offsets = [0]
        tags: List[str] = []
        values: list = []
        nids: list = []
        labels: List[int] = []
        parents: List[int] = []
        for row in range(len(source)):
            start, end = src_offsets[row], src_offsets[row + 1]
            positions = [
                j for j in range(start, end) if src_labels[j] == self.lcl
            ]
            result = self._fold(
                len(positions), (src_values[j] for j in positions)
            )
            if positions:
                first_parent = src_parents[positions[0]]
                host = first_parent if first_parent >= 0 else 0
            else:
                host = 0
            if host == 0:
                insert = end - start
            else:
                insert = source._subtree_end(start + host) - start
            tags.extend(src_tags[start:start + insert])
            values.extend(src_values[start:start + insert])
            nids.extend(src_nids[start:start + insert])
            labels.extend(src_labels[start:start + insert])
            parents.extend(src_parents[start:start + insert])
            tags.append(self.fname)
            values.append(result)
            nids.append(None)
            labels.append(self.new_lcl)
            parents.append(host)
            tags.extend(src_tags[start + insert:end])
            values.extend(src_values[start + insert:end])
            nids.extend(src_nids[start + insert:end])
            labels.extend(src_labels[start + insert:end])
            for j in range(start + insert, end):
                parent = src_parents[j]
                parents.append(parent + 1 if parent >= insert else parent)
            offsets.append(len(tags))
        out = ColumnBatch.from_lists(
            offsets, tags, values, nids, labels, parents
        )
        self.note_batch(ctx, out)
        return out

    def lc_produced(self):
        return {self.new_lcl} if self.new_lcl else set()

    def lc_consumed(self):
        return {self.lcl}

    def params(self) -> str:
        return f"{self.fname}(({self.lcl})) -> ({self.new_lcl})"
