"""Aggregate-Function ``AF[fname, LCL_a, newLCL]`` (Section 2.3).

Applies an aggregate (count, sum, avg, min, max) over all nodes of one
logical class per tree, and adds a result node *as a sibling of the class
nodes*, marked with a fresh class label.  "If LCa maps to the empty set,
the generated node will contain 0 for count and the flag 'empty' for all
other functions" — in that case the node attaches under the tree root (the
paper leaves the sibling position undefined when the class is empty).

This operator runs entirely on in-memory witness trees — no data access —
which is why TLC computes counts "without touching the data in a fraction
of a second" while navigation iterates over all nodes (Section 6.3).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import AlgebraError
from ..model.sequence import TreeSequence
from ..model.tree import TNode, XTree
from ..model.value import coerce_number
from .base import Context, Operator

#: Aggregate functions of the Figure 5 grammar.
FUNCTIONS = ("count", "sum", "avg", "min", "max")


class AggregateOp(Operator):
    """Per-tree aggregate over a logical class, materialised as a node."""

    name = "Aggregate"

    def __init__(
        self,
        fname: str,
        lcl: int,
        new_lcl: int,
        input_op: Operator = None,
    ) -> None:
        super().__init__([input_op] if input_op is not None else [])
        if fname not in FUNCTIONS:
            raise AlgebraError(f"unknown aggregate function {fname!r}")
        self.fname = fname
        self.lcl = lcl
        self.new_lcl = new_lcl

    # ------------------------------------------------------------------
    def _compute(self, nodes: List[TNode]) -> Optional[object]:
        if self.fname == "count":
            return len(nodes)
        values = [
            number
            for number in (coerce_number(n.value) for n in nodes)
            if number is not None
        ]
        if not values:
            return "empty"
        if self.fname == "sum":
            return sum(values)
        if self.fname == "avg":
            return sum(values) / len(values)
        if self.fname == "min":
            return min(values)
        return max(values)

    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        out = TreeSequence()
        for tree in inputs[0]:
            copy = tree.clone()
            nodes = copy.nodes_in_class(self.lcl)
            result = TNode(self.fname, self._compute(nodes))
            result.lcls.add(self.new_lcl)
            if nodes:
                parents = copy.root.parent_map()
                host = parents.get(id(nodes[0]), copy.root)
            else:
                host = copy.root
            host.add_child(result)
            copy.invalidate()
            out.append(copy)
        return out

    def lc_produced(self):
        return {self.new_lcl} if self.new_lcl else set()

    def lc_consumed(self):
        return {self.lcl}

    def params(self) -> str:
        return f"{self.fname}(({self.lcl})) -> ({self.new_lcl})"
