"""The Join operator ``J[apt, p]`` (Section 2.3).

Joins two tree sequences on value predicates between logical classes and
stitches matching trees under a fresh ``join_root`` node.  The right-hand
edge of the result structure may carry any of the four matching
specifications: ``-`` pairs one left tree with one right tree per output,
``+``/``*`` nest *all* matching right trees under one output per left tree
(the Nest-Value-Join of Section 5.2), and ``?``/``*`` keep left trees with
no match (left-outer variants).

Physical strategy: sort–merge–sort (Section 5.1) — sort both sides by join
value, merge, then re-sort the output by the node id of the left input's
root to restore document order without a nested-loop join.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import AlgebraError
from ..model.sequence import TreeSequence
from ..model.tree import TNode, XTree
from ..model.value import compare
from ..physical.structural_join import fast_path_enabled
from ..physical.value_join import nest_merge, theta_join
from .base import (
    Context,
    JoinPredicate,
    Operator,
    class_node_id,
    class_value,
)


def _key_fn(lcl: int, by_id: bool):
    """Join-key extractor: class content, or a node-identity string."""
    if not by_id:
        return lambda tree: class_value(tree, lcl, "Join")

    def key(tree):
        nid = class_node_id(tree, lcl, "Join")
        if nid is None:
            return None
        return "#" + ":".join(str(part) for part in nid.order_key)

    return key


class JoinOp(Operator):
    """Value (or cartesian) join of two tree sequences."""

    name = "Join"

    def __init__(
        self,
        left: Operator,
        right: Operator,
        predicates: Sequence[JoinPredicate] = (),
        root_lcl: int = 0,
        right_mspec: str = "-",
    ) -> None:
        super().__init__([left, right])
        if right_mspec not in ("-", "?", "+", "*"):
            raise AlgebraError(f"invalid join mspec {right_mspec!r}")
        self.predicates: List[JoinPredicate] = list(predicates)
        self.root_lcl = root_lcl
        self.right_mspec = right_mspec

    # ------------------------------------------------------------------
    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        left, right = inputs
        if not self.predicates:
            pairs = [(l, r) for l in left for r in right]
        else:
            first = self.predicates[0]
            left_key = _key_fn(first.left_lcl, first.by_id)
            right_key = _key_fn(first.right_lcl, first.by_id)
            # joins never pair trees with NULL join values
            lefts = [t for t in left if left_key(t) is not None]
            rights = [t for t in right if right_key(t) is not None]
            pairs = theta_join(
                lefts,
                rights,
                first.op,
                left_key=left_key,
                right_key=right_key,
                metrics=ctx.metrics,
            )
            for pred in self.predicates[1:]:
                lkey = _key_fn(pred.left_lcl, pred.by_id)
                rkey = _key_fn(pred.right_lcl, pred.by_id)
                if pred.by_id:
                    pairs = [
                        (l, r) for l, r in pairs if lkey(l) == rkey(r)
                    ]
                else:
                    pairs = [
                        (l, r)
                        for l, r in pairs
                        if compare(lkey(l), pred.op, rkey(r))
                    ]
        return self._stitch(ctx, left, pairs)

    # ------------------------------------------------------------------
    def _stitch(
        self,
        ctx: Context,
        all_left: TreeSequence,
        pairs: List[Tuple[XTree, XTree]],
    ) -> TreeSequence:
        """Build join_root output trees per the right-edge mSpec.

        The pairs arrive in join-value order (the merge output); we sort
        them back into document order *before* constructing the output
        trees, so the fresh join_root temporary ids ascend in document
        order — Property 4 of Section 5.1, which is what lets subsequent
        operators re-establish order by sorting on root ids.
        """
        outer = self.right_mspec in ("?", "*")
        decorated: List[Tuple[tuple, tuple, XTree, List[XTree]]] = []
        if self.right_mspec in ("+", "*"):
            clusters = nest_merge(
                pairs, list(all_left), outer=outer, metrics=ctx.metrics
            )
            for left_tree, cluster in clusters:
                first_right = (
                    cluster[0].order_key if cluster else (2, 0, 0)
                )
                decorated.append(
                    (left_tree.order_key, first_right, left_tree, cluster)
                )
        else:
            matched = set()
            for left_tree, right_tree in pairs:
                matched.add(id(left_tree))
                decorated.append(
                    (
                        left_tree.order_key,
                        right_tree.order_key,
                        left_tree,
                        [right_tree],
                    )
                )
            if outer:
                for left_tree in all_left:
                    if id(left_tree) not in matched:
                        decorated.append(
                            (left_tree.order_key, (2, 0, 0), left_tree, [])
                        )
        # the final sort of sort-merge-sort: restore document order
        ctx.metrics.sort_ops += 1
        decorated.sort(key=lambda item: (item[0], item[1]))
        result = TreeSequence()
        for _, _, left_tree, rights in decorated:
            result.append(self._make_tree(left_tree, rights))
            ctx.metrics.trees_built += 1
        return result

    def _make_tree(self, left: XTree, rights: List[XTree]) -> XTree:
        root = TNode("join_root", lcls={self.root_lcl} if self.root_lcl else None)
        if fast_path_enabled():
            # share the input trees instead of cloning them: operators
            # never mutate their inputs (memoised results are shared
            # between consumers already), so stitching the roots in
            # place is safe — anything that needs to modify the output
            # clones it first, which deep-copies through shared nodes
            root.add_child(left.root)
            for right in rights:
                root.add_child(right.root)
            result = XTree(root)
            sources = [left] + rights
            flags = {t._saw_shadowed for t in sources}
            if flags == {False}:
                result._saw_shadowed = False
            elif True in flags:
                result._saw_shadowed = True
            if all(t._lc_index is not None for t in sources):
                # derive the stitched tree's LC index by concatenation:
                # the fresh root comes first in pre-order, then every
                # input subtree in child order
                index = {}
                if self.root_lcl:
                    index[self.root_lcl] = [root]
                for source in sources:
                    for lcl, nodes in source._lc_index.items():
                        index.setdefault(lcl, []).extend(nodes)
                result._lc_index = index
            return result
        root.add_child(left.root.clone())
        for right in rights:
            root.add_child(right.root.clone())
        return XTree(root)

    def lc_produced(self):
        return {self.root_lcl} if self.root_lcl else set()

    def lc_consumed(self):
        out = set()
        for pred in self.predicates:
            out.add(pred.left_lcl)
            out.add(pred.right_lcl)
        return out

    def params(self) -> str:
        preds = ", ".join(p.describe() for p in self.predicates) or "cartesian"
        return f"[{preds}] mspec={self.right_mspec!r} root_lcl={self.root_lcl}"
