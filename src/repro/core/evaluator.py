"""Bottom-up, set-at-a-time evaluation of TLC plans.

Plans are operator trees (occasionally DAGs after rewrites share a
sub-plan); evaluation memoises by operator identity so shared sub-plans
run exactly once — the executable counterpart of pattern-tree reuse.
"""

from __future__ import annotations

from typing import Dict

from ..model.sequence import TreeSequence
from ..storage.database import Database
from .base import Context, Operator


def evaluate(plan: Operator, ctx: Context) -> TreeSequence:
    """Evaluate ``plan`` bottom-up and return its output sequence."""
    memo: Dict[int, TreeSequence] = {}

    def run(op: Operator) -> TreeSequence:
        key = id(op)
        if key in memo:
            return memo[key]
        inputs = [run(child) for child in op.inputs]
        result = op.execute(ctx, inputs)
        memo[key] = result
        return result

    return run(plan)


def evaluate_on(plan: Operator, db: Database) -> TreeSequence:
    """Convenience wrapper: evaluate against a database directly."""
    return evaluate(plan, Context(db))
