"""Bottom-up, set-at-a-time evaluation of TLC plans.

Plans are operator trees (occasionally DAGs after rewrites share a
sub-plan); evaluation memoises by operator identity so shared sub-plans
run exactly once — the executable counterpart of pattern-tree reuse.

The walk is an explicit-stack post-order traversal rather than a
recursive one: fuzzer-generated or deeply nested FLWOR plans can be
thousands of operators deep, far past Python's recursion limit.  Each
operator is pushed twice — once to expand its inputs, once (``ready``)
to execute after they are all memoised; LIFO ordering guarantees a
shared operator's first expansion finishes before any later reference
pops, so every later reference is a memo hit, exactly as in the
recursive formulation.

Passing a :class:`~repro.trace.record.Tracer` records per-operator wall
time, cardinalities and counter deltas; the default ``tracer=None`` path
is a separate loop that does no trace bookkeeping at all.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..columns.batch import as_tree_sequence, batch_enabled
from ..model.sequence import TreeSequence
from ..physical.structural_join import fast_path_enabled
from ..storage.database import Database
from ..telemetry import hooks as telemetry
from .base import Context, Operator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..trace.record import Tracer


def evaluate(
    plan: Operator, ctx: Context, tracer: Optional["Tracer"] = None
) -> TreeSequence:
    """Evaluate ``plan`` bottom-up and return its output sequence.

    When the context carries :class:`~repro.core.limits.ExecutionLimits`
    the walk is cooperative: the limits are checked before every operator
    execution (deadline, cancellation) and every operator output is
    checked against the cardinality budget, so a runaway query aborts
    with a structured :class:`~repro.errors.ExecutionLimitError` at the
    next operator boundary instead of hanging.  The explicit stack makes
    this cheap — one ``None`` test per operator on the unbudgeted path.

    The context's scan cache is entered for the duration of the walk
    (see :meth:`~repro.patterns.scan_cache.ScanCache.begin_query`):
    concurrently sharing one cache between two executions raises
    :class:`~repro.errors.ScanCacheLifetimeError` rather than mixing the
    two queries' scans.
    """
    memo: Dict[int, TreeSequence] = {}
    stack: List[Tuple[Operator, bool]] = [(plan, False)]
    limits = ctx.limits
    if limits is not None:
        limits.start()
    cache = ctx.scan_cache
    if cache is not None:
        cache.begin_query(ctx.db)
    # one boolean test per evaluation: telemetry never touches the
    # per-operator loop, only the whole-plan boundary
    telemetry_on = telemetry.enabled()
    walk_started = time.perf_counter() if telemetry_on else 0.0
    # batch-at-a-time evaluation rides on the fast path (extension
    # splicing reuses its anchored-variant machinery), so both switches
    # must be on; the choice is pinned once per walk.  A cost-planned
    # plan can narrow it further: ``exec_currency == "tree"`` on the
    # root keeps the whole walk per-tree, and a per-operator
    # ``exec_mode == "tree"`` veto (a stranded columnar operator inside
    # a batch plan) forces just that operator onto its per-tree body —
    # its columnar inputs are materialised first, which is exactly the
    # boundary cost the planner charged the veto with.
    batch = (
        batch_enabled()
        and fast_path_enabled()
        and getattr(plan, "exec_currency", None) != "tree"
    )

    def run_op(op: Operator, inputs: List[TreeSequence]) -> TreeSequence:
        if batch:
            if getattr(op, "exec_mode", None) == "tree":
                return op.execute(
                    ctx,
                    [
                        as_tree_sequence(seq, ctx.metrics)
                        for seq in inputs
                    ],
                )
            return op.execute_batch(ctx, inputs)
        return op.execute(ctx, inputs)

    try:
        if tracer is None:
            while stack:
                op, ready = stack.pop()
                key = id(op)
                if key in memo:
                    continue
                if ready:
                    inputs = [memo[id(child)] for child in op.inputs]
                    if limits is not None:
                        limits.check(op.name)
                    result = run_op(op, inputs)
                    if limits is not None:
                        limits.check_output(op.name, len(result))
                    memo[key] = result
                else:
                    stack.append((op, True))
                    for child in reversed(op.inputs):
                        stack.append((child, False))
        else:
            while stack:
                op, ready = stack.pop()
                key = id(op)
                if key in memo:
                    tracer.memo_hit(op)
                    continue
                if ready:
                    inputs = [memo[id(child)] for child in op.inputs]
                    if limits is not None:
                        limits.check(op.name)
                    before = tracer.counters_before()
                    started = time.perf_counter()
                    result = run_op(op, inputs)
                    elapsed = time.perf_counter() - started
                    tracer.record(op, inputs, result, elapsed, before)
                    if limits is not None:
                        limits.check_output(op.name, len(result))
                    memo[key] = result
                else:
                    stack.append((op, True))
                    for child in reversed(op.inputs):
                        stack.append((child, False))
    finally:
        if cache is not None:
            cache.end_query()
    # the plan's consumer expects trees; the final conversion is the
    # inherent boundary of the batch runtime, not a fallback
    result = as_tree_sequence(memo[id(plan)], ctx.metrics)
    if telemetry_on:
        telemetry.instrument("evaluator.run")
        telemetry.instrument(
            "evaluator.seconds", time.perf_counter() - walk_started
        )
        telemetry.instrument("evaluator.trees", len(result))
    return result


def evaluate_on(plan: Operator, db: Database) -> TreeSequence:
    """Convenience wrapper: evaluate against a database directly."""
    return evaluate(plan, Context(db))
