"""The Filter operator ``F[LCL, p, m]`` (Section 2.3).

Outputs only the trees whose class-``LCL`` nodes satisfy predicate ``p``
under iteration mode ``m``:

* ``E``   (Every, the default): the predicate must hold at *all* nodes of
  the class; an empty class passes ("the semantics for Every will let the
  input tree pass if LCf maps to the empty set", footnote 2),
* ``ALO`` (at least one): existential quantification,
* ``EX``  (exactly one): satisfied at exactly one node of the class,
* ``FIRST``: satisfied at the first node of the class in input data node
  ordering — the extra interpretation Section 2.3 suggests ("apply to
  first element (on the basis of input data node ordering)").
"""

from __future__ import annotations

from typing import List

from ..columns.batch import ColumnBatch
from ..errors import AlgebraError
from ..model.sequence import TreeSequence
from ..model.value import compare
from .base import ClassPredicate, Context, Operator

#: Supported iteration modes.
MODES = ("E", "ALO", "EX", "FIRST")


class FilterOp(Operator):
    """Filter trees by a predicate over one logical class."""

    name = "Filter"

    def __init__(
        self,
        predicate: ClassPredicate,
        mode: str = "E",
        input_op: Operator = None,
    ) -> None:
        super().__init__([input_op] if input_op is not None else [])
        if mode not in MODES:
            raise AlgebraError(f"unknown filter mode {mode!r}")
        self.predicate = predicate
        self.mode = mode

    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        out = TreeSequence()
        for tree in inputs[0]:
            nodes = tree.nodes_in_class(self.predicate.lcl)
            hits = sum(1 for node in nodes if self.predicate.test(node))
            if self.mode == "E":
                keep = hits == len(nodes)
            elif self.mode == "ALO":
                keep = hits >= 1
            elif self.mode == "EX":
                keep = hits == 1
            else:  # FIRST: the node earliest in data node ordering decides
                ordered = sorted(nodes, key=lambda n: n.nid.order_key)
                keep = bool(ordered) and self.predicate.test(ordered[0])
            if keep:
                out.append(tree)
        return out

    def execute_batch(self, ctx: Context, inputs: list):
        """Batch form: test the class's value column, keep rows by index."""
        source = inputs[0]
        if not isinstance(source, ColumnBatch):
            return self.execute(ctx, inputs)
        predicate = self.predicate
        lcl, op, rhs = predicate.lcl, predicate.op, predicate.value
        mode = self.mode
        values, nids = source.values, source.nids
        keep_rows = []
        for row in range(len(source)):
            positions = source.class_positions(row, lcl)
            if mode == "FIRST":
                ordered = sorted(positions, key=lambda p: nids[p].order_key)
                keep = bool(ordered) and compare(values[ordered[0]], op, rhs)
            else:
                hits = sum(
                    1 for p in positions if compare(values[p], op, rhs)
                )
                if mode == "E":
                    keep = hits == len(positions)
                elif mode == "ALO":
                    keep = hits >= 1
                else:  # EX
                    keep = hits == 1
            if keep:
                keep_rows.append(row)
        out = source.select_rows(keep_rows)
        self.note_batch(ctx, out)
        return out

    def lc_consumed(self):
        return {self.predicate.lcl}

    def params(self) -> str:
        return f"{self.mode} {self.predicate.describe()}"


class TreeFilterOp(Operator):
    """Filter trees by an arbitrary per-tree predicate.

    Used for predicate forms that fall outside ``F[LCL, p, m]``'s
    single-class shape: value comparisons between two classes of the same
    tree, and disjunctions over several classes (the OR translation).  The
    ``label`` names the predicate in plan explanations; ``lcls`` declares
    which classes the opaque predicate reads so that static analysis and
    the rewrite detectors can account for them.
    """

    name = "TreeFilter"

    def __init__(
        self,
        predicate,
        label: str,
        input_op: Operator = None,
        lcls=(),
    ):
        super().__init__([input_op] if input_op is not None else [])
        self.predicate = predicate
        self.label = label
        self.lcls = list(lcls)

    def lc_consumed(self):
        return set(self.lcls)

    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        out = TreeSequence()
        for tree in inputs[0]:
            if self.predicate(tree):
                out.append(tree)
        return out

    def execute_batch(self, ctx: Context, inputs: list):
        """Batch form for the two declared predicate shapes.

        :class:`CrossClassPredicate` and :class:`DisjunctivePredicate`
        read only class values, so they evaluate straight off the
        columns; a genuinely opaque callable needs real trees and takes
        the materialising fallback.
        """
        source = inputs[0]
        if not isinstance(source, ColumnBatch):
            return self.execute(ctx, inputs)
        predicate = self.predicate
        keep_rows = []
        if isinstance(predicate, CrossClassPredicate):
            op = predicate.op
            for row in range(len(source)):
                lefts = source.class_values(row, predicate.left_lcl)
                rights = source.class_values(row, predicate.right_lcl)
                if any(
                    compare(left, op, right)
                    for left in lefts
                    for right in rights
                ):
                    keep_rows.append(row)
        elif isinstance(predicate, DisjunctivePredicate):
            for row in range(len(source)):
                if any(
                    compare(value, pred.op, pred.value)
                    for pred in predicate.predicates
                    for value in source.class_values(row, pred.lcl)
                ):
                    keep_rows.append(row)
        else:
            return super().execute_batch(ctx, inputs)
        out = source.select_rows(keep_rows)
        self.note_batch(ctx, out)
        return out

    def params(self) -> str:
        return self.label


class CrossClassPredicate:
    """Predicate: some pair of (left, right) class nodes compares true.

    Implements a value join whose sides live in the same tree (same-source
    joins), with existential semantics over the node pairs.  A class (not
    a closure) so that plans holding one pickle across process boundaries.
    """

    __slots__ = ("left_lcl", "op", "right_lcl")

    def __init__(self, left_lcl: int, op: str, right_lcl: int) -> None:
        self.left_lcl = left_lcl
        self.op = op
        self.right_lcl = right_lcl

    def __call__(self, tree) -> bool:
        from ..model.value import compare

        lefts = tree.nodes_in_class(self.left_lcl)
        rights = tree.nodes_in_class(self.right_lcl)
        return any(
            compare(l.value, self.op, r.value)
            for l in lefts
            for r in rights
        )

    def __getstate__(self):
        return (self.left_lcl, self.op, self.right_lcl)

    def __setstate__(self, state) -> None:
        self.left_lcl, self.op, self.right_lcl = state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CrossClassPredicate(({self.left_lcl}) "
            f"{self.op} ({self.right_lcl}))"
        )


class DisjunctivePredicate:
    """Predicate: at least one disjunct holds at some node of its class.

    Like :class:`CrossClassPredicate`, a picklable callable rather than a
    closure, so OR-translated plans survive ``pickle`` round trips.
    """

    __slots__ = ("predicates",)

    def __init__(self, predicates: List[ClassPredicate]) -> None:
        self.predicates = list(predicates)

    def __call__(self, tree) -> bool:
        for pred in self.predicates:
            if any(pred.test(n) for n in tree.nodes_in_class(pred.lcl)):
                return True
        return False

    def __getstate__(self):
        return self.predicates

    def __setstate__(self, state) -> None:
        self.predicates = state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DisjunctivePredicate({self.predicates!r})"


def cross_class_predicate(left_lcl: int, op: str, right_lcl: int):
    """Build the same-tree value-join predicate (see the class)."""
    return CrossClassPredicate(left_lcl, op, right_lcl)


def disjunctive_predicate(predicates: List[ClassPredicate]):
    """Build the OR-over-classes predicate (see the class)."""
    return DisjunctivePredicate(predicates)
