"""The TLC algebra: operators of Section 2.3 plus Flatten/Shadow/Illuminate."""

from .aggregate import FUNCTIONS, AggregateOp
from .base import ClassPredicate, Context, JoinPredicate, Operator, class_value
from .construct import CClassRef, CElement, CText, ConstructOp
from .dedup import DedupOp
from .evaluator import evaluate, evaluate_on
from .filter import MODES, FilterOp
from .flatten import FlattenOp
from .join import JoinOp
from .limits import ExecutionLimits
from .project import ProjectOp
from .select import SelectOp
from .shadow import IlluminateOp, ShadowOp
from .sort_op import SortOp
from .union import UnionOp
from .visualize import plan_to_dot

__all__ = [
    "FUNCTIONS",
    "AggregateOp",
    "ClassPredicate",
    "Context",
    "JoinPredicate",
    "Operator",
    "class_value",
    "CClassRef",
    "CElement",
    "CText",
    "ConstructOp",
    "DedupOp",
    "evaluate",
    "evaluate_on",
    "ExecutionLimits",
    "MODES",
    "FilterOp",
    "FlattenOp",
    "JoinOp",
    "ProjectOp",
    "SelectOp",
    "IlluminateOp",
    "ShadowOp",
    "SortOp",
    "UnionOp",
    "plan_to_dot",
]
