"""The Flatten operator ``FL[LCL_P, LCL_C]`` (Definition 5).

Breaks nested trees apart *without going back to the database*: for every
tree and every pair (p ∈ P, c ∈ C) it emits one output tree identical to
the input except only ``c`` is retained among C — all other members of C,
with their subtrees, are dropped.  P must bind to a singleton per tree and
C must map to children of P.

This is the second half of the Flatten rewrite (Section 4.2): evaluate the
``*``-edge once, run the aggregate, then flatten to recover the
one-pair-per-tree structure the join needs.
"""

from __future__ import annotations

from typing import List

from ..errors import AlgebraError
from ..model.sequence import TreeSequence
from ..model.tree import XTree
from .base import Context, Operator


class FlattenOp(Operator):
    """Emit one tree per member of class C, dropping its siblings in C."""

    name = "Flatten"

    def __init__(
        self, parent_lcl: int, child_lcl: int, input_op: Operator = None
    ) -> None:
        super().__init__([input_op] if input_op is not None else [])
        self.parent_lcl = parent_lcl
        self.child_lcl = child_lcl

    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        out = TreeSequence()
        for tree in inputs[0]:
            parent = tree.singleton(self.parent_lcl, self.name)
            members = tree.nodes_in_class(self.child_lcl)
            if not all(any(m is c for c in parent.children) for m in members):
                raise AlgebraError(
                    f"Flatten: class {self.child_lcl} must map to children "
                    f"of class {self.parent_lcl}"
                )
            for keep_index in range(len(members)):
                copy = tree.clone()
                parent_copy = copy.singleton(self.parent_lcl, self.name)
                member_position = 0
                survivors = []
                for child in parent_copy.children:
                    if self.child_lcl in child.lcls:
                        if member_position == keep_index:
                            survivors.append(child)
                        member_position += 1
                    else:
                        survivors.append(child)
                parent_copy.children = survivors
                copy.invalidate()
                out.append(copy)
                ctx.metrics.trees_built += 1
        return out

    def lc_consumed(self):
        return {self.parent_lcl, self.child_lcl}

    def params(self) -> str:
        return f"({self.parent_lcl}, {self.child_lcl})"
