"""Plan visualization: render operator trees as Graphviz DOT.

The paper presents its plans as operator-box diagrams (Figures 2, 7, 8);
``plan_to_dot`` renders ours the same way — one box per operator with its
parameters, edges following dataflow bottom-up.  Feed the output to
``dot -Tsvg`` or any Graphviz viewer::

    from repro.core.visualize import plan_to_dot
    print(plan_to_dot(engine.plan(query).plan))
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .base import Operator


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def plan_to_dot(
    root: Operator,
    title: str = "TLC plan",
    annotate: Optional[Callable[[Operator], str]] = None,
) -> str:
    """Render the plan rooted at ``root`` as a DOT digraph.

    Shared sub-plans (after the reuse rewrite) appear once with multiple
    incoming edges — the DAG structure is visible, unlike in the
    indented text rendering.  ``annotate`` may supply extra label text
    per operator (the runtime tracer uses it for measured costs).
    """
    ids: Dict[int, str] = {}
    lines: List[str] = [
        "digraph plan {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica", fontsize=10];',
        f'  label="{_escape(title)}"; labelloc=t;',
    ]

    def node_id(op: Operator) -> str:
        key = id(op)
        if key not in ids:
            ids[key] = f"op{len(ids)}"
            params = op.params()
            label = op.name if not params else f"{op.name}\\n{_escape(params)}"
            if annotate is not None:
                label += f"\\n{_escape(annotate(op))}"
            lines.append(f'  {ids[key]} [label="{label}"];')
        return ids[key]

    seen = set()

    def walk(op: Operator) -> None:
        if id(op) in seen:
            return
        seen.add(id(op))
        this = node_id(op)
        for child in op.inputs:
            that = node_id(child)
            lines.append(f"  {that} -> {this};")
            walk(child)

    walk(root)
    lines.append("}")
    return "\n".join(lines)
