"""Cooperative execution limits: deadlines, output budgets, cancellation.

A query run under the service layer (or any caller that passes ``limits``
to :meth:`Engine.run`) must never hang: past its wall-clock deadline or
output-cardinality budget it aborts with a structured error instead.
Python threads cannot be interrupted from outside, so the abort is
*cooperative* — the explicit-stack evaluator loop checks the limits
before every operator execution (cheap: one attribute test plus, every
check, one ``time.monotonic`` call), and the pattern matcher ticks the
same limits between candidate batches so a single long Select cannot
blow the budget unnoticed.

The three aborts are structured exceptions under
:class:`~repro.errors.ExecutionLimitError`:

* :class:`~repro.errors.QueryTimeoutError` — past the deadline;
* :class:`~repro.errors.ResourceLimitError` — an operator produced more
  trees than the budget allows (checked on every intermediate output,
  so a mid-plan Join explosion aborts at the Join);
* :class:`~repro.errors.QueryCancelledError` — the limits' cancel event
  was set (e.g. by :meth:`repro.service.QueryHandle.cancel`).
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from ..errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ResourceLimitError,
)

#: How many matcher ticks pass between deadline checks.  Candidate loops
#: run millions of iterations; reading the clock on each would dominate.
TICK_INTERVAL = 1024


class ExecutionLimits:
    """Budgets one query execution and raises when they are exceeded.

    ``deadline`` is a wall-clock budget in seconds measured from
    :meth:`start` (the evaluator calls it as execution begins, so the
    budget covers execution, not compile or queue time).  ``max_trees``
    bounds the cardinality of every operator output.  ``cancel_event``
    is an optional externally owned :class:`threading.Event`; one is
    created on demand so :meth:`cancel` always works.

    A limits object belongs to one execution: it carries the started
    clock anchor of that run.  Re-running with the same object restarts
    the deadline (``start`` re-anchors), which is what a retry on the
    legacy join path wants — the retry inherits the *remaining* budget
    via :meth:`remaining`, not a fresh one, when the caller asks for it.
    """

    __slots__ = ("deadline", "max_trees", "_cancel", "_started", "_ticks")

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_trees: Optional[int] = None,
        cancel_event: Optional[threading.Event] = None,
    ) -> None:
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (seconds)")
        if max_trees is not None and max_trees <= 0:
            raise ValueError("max_trees must be positive")
        self.deadline = deadline
        self.max_trees = max_trees
        self._cancel = cancel_event
        self._started: Optional[float] = None
        self._ticks = 0

    # ------------------------------------------------------------------
    # clock anchoring
    # ------------------------------------------------------------------
    def start(self) -> "ExecutionLimits":
        """Anchor the deadline clock at *now*, once.

        Idempotent: the first call (from the evaluator as execution
        begins, or from an early :meth:`check`) anchors the budget;
        later calls keep the original anchor.  This is what makes a
        legacy-path retry share the *same* budget as the failed fast
        attempt — the service re-evaluates with the same limits object
        and the deadline keeps counting from the first execution.
        A limits object is single-use; budget a fresh run with a fresh
        object.
        """
        if self._started is None:
            self._started = time.monotonic()
        return self

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 before the first start)."""
        if self._started is None:
            return 0.0
        return time.monotonic() - self._started

    def remaining(self) -> Optional[float]:
        """Seconds left in the deadline budget (None when unlimited)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.elapsed())

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    @property
    def cancel_event(self) -> threading.Event:
        """The cancel event, created on first use."""
        if self._cancel is None:
            self._cancel = threading.Event()
        return self._cancel

    def cancel(self) -> None:
        """Request a cooperative abort of the execution using these limits."""
        self.cancel_event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._cancel is not None and self._cancel.is_set()

    # ------------------------------------------------------------------
    # the checks the evaluator and matcher call
    # ------------------------------------------------------------------
    def check(self, operator: str = "plan") -> None:
        """Raise if cancelled or past the deadline (pre-execute check)."""
        if self.cancelled:
            raise QueryCancelledError()
        if self.deadline is not None:
            if self._started is None:
                self.start()
            elapsed = time.monotonic() - self._started
            if elapsed > self.deadline:
                raise QueryTimeoutError(self.deadline, elapsed)

    def check_output(self, operator: str, produced: int) -> None:
        """Raise if an operator output exceeds the cardinality budget."""
        if self.max_trees is not None and produced > self.max_trees:
            raise ResourceLimitError(self.max_trees, produced, operator)

    def tick(self) -> None:
        """Cheap per-iteration hook for tight loops (matcher candidates).

        Reads the clock only every :data:`TICK_INTERVAL` calls; the other
        calls cost one integer increment and compare.
        """
        self._ticks += 1
        if self._ticks >= TICK_INTERVAL:
            self._ticks = 0
            self.check()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = []
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline}s")
        if self.max_trees is not None:
            parts.append(f"max_trees={self.max_trees}")
        if self.cancelled:
            parts.append("cancelled")
        return f"<ExecutionLimits {' '.join(parts) or 'unlimited'}>"
