"""The Select operator: pattern-tree matching as an algebra step.

``S[apt](S)`` performs a pattern tree match for each input tree and outputs
"the entire set of the matching witness trees for all input trees"
(Section 2.3).  Three cases:

* **document-rooted** (no input): the pattern matches the stored document —
  the leaf Selects of every plan (boxes 1 and 2 of Figure 7);
* **extension** (root references a logical class): the input trees are
  extended below their class nodes, reusing earlier match work — the
  pattern-tree-reuse Selects (boxes 8 and 9 of Figure 7);
* **in-memory**: the pattern is matched against each input tree itself —
  the TAX-style semantics, also used on constructed (temporary) content.
"""

from __future__ import annotations

from typing import List

from ..columns.batch import ColumnBatch, as_tree_sequence
from ..errors import AlgebraError
from ..model.sequence import TreeSequence
from ..patterns.apt import APT
from ..patterns.match import match_in_tree
from .base import Context, Operator


class SelectOp(Operator):
    """Select ``S[apt]``; see module docstring for the three modes."""

    name = "Select"

    def __init__(self, apt: APT, input_op: Operator = None) -> None:
        super().__init__([input_op] if input_op is not None else [])
        self.apt = apt

    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        if self.apt.root.lc_ref is not None:
            if not inputs:
                raise AlgebraError("extension Select needs an input")
            return ctx.matcher.extend(self.apt, inputs[0])
        if not inputs:
            if self.apt.doc is None:
                raise AlgebraError("leaf Select needs a bound document")
            return ctx.matcher.match(self.apt)
        out = TreeSequence()
        ctx.metrics.pattern_matches += 1
        for tree in inputs[0]:
            out.extend(match_in_tree(self.apt, tree))
        return out

    def execute_batch(self, ctx: Context, inputs: list):
        """Batch form: emit witness columns instead of witness trees.

        Leaf Selects flatten match variants straight into a
        :class:`~repro.columns.batch.ColumnBatch`; extension Selects
        splice branch segments into input rows.  Each mode keeps a
        per-tree escape hatch (holistic matching, temporary anchors,
        in-memory matching) through the base fallback semantics.
        """
        if self.apt.root.lc_ref is not None:
            if not inputs:
                raise AlgebraError("extension Select needs an input")
            source = inputs[0]
            if isinstance(source, ColumnBatch):
                out = ctx.matcher.extend_batch(self.apt, source)
                if out is not None:
                    self.note_batch(ctx, out)
                    return out
                source = as_tree_sequence(source, ctx.metrics, fallback=True)
            return ctx.matcher.extend(self.apt, source)
        if not inputs:
            if self.apt.doc is None:
                raise AlgebraError("leaf Select needs a bound document")
            out = ctx.matcher.match_batch(self.apt)
            if out is not None:
                self.note_batch(ctx, out)
                return out
            return ctx.matcher.match(self.apt)
        # in-memory matching walks real trees
        return self.execute(
            ctx, [as_tree_sequence(inputs[0], ctx.metrics, fallback=True)]
        )

    def lc_produced(self):
        return {lcl for lcl in self.apt.lcls() if lcl}

    def lc_consumed(self):
        ref = self.apt.root.lc_ref
        return {ref} if ref is not None else set()

    def params(self) -> str:
        root = self.apt.root
        if root.lc_ref is not None:
            return f"extend ({root.lc_ref})"
        return f"doc={self.apt.doc!r} root={root.test.describe()}"
