"""The Construct operator ``C[c]`` (Section 2.3).

Takes an *annotated construct-pattern tree*: an APT-like tree with
"facilities for tagging, renaming, and arbitrary tree assembly".  Our
construct patterns are built from three node kinds:

* :class:`CElement` — a new element with a tag, optional attributes whose
  values are literals or class references, and child construct nodes;
* :class:`CClassRef` — splice the *full subtrees* of every node of a
  logical class (this is where materialisation I/O is paid: stored nodes
  are fetched through the buffer pool on demand);
* :class:`CText` — literal text content.

Box "Construct 10" of Figure 7 is expressed as::

    CElement("person", lcl=15,
             attrs=[("name", CClassRef(12, text_only=True))],
             children=[CClassRef(13)])

Class markings on spliced roots survive so that outer queries can keep
referencing inner constructed content (the Figure 8 requirement that
"inner construct elements referenced in the outer clause should survive
the outer projection").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple, Union

from ..columns.batch import ColumnBatch
from ..model.node_id import NodeId
from ..model.sequence import TreeSequence
from ..model.tree import TNode, XTree
from ..physical.structural_join import fast_path_enabled
from .base import Context, Operator


@dataclass
class CClassRef:
    """Splice the members of a logical class into the constructed tree.

    With ``text_only`` the members' atomic content is used instead of their
    subtrees (the ``(12).text()`` notation of the paper's figures).

    With ``hidden`` the spliced nodes are marked *shadowed*: they carry
    data an outer operator (the deferred correlation join of a nested
    query) still needs, but are not part of the visible query result —
    the (9) reference Figure 8's Construct 8 adds for Join 9's benefit.
    """

    lcl: int
    text_only: bool = False
    hidden: bool = False

    def describe(self) -> str:
        suffix = ".text()" if self.text_only else ""
        if self.hidden:
            suffix += " hidden"
        return f"({self.lcl}){suffix}"


@dataclass
class CText:
    """Literal text content inside a constructed element."""

    text: str

    def describe(self) -> str:
        return repr(self.text)


@dataclass
class CElement:
    """A constructed element: tag, attributes, children, class label."""

    tag: str
    lcl: int = 0
    attrs: List[Tuple[str, Union[str, CClassRef]]] = field(
        default_factory=list
    )
    children: List[Union["CElement", CClassRef, CText]] = field(
        default_factory=list
    )

    def describe(self, depth: int = 0) -> str:
        pad = "  " * depth
        attrs = " ".join(
            "@{}={}".format(
                name,
                value.describe()
                if isinstance(value, CClassRef)
                else repr(value),
            )
            for name, value in self.attrs
        )
        header = f"{pad}<{self.tag}> {attrs} [lcl={self.lcl}]".rstrip()
        lines = [header]
        for child in self.children:
            if isinstance(child, CElement):
                lines.append(child.describe(depth + 1))
            else:
                lines.append(f"{'  ' * (depth + 1)}{child.describe()}")
        return "\n".join(lines)


class ConstructOp(Operator):
    """Build one constructed tree per input tree.

    When the construct pattern is a bare :class:`CClassRef` (a RETURN of a
    plain path, ``RETURN $p/name``), each member of the class becomes its
    own output tree: the materialised subtree, or a ``text`` node for
    ``.text()`` references.
    """

    name = "Construct"

    def __init__(
        self,
        ctree: Union[CElement, CClassRef],
        input_op: Operator = None,
    ) -> None:
        super().__init__([input_op] if input_op is not None else [])
        self.ctree = ctree

    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        out = TreeSequence()
        for tree in inputs[0]:
            if isinstance(self.ctree, CClassRef):
                for spliced in self._materialize(ctx, tree, self.ctree):
                    if self.ctree.text_only:
                        out.append(XTree(TNode("text", spliced)))
                    else:
                        out.append(XTree(spliced))
                    ctx.metrics.trees_built += 1
            else:
                out.append(XTree(self._build_element(ctx, self.ctree, tree)))
                ctx.metrics.trees_built += 1
        return out

    def execute_batch(self, ctx: Context, inputs: list):
        """Batch input form: constructed trees read straight off columns.

        Construct emits fresh trees either way (its output is new
        content, not a selection of input rows), so the result is a
        ``TreeSequence`` — but a columnar input never materialises:
        spliced stored subtrees fetch through the buffer pool exactly
        as the per-tree path does, class text reads off the value
        column, and only content without a stored id (nested construct
        output) builds nodes from its column slice.
        """
        source = inputs[0]
        if not isinstance(source, ColumnBatch):
            return self.execute(ctx, inputs)
        out = TreeSequence()
        for row in range(len(source)):
            if isinstance(self.ctree, CClassRef):
                spliced_nodes = self._splice_columns(
                    ctx, source, row, self.ctree
                )
                for spliced in spliced_nodes:
                    if self.ctree.text_only:
                        out.append(XTree(TNode("text", spliced)))
                    else:
                        out.append(XTree(spliced))
                    ctx.metrics.trees_built += 1
            else:
                out.append(
                    XTree(
                        self._build_element_columns(
                            ctx, self.ctree, source, row
                        )
                    )
                )
                ctx.metrics.trees_built += 1
        self.note_batch(ctx, out)
        return out

    # ------------------------------------------------------------------
    def _build_element_columns(
        self, ctx: Context, spec: CElement, source: ColumnBatch, row: int
    ) -> TNode:
        """The columnar twin of :meth:`_build_element`."""
        element = TNode(spec.tag)
        if spec.lcl:
            element.lcls.add(spec.lcl)
        for attr_name, attr_value in spec.attrs:
            if isinstance(attr_value, CClassRef):
                texts = source.class_values(row, attr_value.lcl)
                value = (
                    "" if not texts or texts[0] is None else str(texts[0])
                )
            else:
                value = attr_value
            element.add_child(TNode("@" + attr_name, value))
        for child in spec.children:
            if isinstance(child, CElement):
                element.add_child(
                    self._build_element_columns(ctx, child, source, row)
                )
            elif isinstance(child, CText):
                element.value = (
                    child.text
                    if element.value is None
                    else f"{element.value}{child.text}"
                )
            else:
                for spliced in self._splice_columns(
                    ctx, source, row, child
                ):
                    if child.text_only:
                        element.value = (
                            spliced
                            if element.value is None
                            else f"{element.value} {spliced}"
                        )
                    else:
                        element.add_child(spliced)
        return element

    def _splice_columns(
        self, ctx: Context, source: ColumnBatch, row: int, ref: CClassRef
    ):
        """Yield the spliced content for one class reference, columnar."""
        values, nids, labels = source.values, source.nids, source.labels
        for position in source.class_positions(row, ref.lcl):
            if ref.text_only:
                value = values[position]
                if value is not None:
                    yield str(value)
                continue
            nid = nids[position]
            if isinstance(nid, NodeId):
                copy = ctx.db.subtree(nid, {int(labels[position])})
            else:
                # constructed content: rebuild its slice (batch rows are
                # immutable, so the fresh nodes are private by nature)
                copy = source.subtree_node(position)
            if ref.hidden:
                copy.shadowed = True
            yield copy

    # ------------------------------------------------------------------
    def _build_element(
        self, ctx: Context, spec: CElement, tree: XTree
    ) -> TNode:
        element = TNode(spec.tag)
        if spec.lcl:
            element.lcls.add(spec.lcl)
        for attr_name, attr_value in spec.attrs:
            if isinstance(attr_value, CClassRef):
                value = self._class_text(tree, attr_value.lcl)
            else:
                value = attr_value
            element.add_child(TNode("@" + attr_name, value))
        for child in spec.children:
            if isinstance(child, CElement):
                element.add_child(self._build_element(ctx, child, tree))
            elif isinstance(child, CText):
                element.value = (
                    child.text
                    if element.value is None
                    else f"{element.value}{child.text}"
                )
            else:
                for spliced in self._materialize(ctx, tree, child):
                    if child.text_only:
                        element.value = (
                            spliced
                            if element.value is None
                            else f"{element.value} {spliced}"
                        )
                    else:
                        element.add_child(spliced)
        return element

    def _class_text(self, tree: XTree, lcl: int) -> str:
        nodes = tree.class_nodes(lcl)
        if not nodes or nodes[0].value is None:
            return ""
        return str(nodes[0].value)

    def _materialize(self, ctx: Context, tree: XTree, ref: CClassRef):
        """Yield the spliced content for one class reference."""
        for node in tree.class_nodes(ref.lcl):
            if ref.text_only:
                if node.value is not None:
                    yield str(node.value)
                continue
            if isinstance(node.nid, NodeId):
                copy = ctx.db.subtree(node.nid, node.lcls)
            elif fast_path_enabled():
                if not ref.hidden:
                    # constructed content needs no private copy: splicing
                    # only re-parents in the *output* tree and inputs are
                    # never mutated in place
                    yield node
                    continue
                # hidden splices set the shadow flag, so copy the top
                # node (its subtree can still be shared)
                copy = TNode(node.tag, node.value, node.nid, node.lcls)
                copy.children = node.children
            else:
                copy = node.clone()
            if ref.hidden:
                copy.shadowed = True
            yield copy

    def lc_produced(self):
        return {lcl for lcl in construct_defined(self.ctree) if lcl}

    def lc_consumed(self):
        return {ref.lcl for ref in construct_refs(self.ctree)}

    def params(self) -> str:
        if isinstance(self.ctree, CClassRef):
            return f"splice {self.ctree.describe()}"
        return f"<{self.ctree.tag}> lcl={self.ctree.lcl}"


def construct_refs(spec):
    """All :class:`CClassRef` nodes of a construct pattern, in pre-order."""
    if isinstance(spec, CClassRef):
        yield spec
        return
    if isinstance(spec, CElement):
        for _, value in spec.attrs:
            if isinstance(value, CClassRef):
                yield value
        for child in spec.children:
            yield from construct_refs(child)


def construct_defined(spec):
    """All element class labels a construct pattern allocates, in pre-order."""
    if isinstance(spec, CElement):
        if spec.lcl:
            yield spec.lcl
        for child in spec.children:
            yield from construct_defined(child)
