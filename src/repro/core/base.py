"""Operator base classes and predicate forms for the TLC algebra.

Every operator "maps one or more sets of trees to one set of trees"
(Section 2.3).  Plans are operator trees evaluated bottom-up,
set-at-a-time; shared sub-plans are evaluated once (the evaluator memoises
by operator identity, matching the paper's pattern-tree-reuse execution
where "the results of a pattern tree evaluation persist and are shared").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Union

from ..columns.batch import as_tree_sequence
from ..model.sequence import TreeSequence
from ..model.tree import TNode, XTree
from ..model.value import Atomic, compare
from ..patterns.match import PatternMatcher
from ..patterns.scan_cache import ScanCache
from ..storage.database import Database
from ..storage.stats import Metrics
from .limits import ExecutionLimits


class Context:
    """Evaluation context: the database, its matcher and metrics.

    One context is created per plan execution, so the attached
    :class:`~repro.patterns.scan_cache.ScanCache` is **query-scoped**:
    identical index scans and APT-leaf matches issued by different
    operators of the same plan are answered from the memo, and nothing
    survives into the next query.  Pass ``scan_cache=False`` to reproduce
    the uncached behaviour (every pattern node re-scans), or an existing
    :class:`ScanCache` instance to share one across executions of
    *immutable* data (benchmark warm runs) — never across *concurrent*
    executions; the cache asserts its single-query lifetime.

    ``limits`` (a :class:`~repro.core.limits.ExecutionLimits`) arms the
    cooperative deadline / output-budget / cancellation checks in the
    evaluator loop and the pattern matcher; ``None`` (the default) runs
    unbudgeted with zero checking overhead.
    """

    def __init__(
        self,
        db: Database,
        scan_cache: Union[bool, ScanCache, None] = True,
        limits: Optional[ExecutionLimits] = None,
    ) -> None:
        self.db = db
        if scan_cache is True:
            scan_cache = ScanCache(db.metrics)
        elif scan_cache is False:
            scan_cache = None
        self.scan_cache: Optional[ScanCache] = scan_cache
        self.limits = limits
        self.matcher = PatternMatcher(db, scan_cache=scan_cache, limits=limits)

    @property
    def metrics(self) -> Metrics:
        """The database's shared metrics bundle."""
        return self.db.metrics


class Operator(ABC):
    """A logical TLC operator with zero or more input operators."""

    #: Operator name used by the plan pretty-printer.
    name = "operator"

    #: Cost-based planner annotations (``repro.planner``): a per-operator
    #: currency veto, and — on the plan root only — the chosen currency,
    #: join engine and full decision record.  ``None`` = unplanned; the
    #: evaluator and EXPLAIN read them with ``getattr`` defaults.
    exec_mode: Optional[str] = None
    exec_currency: Optional[str] = None
    exec_engine: Optional[str] = None
    planner_decision: Optional[object] = None

    def __init__(self, inputs: Sequence["Operator"] = ()) -> None:
        self.inputs: List[Operator] = list(inputs)

    @abstractmethod
    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        """Produce this operator's output from already-evaluated inputs."""

    def execute_batch(self, ctx: Context, inputs: list):
        """Batch-at-a-time execution: inputs and output may be
        :class:`~repro.columns.batch.ColumnBatch` objects.

        The base implementation is the **fallback boundary**: it
        materialises any batch inputs into trees (metered as
        ``batch_fallbacks``) and delegates to the per-tree
        :meth:`execute`.  Operators with a vectorised form override this
        and call :meth:`note_batch` on the batches they emit.
        """
        return self.execute(
            ctx,
            [
                as_tree_sequence(item, ctx.metrics, fallback=True)
                for item in inputs
            ],
        )

    def note_batch(self, ctx: Context, result) -> None:
        """Meter one batch-form execution (``batch_ops``/``batch_rows``)."""
        metrics = ctx.metrics
        metrics.batch_ops += 1
        metrics.batch_rows += len(result)

    def lc_produced(self) -> Set[int]:
        """Logical class labels this operator introduces into its output.

        The static counterpart of the paper's "each operator names the
        nodes it touches via LC labels": a Select produces the labels of
        its pattern nodes, an Aggregate its fresh result label, and so on.
        Label 0 is the "unlabelled" sentinel and is never reported.
        """
        return set()

    def lc_consumed(self) -> Set[int]:
        """Logical class labels this operator reads from its input trees."""
        return set()

    def params(self) -> str:
        """One-line parameter description for plan explainers."""
        return ""

    def describe(self, depth: int = 0) -> str:
        """Indented rendering of the plan rooted at this operator."""
        pad = "  " * depth
        header = f"{pad}{self.name}"
        if self.params():
            header += f" {self.params()}"
        lines = [header]
        for child in self.inputs:
            lines.append(child.describe(depth + 1))
        return "\n".join(lines)

    def walk(self):
        """Pre-order traversal of the plan."""
        yield self
        for child in self.inputs:
            yield from child.walk()

    def replace_input(self, old: "Operator", new: "Operator") -> None:
        """Swap one input operator for another (used by rewrites)."""
        self.inputs = [new if op is old else op for op in self.inputs]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.params()}>"


@dataclass(frozen=True)
class ClassPredicate:
    """Predicate comparing the content of a class's nodes to a constant.

    This is the predicate form of the Filter operator: ``(11) > 5``,
    ``EVERY (15) > 2`` and friends.
    """

    lcl: int
    op: str
    value: Atomic

    def test(self, node: TNode) -> bool:
        """Evaluate the comparison on one node's content."""
        return compare(node.value, self.op, self.value)

    def describe(self) -> str:
        """Render as the paper writes it: ``(11) > 5``."""
        return f"({self.lcl}) {self.op} {self.value!r}"


@dataclass(frozen=True)
class JoinPredicate:
    """Value-join predicate between a left and a right logical class.

    Both classes must bind to singleton sets in their trees (Section 2.3's
    Join contract).  With ``by_id`` the predicate compares stored *node
    identifiers* instead of content — the identity join the TAX baseline
    uses to stitch RETURN-path selections back onto bound variables
    (Section 6.1).
    """

    left_lcl: int
    op: str
    right_lcl: int
    by_id: bool = False

    def describe(self) -> str:
        """Render as the paper writes it: ``(7) = (9)``."""
        kind = "id" if self.by_id else ""
        return f"({self.left_lcl}) {self.op}{kind} ({self.right_lcl})"


def class_node_id(tree: XTree, lcl: int, operator: str):
    """Node id of the singleton node of ``lcl`` (None when empty)."""
    from ..errors import CardinalityError

    nodes = tree.class_nodes(lcl)
    if not nodes:
        return None
    if len(nodes) > 1:
        raise CardinalityError(lcl, len(nodes), operator)
    return nodes[0].nid


def class_value(tree: XTree, lcl: int, operator: str) -> Optional[Atomic]:
    """Content of the singleton node of ``lcl`` (None when class is empty).

    Raises :class:`~repro.errors.CardinalityError` when the class holds
    more than one node — the singleton contract of the Join and
    Duplicate-Elimination operators.  Shadowed members are visible here:
    a join may read the hidden correlation classes a nested query's
    construct carries for its benefit (see ``CClassRef.hidden``).
    """
    from ..errors import CardinalityError

    nodes = tree.class_nodes(lcl, include_shadowed=True)
    if not nodes:
        return None
    if len(nodes) > 1:
        raise CardinalityError(lcl, len(nodes), operator)
    return nodes[0].value
