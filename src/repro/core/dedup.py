"""Duplicate-Elimination ``DE[nl, ci]`` (Section 2.3).

Eliminates duplicate trees based on a list of logical classes, comparing
either node identifiers (``ci='id'`` — the cheap NodeIDDE the translator
emits after projection, "all identifiers are already in memory") or node
content (``ci='content'``).  Each listed class must bind to at most one
node per tree; an empty class contributes a null key component (outer
joins legitimately produce trees where an optional class is empty).
"""

from __future__ import annotations

from typing import List, Sequence

from ..columns.batch import ColumnBatch
from ..errors import CardinalityError
from ..model.sequence import TreeSequence
from .base import Context, Operator


class DedupOp(Operator):
    """Keep the first tree for each distinct key over the listed classes."""

    name = "DuplicateElimination"

    def __init__(
        self,
        lcls: Sequence[int],
        by: str = "id",
        input_op: Operator = None,
        bases: dict = None,
    ) -> None:
        super().__init__([input_op] if input_op is not None else [])
        if by not in ("id", "content"):
            raise ValueError(f"invalid dedup basis {by!r}")
        self.lcls = list(lcls)
        self.by = by
        #: optional per-class basis override: {lcl: "id" | "content"}
        self.bases = dict(bases) if bases else {}

    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        seen = set()
        out = TreeSequence()
        for tree in inputs[0]:
            key_parts = []
            for lcl in self.lcls:
                basis = self.bases.get(lcl, self.by)
                nodes = tree.nodes_in_class(lcl)
                if len(nodes) > 1:
                    raise CardinalityError(lcl, len(nodes), self.name)
                if not nodes:
                    key_parts.append(None)
                elif basis == "id":
                    key_parts.append(nodes[0].nid)
                else:
                    key_parts.append(nodes[0].canonical(by_content=True))
            key = tuple(key_parts)
            if key not in seen:
                seen.add(key)
                out.append(tree)
        return out

    def execute_batch(self, ctx: Context, inputs: list):
        """Batch form: key columns read off the rows, trees never built.

        Id keys are the key class's node id; content keys recurse over
        the row's subtree slice (``canonical_node``), matching
        ``TNode.canonical`` exactly.
        """
        source = inputs[0]
        if not isinstance(source, ColumnBatch):
            return self.execute(ctx, inputs)
        seen = set()
        keep_rows = []
        nids = source.nids
        for row in range(len(source)):
            key_parts = []
            for lcl in self.lcls:
                basis = self.bases.get(lcl, self.by)
                positions = source.class_positions(row, lcl)
                if len(positions) > 1:
                    raise CardinalityError(lcl, len(positions), self.name)
                if not positions:
                    key_parts.append(None)
                elif basis == "id":
                    key_parts.append(nids[positions[0]])
                else:
                    key_parts.append(
                        source.canonical_node(positions[0], by_content=True)
                    )
            key = tuple(key_parts)
            if key not in seen:
                seen.add(key)
                keep_rows.append(row)
        out = source.select_rows(keep_rows)
        self.note_batch(ctx, out)
        return out

    def lc_consumed(self):
        return set(self.lcls)

    def params(self) -> str:
        overrides = "".join(
            f" ({lcl}:{basis})" for lcl, basis in sorted(self.bases.items())
        )
        return f"on {sorted(self.lcls)} by {self.by}{overrides}"
