"""Shadow and Illuminate (Definitions 6 and 7).

Shadow behaves like Flatten — one output tree per (p, c) pair — but instead
of *dropping* the other members of C it marks them (and their subtrees)
**shadowed**: still members of their logical classes, but invisible to
every operator except Illuminate.  Illuminate renders all shadowed nodes of
one class active again; it does not change the number of trees.

Together they let a plan evaluate a join on the one-pair-per-tree structure
and afterwards recover *all* clustered members without a second trip to the
database (Section 4.3's rewrite).
"""

from __future__ import annotations

from typing import List

from ..errors import AlgebraError
from ..model.sequence import TreeSequence
from .base import Context, Operator


class ShadowOp(Operator):
    """Like Flatten, but hides siblings in C instead of dropping them."""

    name = "Shadow"

    def __init__(
        self, parent_lcl: int, child_lcl: int, input_op: Operator = None
    ) -> None:
        super().__init__([input_op] if input_op is not None else [])
        self.parent_lcl = parent_lcl
        self.child_lcl = child_lcl

    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        out = TreeSequence()
        for tree in inputs[0]:
            parent = tree.singleton(self.parent_lcl, self.name)
            members = tree.nodes_in_class(self.child_lcl)
            if not all(any(m is c for c in parent.children) for m in members):
                raise AlgebraError(
                    f"Shadow: class {self.child_lcl} must map to children "
                    f"of class {self.parent_lcl}"
                )
            for keep_index in range(len(members)):
                copy = tree.clone()
                parent_copy = copy.singleton(self.parent_lcl, self.name)
                member_position = 0
                for child in parent_copy.children:
                    if self.child_lcl in child.lcls:
                        child.shadowed = member_position != keep_index
                        member_position += 1
                copy.invalidate()
                out.append(copy)
                ctx.metrics.trees_built += 1
        return out

    def lc_consumed(self):
        return {self.parent_lcl, self.child_lcl}

    def params(self) -> str:
        return f"({self.parent_lcl}, {self.child_lcl})"


class IlluminateOp(Operator):
    """Render all shadowed nodes of one class (and their subtrees) active."""

    name = "Illuminate"

    def __init__(self, lcl: int, input_op: Operator = None) -> None:
        super().__init__([input_op] if input_op is not None else [])
        self.lcl = lcl

    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        out = TreeSequence()
        for tree in inputs[0]:
            copy = tree.clone()
            for node in copy.nodes_in_class(self.lcl, include_shadowed=True):
                node.shadowed = False
            copy.invalidate()
            out.append(copy)
        return out

    def lc_consumed(self):
        return {self.lcl}

    def params(self) -> str:
        return f"({self.lcl})"
