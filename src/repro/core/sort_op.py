"""The Sort operator (ORDER BY support).

``Sort[LCL_1 … LCL_n, Mode]`` orders the tree sequence by the content of
the listed classes' nodes (Figure 6's OrderClause case).  Each key class is
expected to bind to at most one node per tree; an empty class orders first.
"""

from __future__ import annotations

from typing import List, Sequence

from ..columns.batch import ColumnBatch
from ..model.sequence import TreeSequence
from ..model.value import sort_key
from ..physical.sort import sort_trees
from .base import Context, Operator


class SortOp(Operator):
    """Sort trees by the values of one or more logical classes."""

    name = "Sort"

    def __init__(
        self,
        lcls: Sequence[int],
        descending: bool = False,
        input_op: Operator = None,
    ) -> None:
        super().__init__([input_op] if input_op is not None else [])
        self.lcls = list(lcls)
        self.descending = descending

    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        def key_for(lcl: int):
            def key(tree):
                nodes = tree.nodes_in_class(lcl)
                return nodes[0].value if nodes else None

            return key

        return sort_trees(
            inputs[0],
            [key_for(lcl) for lcl in self.lcls],
            descending=self.descending,
            metrics=ctx.metrics,
        )

    def execute_batch(self, ctx: Context, inputs: list):
        """Batch form: sort row indexes by key-class value columns."""
        source = inputs[0]
        if not isinstance(source, ColumnBatch):
            return self.execute(ctx, inputs)
        ctx.metrics.sort_ops += 1
        values = source.values

        def composite(row: int) -> tuple:
            parts = []
            for lcl in self.lcls:
                positions = source.class_positions(row, lcl)
                parts.append(
                    sort_key(values[positions[0]] if positions else None)
                )
            return tuple(parts)

        order = sorted(
            range(len(source)), key=composite, reverse=self.descending
        )
        out = source.select_rows(order)
        self.note_batch(ctx, out)
        return out

    def lc_consumed(self):
        return set(self.lcls)

    def params(self) -> str:
        mode = "desc" if self.descending else "asc"
        return f"by {self.lcls} {mode}"
