"""The Project operator ``P[nl]`` (Section 2.3).

Retains only the nodes identified by the list of logical class labels; the
relative hierarchy among retained nodes is preserved (a retained node hangs
under its closest retained ancestor).  "If the output is not a tree, the
input tree root is also retained."

TLC projection keeps just the marked nodes — late materialization.  The
``with_subtrees`` flag implements the TAX variant that retains each node's
*entire subtree* ("the entire subtree is retrieved for such nodes",
Section 6.1's description of the TAX plan) — early materialization, and the
cost the paper charges TAX for.
"""

from __future__ import annotations

from typing import List, Sequence

from ..columns.batch import ColumnBatch
from ..model.node_id import NodeId
from ..model.sequence import TreeSequence
from ..model.tree import TNode, XTree
from ..physical.structural_join import fast_path_enabled
from .base import Context, Operator


class ProjectOp(Operator):
    """Project each tree onto the nodes of the given logical classes."""

    name = "Project"

    def __init__(
        self,
        keep_lcls: Sequence[int],
        input_op: Operator = None,
        with_subtrees: bool = False,
    ) -> None:
        super().__init__([input_op] if input_op is not None else [])
        self.keep_lcls = list(keep_lcls)
        self.with_subtrees = with_subtrees

    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        keep = set(self.keep_lcls)
        out = TreeSequence()
        for tree in inputs[0]:
            out.append(self._project_tree(ctx, tree, keep))
        return out

    def _project_tree(self, ctx: Context, tree: XTree, keep: set) -> XTree:
        def retained_below(node: TNode) -> List[TNode]:
            """Projected forest of retained nodes in node's subtree."""
            collected: List[TNode] = []
            for child in node.children:
                if child.shadowed:
                    continue
                if child.lcls & keep:
                    collected.append(self._copy_node(ctx, child, keep))
                else:
                    collected.extend(retained_below(child))
            return collected

        root = tree.root
        if root.lcls & keep:
            projected = self._copy_node(ctx, root, keep)
            return XTree(projected)
        top = retained_below(root)
        if len(top) == 1:
            return XTree(top[0])
        # not a tree: retain the input root as the connector
        new_root = TNode(root.tag, root.value, root.nid, root.lcls)
        new_root.add_children(top)
        return XTree(new_root)

    def _copy_node(self, ctx: Context, node: TNode, keep: set) -> TNode:
        """Copy a retained node, continuing the scan below it."""
        if not isinstance(node.nid, NodeId) and node.tag != "join_root":
            # constructed content is atomic for projection: it cannot be
            # re-fetched from the database, so a retained constructed
            # element keeps its whole subtree ("inner construct elements
            # referenced in the outer clause should survive the outer
            # projection", Section 3)
            if fast_path_enabled():
                # retained as-is, so the subtree can be shared rather
                # than cloned (inputs are never mutated in place)
                return node
            return node.clone()
        if self.with_subtrees and isinstance(node.nid, NodeId):
            # TAX early materialization: fetch the complete stored subtree,
            # then transfer the class markings of witness descendants onto
            # the matching fetched nodes so joins can still address them
            copy = ctx.db.subtree(node.nid, node.lcls)
            by_nid = {n.nid: n for n in copy.walk()}
            for descendant in node.walk():
                if descendant is node or not descendant.lcls:
                    continue
                target = by_nid.get(descendant.nid)
                if target is not None:
                    target.lcls.update(descendant.lcls)
            return copy
        copy = TNode(node.tag, node.value, node.nid, node.lcls)
        for child in node.children:
            if child.shadowed:
                # shadowed nodes are invisible to the operator but are
                # *retained* in the intermediate result ("a logical means
                # to retain nodes … but have them not participating"),
                # awaiting a later Illuminate
                copy.add_child(
                    child if fast_path_enabled() else child.clone()
                )
                continue
            if child.lcls & keep:
                copy.add_child(self._copy_node(ctx, child, keep))
            else:
                for kept in self._descend(ctx, child, keep):
                    copy.add_child(kept)
        return copy

    def _descend(self, ctx: Context, node: TNode, keep: set) -> List[TNode]:
        collected: List[TNode] = []
        for child in node.children:
            if child.shadowed:
                continue
            if child.lcls & keep:
                collected.append(self._copy_node(ctx, child, keep))
            else:
                collected.extend(self._descend(ctx, child, keep))
        return collected

    def execute_batch(self, ctx: Context, inputs: list):
        """Batch form: retention runs on the columns, rows stay columnar.

        The per-tree rules replicate exactly — a retained node hangs
        under its closest retained ancestor, a non-tree output keeps the
        input root as connector, a retained constructed node keeps its
        whole subtree slice.  ``with_subtrees`` (TAX early
        materialization) fetches stored subtrees and needs real trees,
        so it takes the materialising fallback.
        """
        source = inputs[0]
        if not isinstance(source, ColumnBatch):
            return self.execute(ctx, inputs)
        if self.with_subtrees:
            return super().execute_batch(ctx, inputs)
        keep = set(self.keep_lcls)
        src_tags, src_values = source.tags, source.values
        src_nids, src_labels = source.nids, source.labels
        src_parents, src_offsets = source.parents, source.offsets
        offsets = [0]
        tags: List[str] = []
        values: list = []
        nids: list = []
        labels: List[int] = []
        parents: List[int] = []
        for row in range(len(source)):
            start, end = src_offsets[row], src_offsets[row + 1]
            n = end - start
            children: List[List[int]] = [[] for _ in range(n)]
            for j in range(1, n):
                children[src_parents[start + j]].append(j)
            row_base = len(tags)

            def emit_verbatim(j: int, parent_rel: int) -> None:
                """Copy node ``j``'s whole subtree slice (constructed
                content is atomic for projection)."""
                shift = (len(tags) - row_base) - j
                span_end = j + 1
                stack = [j]
                while stack:
                    node = stack.pop()
                    span_end = max(span_end, node + 1)
                    stack.extend(children[node])
                for k in range(j, span_end):
                    tags.append(src_tags[start + k])
                    values.append(src_values[start + k])
                    nids.append(src_nids[start + k])
                    labels.append(src_labels[start + k])
                    parents.append(
                        parent_rel if k == j
                        else src_parents[start + k] + shift
                    )

            def emit(j: int, parent_rel: int) -> None:
                """Copy retained node ``j``, continuing the scan below."""
                nid = src_nids[start + j]
                if not isinstance(nid, NodeId) and \
                        src_tags[start + j] != "join_root":
                    emit_verbatim(j, parent_rel)
                    return
                rel = len(tags) - row_base
                tags.append(src_tags[start + j])
                values.append(src_values[start + j])
                nids.append(nid)
                labels.append(src_labels[start + j])
                parents.append(parent_rel)
                for child in children[j]:
                    if src_labels[start + child] in keep:
                        emit(child, rel)
                    else:
                        descend(child, rel)

            def descend(j: int, parent_rel: int) -> None:
                for child in children[j]:
                    if src_labels[start + child] in keep:
                        emit(child, parent_rel)
                    else:
                        descend(child, parent_rel)

            if src_labels[start] in keep:
                emit(0, -1)
            else:
                top: List[int] = []

                def find_top(j: int) -> None:
                    for child in children[j]:
                        if src_labels[start + child] in keep:
                            top.append(child)
                        else:
                            find_top(child)

                find_top(0)
                if len(top) == 1:
                    emit(top[0], -1)
                else:
                    # not a tree: retain the input root as the connector
                    tags.append(src_tags[start])
                    values.append(src_values[start])
                    nids.append(src_nids[start])
                    labels.append(src_labels[start])
                    parents.append(-1)
                    for j in top:
                        emit(j, 0)
            offsets.append(len(tags))
        out = ColumnBatch.from_lists(
            offsets, tags, values, nids, labels, parents
        )
        self.note_batch(ctx, out)
        return out

    def lc_consumed(self):
        return set(self.keep_lcls)

    def params(self) -> str:
        kind = " +subtrees" if self.with_subtrees else ""
        return f"keep {sorted(self.keep_lcls)}{kind}"
