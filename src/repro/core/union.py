"""Union of tree sequences (the OR translation of Figure 6).

"OR is translated to UNION of the operators produced on both sides", with
the root node of each path assigned the same LCL on both sides.  The union
concatenates its inputs and removes trees whose shared-root node id was
already produced, preserving document order of the output.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..columns.batch import ColumnBatch
from ..model.sequence import TreeSequence
from .base import Context, Operator


class UnionOp(Operator):
    """Concatenate inputs, optionally deduplicating by a shared class."""

    name = "Union"

    def __init__(
        self,
        inputs: Sequence[Operator],
        dedup_lcl: Optional[int] = None,
    ) -> None:
        super().__init__(inputs)
        self.dedup_lcl = dedup_lcl

    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        merged = TreeSequence()
        for sequence in inputs:
            merged.extend(sequence)
        if self.dedup_lcl is None:
            return merged.sorted_by_root()
        seen = set()
        out = TreeSequence()
        for tree in merged.sorted_by_root():
            nodes = tree.nodes_in_class(self.dedup_lcl)
            key = nodes[0].nid if nodes else None
            if key not in seen:
                seen.add(key)
                out.append(tree)
        return out

    def execute_batch(self, ctx: Context, inputs: list):
        """Batch form: concatenate rows, sort by root id, drop repeats.

        Runs only when *every* input arrived columnar; a mixed set of
        representations takes the materialising fallback (converting
        trees *into* columns would rebuild information the per-tree
        path already has).
        """
        if not all(isinstance(item, ColumnBatch) for item in inputs):
            return super().execute_batch(ctx, inputs)
        merged = ColumnBatch.concat(inputs)
        order = sorted(range(len(merged)), key=merged.row_order_key)
        if self.dedup_lcl is not None:
            seen = set()
            deduped = []
            nids = merged.nids
            for row in order:
                positions = merged.class_positions(row, self.dedup_lcl)
                key = nids[positions[0]] if positions else None
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            order = deduped
        out = merged.select_rows(order)
        self.note_batch(ctx, out)
        return out

    def lc_consumed(self):
        return {self.dedup_lcl} if self.dedup_lcl is not None else set()

    def params(self) -> str:
        if self.dedup_lcl is None:
            return ""
        return f"dedup ({self.dedup_lcl})"
