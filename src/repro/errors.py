"""Exception hierarchy for the TLC reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class StorageError(ReproError):
    """Raised for failures in the storage layer (pages, documents, indexes)."""


class XMLParseError(StorageError):
    """Raised when an XML document cannot be parsed."""

    def __init__(self, message: str, line: int = -1, column: int = -1):
        location = f" at line {line}, column {column}" if line >= 0 else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class PatternError(ReproError):
    """Raised for malformed annotated pattern trees or match requests."""


class AlgebraError(ReproError):
    """Raised when a TLC algebra operator receives invalid input.

    The paper requires several operators (Join predicates, Flatten, Shadow,
    Duplicate-Elimination) to be applied to logical classes that bind to
    singleton sets; violating that contract "generates an error" (Section
    2.3), which surfaces as this exception.
    """


class CardinalityError(AlgebraError):
    """Raised when a logical class does not bind to the required singleton."""

    def __init__(self, lcl: int, found: int, operator: str):
        super().__init__(
            f"operator {operator} requires logical class {lcl} to bind to a "
            f"singleton set per tree, found {found} nodes"
        )
        self.lcl = lcl
        self.found = found
        self.operator = operator


class XQueryError(ReproError):
    """Base class for XQuery front-end failures."""


class XQuerySyntaxError(XQueryError):
    """Raised when the query text does not conform to the Figure 5 grammar."""

    def __init__(self, message: str, line: int = -1, column: int = -1):
        location = f" at line {line}, column {column}" if line >= 0 else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class TranslationError(XQueryError):
    """Raised when a parsed query cannot be translated to a TLC plan."""


class RewriteError(ReproError):
    """Raised when a rewrite rule is applied to a plan it does not match."""


class EvaluationError(ReproError):
    """Raised when plan evaluation fails at runtime."""


class ExecutionLimitError(EvaluationError):
    """Base class for cooperative aborts of a running query.

    Raised by the evaluator's per-operator limit check (see
    :class:`repro.core.limits.ExecutionLimits`) when a query exceeds a
    budget it was given.  Catching this class covers every structured
    abort: deadline, output-cardinality, and explicit cancellation.
    """


class QueryTimeoutError(ExecutionLimitError):
    """Raised when a query runs past its wall-clock deadline.

    The check is cooperative — it fires between operator executions in
    the evaluator loop and between candidate batches inside long pattern
    matches — so the query is aborted shortly after the budget elapses
    instead of hanging indefinitely.
    """

    def __init__(self, budget_seconds: float, elapsed_seconds: float):
        super().__init__(
            f"query exceeded its {budget_seconds * 1000:.0f} ms deadline "
            f"(aborted after {elapsed_seconds * 1000:.0f} ms)"
        )
        self.budget_seconds = budget_seconds
        self.elapsed_seconds = elapsed_seconds


class ResourceLimitError(ExecutionLimitError):
    """Raised when a query exceeds its output-cardinality budget.

    The limit applies to every intermediate operator output, not just the
    final result: a query whose Join explodes past the budget is aborted
    at the Join instead of running to completion and failing at the root.
    """

    def __init__(self, limit: int, produced: int, operator: str):
        super().__init__(
            f"operator {operator} produced {produced} trees, past the "
            f"configured budget of {limit}"
        )
        self.limit = limit
        self.produced = produced
        self.operator = operator


class QueryCancelledError(ExecutionLimitError):
    """Raised when a query is cancelled via its limits' cancel event."""

    def __init__(self) -> None:
        super().__init__("query cancelled")


class ScanCacheLifetimeError(ReproError):
    """Raised when a :class:`~repro.patterns.scan_cache.ScanCache` is
    shared in a way that violates its single-query lifetime.

    A scan cache memoises candidate lists for *one* plan execution over
    immutable documents.  Sequential reuse across warm benchmark runs is
    allowed; entering a second concurrent execution with the same cache
    (or moving a cache to a different database) is a bug in the caller —
    typically a service layer accidentally sharing one cache between
    requests — and raises this error rather than silently returning
    another query's scans.
    """


class ServiceError(ReproError):
    """Raised for query-service misuse (closed service, bad config)."""


class WorkerError(ServiceError):
    """Raised when a pool worker fails in a way the dispatcher cannot map
    back onto a structured error.

    Exceptions do not cross the process boundary as objects (many carry
    multi-argument constructors that break pickling); workers ship a
    ``(type name, message)`` pair instead, and failures outside the
    structured set — a worker that died mid-request, a snapshot that
    failed verification at worker start, an unexpected evaluator bug in
    the child — surface to the caller as this error, with the worker-side
    type preserved in :attr:`worker_error_type`.
    """

    def __init__(self, worker_error_type: str, message: str):
        super().__init__(f"worker failed with {worker_error_type}: {message}")
        self.worker_error_type = worker_error_type


class PlanValidationError(ReproError):
    """Raised when the static LC-flow analyzer rejects a plan.

    Carries the list of :class:`repro.analysis.Diagnostic` findings that
    caused the rejection in :attr:`diagnostics` (errors and warnings; at
    least one has error severity, or the plan would not have been
    rejected).
    """

    def __init__(self, message: str, diagnostics=()):
        rendered = "".join(f"\n  {d.render()}" for d in diagnostics)
        super().__init__(f"{message}{rendered}")
        self.diagnostics = list(diagnostics)
