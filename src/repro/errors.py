"""Exception hierarchy for the TLC reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class StorageError(ReproError):
    """Raised for failures in the storage layer (pages, documents, indexes)."""


class XMLParseError(StorageError):
    """Raised when an XML document cannot be parsed."""

    def __init__(self, message: str, line: int = -1, column: int = -1):
        location = f" at line {line}, column {column}" if line >= 0 else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class PatternError(ReproError):
    """Raised for malformed annotated pattern trees or match requests."""


class AlgebraError(ReproError):
    """Raised when a TLC algebra operator receives invalid input.

    The paper requires several operators (Join predicates, Flatten, Shadow,
    Duplicate-Elimination) to be applied to logical classes that bind to
    singleton sets; violating that contract "generates an error" (Section
    2.3), which surfaces as this exception.
    """


class CardinalityError(AlgebraError):
    """Raised when a logical class does not bind to the required singleton."""

    def __init__(self, lcl: int, found: int, operator: str):
        super().__init__(
            f"operator {operator} requires logical class {lcl} to bind to a "
            f"singleton set per tree, found {found} nodes"
        )
        self.lcl = lcl
        self.found = found
        self.operator = operator


class XQueryError(ReproError):
    """Base class for XQuery front-end failures."""


class XQuerySyntaxError(XQueryError):
    """Raised when the query text does not conform to the Figure 5 grammar."""

    def __init__(self, message: str, line: int = -1, column: int = -1):
        location = f" at line {line}, column {column}" if line >= 0 else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class TranslationError(XQueryError):
    """Raised when a parsed query cannot be translated to a TLC plan."""


class RewriteError(ReproError):
    """Raised when a rewrite rule is applied to a plan it does not match."""


class EvaluationError(ReproError):
    """Raised when plan evaluation fails at runtime."""


class PlanValidationError(ReproError):
    """Raised when the static LC-flow analyzer rejects a plan.

    Carries the list of :class:`repro.analysis.Diagnostic` findings that
    caused the rejection in :attr:`diagnostics` (errors and warnings; at
    least one has error severity, or the plan would not have been
    rejected).
    """

    def __init__(self, message: str, diagnostics=()):
        rendered = "".join(f"\n  {d.render()}" for d in diagnostics)
        super().__init__(f"{message}{rendered}")
        self.diagnostics = list(diagnostics)
