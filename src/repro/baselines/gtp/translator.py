"""GTP-style translation (Section 6.1's description of the GTP plan).

GTP captures the whole query in one generalized tree and reuses matches,
avoiding TAX's early materialisation and final identity joins.  What it
lacks is nested matching: every ``+``/``*`` structure TLC gets from a
nest-join is recovered here by the split/group/**merge** DAG — a fresh
flat branch match, a GroupBy, and a hash merge keyed on the shared anchor
node.  Figure 15's TLC-vs-GTP gaps all come from this difference.
"""

from __future__ import annotations

from ...xquery.translator import TranslationResult
from ..common import BaselineTranslator


class GTPTranslator(BaselineTranslator):
    """Translate queries into GTP-style plans."""

    def __init__(self) -> None:
        super().__init__("gtp")


def translate_gtp(text: str) -> TranslationResult:
    """Parse and translate query text into a GTP plan."""
    return GTPTranslator().translate_text(text)
