"""The GTP (generalized tree pattern) baseline."""

from .translator import GTPTranslator, translate_gtp

__all__ = ["GTPTranslator", "translate_gtp"]
