"""Competing approaches of Section 6: TAX, GTP and the navigational plan."""

from .gtp.translator import GTPTranslator, translate_gtp
from .nav.evaluator import NavEvaluator
from .tax.translator import TAXTranslator, translate_tax

__all__ = [
    "GTPTranslator",
    "translate_gtp",
    "NavEvaluator",
    "TAXTranslator",
    "translate_tax",
]
