"""Restructuring operators used by the TAX and GTP baselines.

Neither TAX nor GTP has annotated pattern edges, so both recover nested
structure ("+"/"*" semantics) through an explicit grouping procedure:
split the flat witness trees, group by the parent node, and merge the
per-branch results back (Section 6.1).  These operators implement that
procedure on top of :mod:`repro.physical.grouping`; their group-by cost —
versus TLC's nest-joins — is exactly what Figures 15 and 16 measure.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.base import Context, Operator
from ..model.node_id import AnyNodeId
from ..model.sequence import TreeSequence
from ..model.tree import TNode, XTree
from ..physical.grouping import group_by_node, group_merge


class GroupByOp(Operator):
    """Group flat witness trees by the identity of one class's node.

    Input: one tree per (group, member) combination (the flat match).
    Output: one tree per distinct group node with all its members nested —
    the structure one nest-join would have produced directly.
    """

    name = "GroupBy"

    def __init__(
        self, group_lcl: int, member_lcl: int, input_op: Operator = None
    ) -> None:
        super().__init__([input_op] if input_op is not None else [])
        self.group_lcl = group_lcl
        self.member_lcl = member_lcl

    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        return group_by_node(
            inputs[0], self.group_lcl, self.member_lcl, ctx.metrics
        )

    def params(self) -> str:
        return f"group ({self.group_lcl}) members ({self.member_lcl})"


class MergeOp(Operator):
    """Merge a grouped branch back onto the main trees by node identity.

    The "merge" step of the split/group/merge DAG: each main tree's
    ``base_key_lcl`` node receives the children of the branch tree whose
    ``branch_key_lcl`` node has the same stored identity.  Main trees with
    no branch partner pass through unchanged (the branch is an optional
    part of the query).
    """

    name = "Merge"

    def __init__(
        self,
        main: Operator,
        branch: Operator,
        base_key_lcl: int,
        branch_key_lcl: int,
    ) -> None:
        super().__init__([main, branch])
        self.base_key_lcl = base_key_lcl
        self.branch_key_lcl = branch_key_lcl

    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        main, branch = inputs
        return group_merge(
            main,
            [branch],
            self.base_key_lcl,
            [self.branch_key_lcl],
            ctx.metrics,
        )

    def params(self) -> str:
        return f"on ({self.base_key_lcl}) = ({self.branch_key_lcl})"


class NestJoinResultsOp(Operator):
    """Group join_root trees of a flat outer join by the left-side class.

    TLC's Join can nest directly (``*`` edge); the baselines join flat and
    then group: one output tree per distinct left node, clustering every
    right-side root under a single join_root.
    """

    name = "NestJoinResults"

    def __init__(
        self,
        key_lcl: int,
        root_lcl: int,
        input_op: Operator = None,
    ) -> None:
        super().__init__([input_op] if input_op is not None else [])
        self.key_lcl = key_lcl
        self.root_lcl = root_lcl

    def execute(
        self, ctx: Context, inputs: List[TreeSequence]
    ) -> TreeSequence:
        ctx.metrics.groupby_ops += 1
        buckets: Dict[AnyNodeId, XTree] = {}
        order: List[AnyNodeId] = []
        for tree in inputs[0]:
            keys = tree.nodes_in_class(self.key_lcl)
            if not keys:
                continue
            key = keys[0].nid
            children = tree.root.children
            left_part = children[0] if children else None
            right_parts = children[1:]
            if key not in buckets:
                root = TNode("join_root", lcls={self.root_lcl})
                if left_part is not None:
                    root.add_child(left_part.clone())
                buckets[key] = XTree(root)
                order.append(key)
                ctx.metrics.trees_built += 1
            host = buckets[key].root
            for part in right_parts:
                host.add_child(part.clone())
            buckets[key].invalidate()
        return TreeSequence([buckets[key] for key in order])

    def params(self) -> str:
        return f"by ({self.key_lcl}) root ({self.root_lcl})"
