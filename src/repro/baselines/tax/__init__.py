"""The TAX baseline."""

from .translator import TAXTranslator, translate_tax

__all__ = ["TAXTranslator", "translate_tax"]
