"""TAX-style translation (Section 6.1's description of the TAX plan).

TAX has no annotated edges and no pattern-tree reuse:

* each FOR/WHERE source is a flat selection followed by early
  materialisation (Project with full subtrees of every bound variable)
  and duplicate elimination;
* every aggregate, quantifier, ORDER BY key and RETURN path is a *fresh*
  selection from the database that re-applies the anchor's predicates,
  grouped and then **joined** back onto the main pipeline by node
  identity;
* LET / nested-FLWOR structure is recovered by grouping the flat join
  results.
"""

from __future__ import annotations

from ...xquery.translator import TranslationResult
from ..common import BaselineTranslator


class TAXTranslator(BaselineTranslator):
    """Translate queries into TAX-style plans."""

    def __init__(self) -> None:
        super().__init__("tax")


def translate_tax(text: str) -> TranslationResult:
    """Parse and translate query text into a TAX plan."""
    return TAXTranslator().translate_text(text)
