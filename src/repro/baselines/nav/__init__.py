"""The navigational baseline."""

from .evaluator import NavEvaluator

__all__ = ["NavEvaluator"]
