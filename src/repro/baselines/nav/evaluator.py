"""Navigational query evaluation (Section 6.1's NAV competitor).

"The algorithm traverses down a path by recursively getting all children
of a node and checking them for a condition on content or name before
proceeding on the next iteration."  This evaluator interprets the FLWOR
AST directly with those primitives: no indexes, no set-at-a-time bulk
operators, nested-loop semantics for joins and nested queries.  Its cost
profile is the paper's: it pays for every child it looks at, so ``//``
steps, counts and highly selective predicates hurt, while heavy final
materialisation is (comparatively) free because the data was already
visited.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

from ...errors import EvaluationError
from ...model.node_id import NodeId
from ...model.sequence import TreeSequence
from ...model.tree import TNode, XTree
from ...model.value import coerce_number, compare
from ...physical.navigation import child_step, descendant_step
from ...storage.database import Database
from ...xquery.ast_nodes import (
    AggrExpr,
    AggrPredicate,
    BoolExpr,
    ElementConstructor,
    FLWOR,
    ForClause,
    LetClause,
    PathExpr,
    Quantifier,
    SimplePredicate,
    TextLiteral,
    ValueJoin,
)
from ...xquery.parser import parse_query

#: A navigational binding: one stored node, one constructed tree node, or
#: (for LET) a list of either.
Bound = Union[NodeId, TNode, list]
Env = Dict[str, Bound]


class NavEvaluator:
    """Evaluates the Figure 5 fragment by tree navigation."""

    def __init__(self, db: Database) -> None:
        self.db = db

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, query: Union[str, FLWOR]) -> TreeSequence:
        """Evaluate a query (text or AST) and return the result forest."""
        flwor = parse_query(query) if isinstance(query, str) else query
        out = TreeSequence()
        for node in self._eval_flwor(flwor, {}):
            out.append(XTree(node))
        return out

    # ------------------------------------------------------------------
    # FLWOR evaluation
    # ------------------------------------------------------------------
    def _eval_flwor(self, flwor: FLWOR, outer_env: Env) -> List[TNode]:
        results: List[TNode] = []
        keyed: List[tuple] = []
        for env in self._bind_clauses(flwor.clauses, 0, dict(outer_env)):
            if flwor.where is not None and not self._where(
                flwor.where, env
            ):
                continue
            built = self._build_return(flwor.ret, env)
            if flwor.order is not None:
                key = tuple(
                    _order_key(self._path_values(path, env))
                    for path in flwor.order.paths
                )
                keyed.append((key, built))
            else:
                results.extend(built)
        if flwor.order is not None:
            keyed.sort(key=lambda pair: pair[0],
                       reverse=flwor.order.descending)
            for _, built in keyed:
                results.extend(built)
        return results

    def _bind_clauses(
        self, clauses, index: int, env: Env
    ) -> Iterator[Env]:
        if index == len(clauses):
            yield env
            return
        clause = clauses[index]
        if isinstance(clause, ForClause):
            for item in self._iterate_source(clause.source, env):
                child_env = dict(env)
                child_env[clause.var] = item
                yield from self._bind_clauses(clauses, index + 1, child_env)
        else:  # LET binds the whole sequence
            items = list(self._iterate_source(clause.source, env))
            child_env = dict(env)
            child_env[clause.var] = items
            yield from self._bind_clauses(clauses, index + 1, child_env)

    def _iterate_source(self, source, env: Env) -> Iterator[Bound]:
        if isinstance(source, FLWOR):
            yield from self._eval_flwor(source, env)
            return
        yield from self._path_nodes(source, env)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _roots(self, path: PathExpr, env: Env) -> List[Bound]:
        if path.doc is not None:
            return [self.db.document(path.doc).root_id]
        bound = env.get(path.var)
        if bound is None:
            raise EvaluationError(f"unbound variable ${path.var}")
        if isinstance(bound, list):
            return bound
        return [bound]

    def _path_nodes(self, path: PathExpr, env: Env) -> List[Bound]:
        frontier: List[Bound] = self._roots(path, env)
        for step in path.steps:
            next_frontier: List[Bound] = []
            seen = set()
            for node in frontier:
                for reached in self._step(node, step.axis, step.name):
                    key = (
                        reached.nid
                        if isinstance(reached, TNode)
                        else reached
                    )
                    if key not in seen:
                        seen.add(key)
                        next_frontier.append(reached)
            frontier = next_frontier
        return frontier

    def _step(self, node: Bound, axis: str, name: str) -> List[Bound]:
        if isinstance(node, TNode):
            if axis == "pc":
                pool = node.visible_children()
            else:
                pool = [n for n in node.walk() if n is not node]
            return [n for n in pool if n.tag == name]
        if axis == "pc":
            return child_step(self.db, node, name)
        return descendant_step(self.db, node, name)

    def _value_of(self, node: Bound) -> Optional[str]:
        if isinstance(node, TNode):
            return None if node.value is None else str(node.value)
        return self.db.value_of(node)

    def _path_values(self, path: PathExpr, env: Env) -> List[Optional[str]]:
        return [self._value_of(n) for n in self._path_nodes(path, env)]

    # ------------------------------------------------------------------
    # WHERE
    # ------------------------------------------------------------------
    def _where(self, expr, env: Env) -> bool:
        if isinstance(expr, BoolExpr):
            if expr.op == "and":
                return self._where(expr.left, env) and self._where(
                    expr.right, env
                )
            return self._where(expr.left, env) or self._where(
                expr.right, env
            )
        if isinstance(expr, SimplePredicate):
            return any(
                compare(value, expr.op, expr.value)
                for value in self._path_values(expr.path, env)
            )
        if isinstance(expr, AggrPredicate):
            result = self._aggregate(
                expr.fname, self._path_nodes(expr.path, env)
            )
            return compare(result, expr.op, expr.value)
        if isinstance(expr, ValueJoin):
            lefts = self._path_values(expr.left, env)
            rights = self._path_values(expr.right, env)
            return any(
                compare(l, expr.op, r) for l in lefts for r in rights
            )
        if isinstance(expr, Quantifier):
            nodes = self._path_nodes(expr.path, env)
            checks = []
            for node in nodes:
                child_env = dict(env)
                child_env[expr.var] = node
                checks.append(
                    any(
                        compare(v, expr.predicate.op, expr.predicate.value)
                        for v in self._path_values(
                            expr.predicate.path, child_env
                        )
                    )
                )
            if expr.kind == "every":
                return all(checks)
            return any(checks)
        raise EvaluationError(f"unsupported WHERE expression: {expr!r}")

    def _aggregate(self, fname: str, nodes: List[Bound]):
        if fname == "count":
            return len(nodes)
        values = [
            number
            for number in (
                coerce_number(self._value_of(n)) for n in nodes
            )
            if number is not None
        ]
        if not values:
            return "empty"
        if fname == "sum":
            return sum(values)
        if fname == "avg":
            return sum(values) / len(values)
        if fname == "min":
            return min(values)
        return max(values)

    # ------------------------------------------------------------------
    # RETURN
    # ------------------------------------------------------------------
    def _build_return(self, ret, env: Env) -> List[TNode]:
        if isinstance(ret, ElementConstructor):
            return [self._build_element(ret, env)]
        if isinstance(ret, PathExpr):
            if ret.text_fn:
                return [
                    TNode("text", value)
                    for value in self._path_values(ret, env)
                    if value is not None
                ]
            return [
                self._materialize(node)
                for node in self._path_nodes(ret, env)
            ]
        if isinstance(ret, AggrExpr):
            value = self._aggregate(
                ret.fname, self._path_nodes(ret.path, env)
            )
            return [TNode(ret.fname, value)]
        if isinstance(ret, FLWOR):
            return self._eval_flwor(ret, env)
        if isinstance(ret, TextLiteral):
            return [TNode("text", ret.text)]
        raise EvaluationError(f"unsupported RETURN expression: {ret!r}")

    def _build_element(
        self, spec: ElementConstructor, env: Env
    ) -> TNode:
        element = TNode(spec.tag)
        for attr_name, attr_value in spec.attrs:
            if isinstance(attr_value, str):
                element.add_child(TNode("@" + attr_name, attr_value))
            elif isinstance(attr_value, AggrExpr):
                value = self._aggregate(
                    attr_value.fname,
                    self._path_nodes(attr_value.path, env),
                )
                element.add_child(TNode("@" + attr_name, str(value)))
            else:
                values = [
                    v
                    for v in self._path_values(attr_value, env)
                    if v is not None
                ]
                element.add_child(
                    TNode("@" + attr_name, values[0] if values else "")
                )
        for child in spec.children:
            if isinstance(child, TextLiteral):
                element.value = (
                    child.text
                    if element.value is None
                    else f"{element.value}{child.text}"
                )
                continue
            if isinstance(child, PathExpr) and child.text_fn:
                values = [
                    v
                    for v in self._path_values(child, env)
                    if v is not None
                ]
                if values:
                    joined = " ".join(values)
                    element.value = (
                        joined
                        if element.value is None
                        else f"{element.value} {joined}"
                    )
                continue
            if isinstance(child, AggrExpr):
                value = self._aggregate(
                    child.fname, self._path_nodes(child.path, env)
                )
                text = str(value)
                element.value = (
                    text
                    if element.value is None
                    else f"{element.value} {text}"
                )
                continue
            for built in self._build_return(child, env):
                element.add_child(built)
        return element

    def _materialize(self, node: Bound) -> TNode:
        """Copy a bound node's full subtree by navigation."""
        if isinstance(node, TNode):
            return node.clone()
        built = TNode(
            self.db.tag_of(node), self.db.value_of(node), node
        )
        for child in child_step(self.db, node):
            built.add_child(self._materialize(child))
        return built


def _order_key(values: List[Optional[str]]) -> tuple:
    from ...model.value import sort_key

    return sort_key(values[0] if values else None)
