"""Shared plan builder for the TAX and GTP baselines (Section 6.1).

Both competitors lack annotated pattern edges, so everything TLC handles
with a nest-edge or an extension Select becomes, here, a *branch*:

1. a fresh flat Select from the database for the branch path,
2. a GroupBy collecting the branch members per anchor node,
3. a re-attachment to the main pipeline — a cheap hash **Merge** for GTP
   (which reuses its single generalized pattern), or a full **identity
   Join** for TAX ("a join operator will be used to stitch together the
   RETURN clause paths with the FOR/WHERE parts").

TAX additionally materialises the complete subtree of every bound
variable right after its selection (``Project`` with subtrees + duplicate
elimination), the early-materialisation cost the paper charges it with.
Nested FLWORs join flat and are re-nested with a grouping step
(:class:`~repro.baselines.ops.NestJoinResultsOp`) instead of TLC's
nest-join.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.aggregate import AggregateOp
from ..core.base import ClassPredicate, JoinPredicate, Operator
from ..core.construct import CClassRef, CElement, CText
from ..core.dedup import DedupOp
from ..core.filter import (
    FilterOp,
    TreeFilterOp,
    cross_class_predicate,
    disjunctive_predicate,
)
from ..core.join import JoinOp
from ..core.project import ProjectOp
from ..core.select import SelectOp
from ..core.sort_op import SortOp
from ..errors import TranslationError
from ..patterns.apt import APT, APTNode
from ..patterns.logical_class import LCLAllocator
from ..patterns.predicates import NodeTest
from ..xquery.ast_nodes import (
    AggrExpr,
    AggrPredicate,
    BoolExpr,
    ElementConstructor,
    FLWOR,
    ForClause,
    LetClause,
    PathExpr,
    Quantifier,
    SimplePredicate,
    Step,
    TextLiteral,
    ValueJoin,
)
from ..xquery.parser import parse_query
from ..xquery.paths import FLIPPED_OP
from ..xquery.translator import TranslationResult
from .ops import GroupByOp, MergeOp, NestJoinResultsOp

#: How nested edges are flattened: mandatory stays ``-``, nested/optional
#: parts become outer flat matches.
FLAT = {"-": "-", "?": "?", "+": "-", "*": "?"}


def flat_graft(
    base: APTNode,
    steps: Sequence[Step],
    mspec: str,
    lcls: LCLAllocator,
    class_tags: Dict[int, str],
) -> APTNode:
    """Graft a path with flattened matching specifications."""
    flat_mspec = FLAT[mspec]
    current = base
    for step in steps:
        reuse = None
        for edge in current.edges:
            if (
                edge.axis == step.axis
                and edge.mspec == flat_mspec
                and edge.child.test.tag == step.name
                and not edge.child.test.comparisons
            ):
                reuse = edge.child
                break
        if reuse is not None:
            current = reuse
            continue
        child = APTNode(NodeTest(step.name), lcls.allocate())
        current.add_edge(child, step.axis, flat_mspec)
        class_tags[child.lcl] = step.name
        current = child
    return current


@dataclass
class _DocSource:
    apt: APT
    var_lcls: List[int] = field(default_factory=list)
    keep_lcls: List[int] = field(default_factory=list)
    branch_builders: List = field(default_factory=list)


@dataclass
class _FlworSource:
    block: "BaselineBlock"
    mspec_join: str
    branch_builders: List = field(default_factory=list)


@dataclass
class _Binding:
    source_index: int
    apt_node: Optional[APTNode] = None
    lcl: Optional[int] = None
    root_steps: Tuple[Step, ...] = ()

    @property
    def label(self) -> int:
        return self.apt_node.lcl if self.apt_node is not None else self.lcl


class BaselineBlock:
    """One FLWOR block translated in the TAX or GTP style."""

    def __init__(
        self,
        translator: "BaselineTranslator",
        flwor: FLWOR,
        parent: Optional["BaselineBlock"] = None,
    ) -> None:
        self.translator = translator
        self.style = translator.style  # "tax" | "gtp"
        self.flwor = flwor
        self.parent = parent
        self.lcls = translator.lcls
        self.class_tags = translator.class_tags
        self.sources: List[Union[_DocSource, _FlworSource]] = []
        self.bindings: Dict[str, _Binding] = {}
        self.join_preds: List[Tuple[int, int, str, int, int]] = []
        self.deferred: List[Tuple[int, str, int]] = []
        self.post_join: List = []
        self.extra_keep: List[int] = []
        self.return_joins: List[_FlworSource] = []
        self.construct_spec = None
        self._finished: Optional[Operator] = None

    # ------------------------------------------------------------------
    def lookup(self, var: str) -> Tuple["BaselineBlock", _Binding]:
        block: Optional[BaselineBlock] = self
        while block is not None:
            if var in block.bindings:
                return block, block.bindings[var]
            block = block.parent
        raise TranslationError(f"unbound variable ${var}")

    # ------------------------------------------------------------------
    # FOR / LET
    # ------------------------------------------------------------------
    def process_clauses(self) -> None:
        for clause in self.flwor.clauses:
            mspec = "-" if isinstance(clause, ForClause) else "*"
            if isinstance(clause.source, FLWOR):
                inner = self.translator.translate_block(
                    clause.source, parent=self
                )
                self.sources.append(
                    _FlworSource(inner, "-" if mspec == "-" else "*")
                )
                self.bindings[clause.var] = _Binding(
                    len(self.sources) - 1, lcl=inner.output_root_lcl()
                )
            else:
                self._bind_path(clause.var, clause.source, mspec)

    def _bind_path(self, var: str, path: PathExpr, mspec: str) -> None:
        if path.doc is not None:
            root = APTNode(NodeTest("doc_root"), self.lcls.allocate())
            self.class_tags[root.lcl] = "doc_root"
            leaf = flat_graft(
                root, path.steps, "-", self.lcls, self.class_tags
            )
            source = _DocSource(APT(root, path.doc))
            source.var_lcls.append(leaf.lcl)
            self.sources.append(source)
            self.bindings[var] = _Binding(
                len(self.sources) - 1,
                apt_node=leaf,
                root_steps=tuple(path.steps),
            )
            return
        owner, binding = self.lookup(path.var)
        if owner is not self:
            raise TranslationError(
                "FOR/LET over an outer-block variable is not supported"
            )
        if binding.apt_node is None:
            lcl = self.resolve_constructed_path(binding, path)
            self.bindings[var] = _Binding(binding.source_index, lcl=lcl)
            return
        leaf = flat_graft(
            binding.apt_node, path.steps, mspec, self.lcls, self.class_tags
        )
        source = self.sources[binding.source_index]
        if isinstance(source, _DocSource):
            source.var_lcls.append(leaf.lcl)
        self.bindings[var] = _Binding(
            binding.source_index,
            apt_node=leaf,
            root_steps=binding.root_steps + tuple(path.steps),
        )

    # ------------------------------------------------------------------
    # branches (the split / group / merge-or-join machinery)
    # ------------------------------------------------------------------
    def _branch(
        self,
        binding: _Binding,
        steps: Sequence[Step],
        doc: str,
    ) -> Tuple:
        """Build a branch select for ``binding``'s var extended by ``steps``.

        Returns ``(builder, anchor_lcl, leaf_lcl)`` where ``builder`` maps
        the main pipeline top to the merged/joined pipeline.
        """
        root = APTNode(NodeTest("doc_root"), self.lcls.allocate())
        self.class_tags[root.lcl] = "doc_root"
        anchor = flat_graft(
            root, binding.root_steps, "-", self.lcls, self.class_tags
        )
        if self.style == "tax" and binding.apt_node is not None:
            # TAX re-applies the anchor's predicates: "redoing the same
            # selection on bidder time and time again"
            anchor.test = NodeTest(
                anchor.test.tag, binding.apt_node.test.comparisons
            )
        leaf = flat_graft(root, list(binding.root_steps) + list(steps),
                          "-", self.lcls, self.class_tags)
        branch_select = SelectOp(APT(root, doc))
        grouped: Operator = GroupByOp(anchor.lcl, leaf.lcl, branch_select)
        anchor_lcl = anchor.lcl
        leaf_lcl = leaf.lcl
        main_anchor = binding.label

        if self.style == "gtp":
            def builder(top: Operator, branch=grouped) -> Operator:
                return MergeOp(top, branch, main_anchor, anchor_lcl)
        else:
            def builder(top: Operator, branch=grouped) -> Operator:
                return JoinOp(
                    top,
                    branch,
                    [JoinPredicate(main_anchor, "=", anchor_lcl, by_id=True)],
                    root_lcl=self.lcls.allocate(),
                    right_mspec="?",
                )
        return builder, anchor_lcl, leaf_lcl

    def _source_doc(self, binding: _Binding) -> str:
        source = self.sources[binding.source_index]
        if isinstance(source, _DocSource):
            return source.apt.doc
        raise TranslationError("branch over a non-document source")

    # ------------------------------------------------------------------
    # WHERE
    # ------------------------------------------------------------------
    def process_where(self) -> None:
        if self.flwor.where is not None:
            self._where_expr(self.flwor.where)

    def _where_expr(self, expr) -> None:
        if isinstance(expr, BoolExpr):
            if expr.op == "and":
                self._where_expr(expr.left)
                self._where_expr(expr.right)
            else:
                self._where_or(expr)
        elif isinstance(expr, SimplePredicate):
            self._simple_predicate(expr)
        elif isinstance(expr, AggrPredicate):
            self._aggr_predicate(expr)
        elif isinstance(expr, ValueJoin):
            self._value_join(expr)
        elif isinstance(expr, Quantifier):
            self._quantifier(expr)
        else:  # pragma: no cover
            raise TranslationError(f"unsupported WHERE expression: {expr!r}")

    def _simple_predicate(self, pred: SimplePredicate) -> None:
        owner, binding = self.lookup(pred.path.var)
        if owner is not self:
            raise TranslationError(
                "correlated simple predicates must use a value join"
            )
        if binding.apt_node is not None:
            leaf = flat_graft(
                binding.apt_node,
                pred.path.steps,
                "-",
                self.lcls,
                self.class_tags,
            )
            leaf.test = leaf.test.with_comparison(pred.op, pred.value)
            return
        lcl = self.resolve_constructed_path(binding, pred.path)
        predicate = ClassPredicate(lcl, pred.op, pred.value)
        self.post_join.append(
            lambda top, p=predicate: FilterOp(p, "ALO", top)
        )

    def _aggr_predicate(self, pred: AggrPredicate) -> None:
        owner, binding = self.lookup(pred.path.var)
        if owner is not self:
            raise TranslationError("correlated aggregates unsupported")
        new_lcl = self.lcls.allocate()
        self.class_tags[new_lcl] = pred.fname
        predicate = ClassPredicate(new_lcl, pred.op, pred.value)
        if binding.apt_node is not None:
            doc = self._source_doc(binding)
            builder, _, leaf_lcl = self._branch(
                binding, pred.path.steps, doc
            )
            source = self.sources[binding.source_index]
            source.branch_builders.append(builder)
            source.branch_builders.append(
                lambda top, f=pred.fname, l=leaf_lcl, n=new_lcl: AggregateOp(
                    f, l, n, top
                )
            )
            source.branch_builders.append(
                lambda top, p=predicate: FilterOp(p, "ALO", top)
            )
            return
        lcl = self.resolve_constructed_path(binding, pred.path)
        self.post_join.append(
            lambda top, f=pred.fname, l=lcl, n=new_lcl: AggregateOp(
                f, l, n, top
            )
        )
        self.post_join.append(
            lambda top, p=predicate: FilterOp(p, "ALO", top)
        )

    def _resolve_join_side(self, path: PathExpr):
        owner, binding = self.lookup(path.var)
        if binding.apt_node is not None:
            # correlated outer sides graft optionally (see the TLC
            # translator): an outer tree without the path keeps an empty
            # LET binding instead of vanishing
            leaf = flat_graft(
                binding.apt_node,
                path.steps,
                "-" if owner is self else "?",
                owner.lcls,
                owner.class_tags,
            )
            source = owner.sources[binding.source_index]
            if isinstance(source, _DocSource):
                source.keep_lcls.append(leaf.lcl)
            return owner, binding.source_index, leaf.lcl
        lcl = owner.resolve_constructed_path(binding, path)
        return owner, binding.source_index, lcl

    def _value_join(self, expr: ValueJoin) -> None:
        left_owner, left_src, left_lcl = self._resolve_join_side(expr.left)
        right_owner, right_src, right_lcl = self._resolve_join_side(
            expr.right
        )
        if left_owner is not self and right_owner is not self:
            raise TranslationError("join must involve this block")
        if left_owner is not self:
            self.deferred.append((left_lcl, expr.op, right_lcl))
            return
        if right_owner is not self:
            self.deferred.append(
                (right_lcl, FLIPPED_OP[expr.op], left_lcl)
            )
            return
        if left_src == right_src:
            predicate = cross_class_predicate(left_lcl, expr.op, right_lcl)
            refs = [left_lcl, right_lcl]
            self.post_join.append(
                lambda top, p=predicate, r=refs: TreeFilterOp(
                    p, f"({left_lcl}) {expr.op} ({right_lcl})", top, lcls=r
                )
            )
            return
        self.join_preds.append(
            (left_src, left_lcl, expr.op, right_lcl, right_src)
        )

    def _quantifier(self, quant: Quantifier) -> None:
        owner, binding = self.lookup(quant.path.var)
        mode = "E" if quant.kind == "every" else "ALO"
        if owner is not self:
            raise TranslationError("quantifier over outer variable")
        if binding.apt_node is not None:
            doc = self._source_doc(binding)
            steps = list(quant.path.steps) + list(
                quant.predicate.path.steps
            )
            builder, _, leaf_lcl = self._branch(binding, steps, doc)
            predicate = ClassPredicate(
                leaf_lcl, quant.predicate.op, quant.predicate.value
            )
            source = self.sources[binding.source_index]
            source.branch_builders.append(builder)
            source.branch_builders.append(
                lambda top, p=predicate, m=mode: FilterOp(p, m, top)
            )
            return
        lcl = self.resolve_constructed_path(binding, quant.path)
        if quant.predicate.path.steps:
            raise TranslationError(
                "quantifier predicates over constructed content must test "
                "the quantified variable directly"
            )
        predicate = ClassPredicate(
            lcl, quant.predicate.op, quant.predicate.value
        )
        self.post_join.append(
            lambda top, p=predicate, m=mode: FilterOp(p, m, top)
        )

    def _where_or(self, expr: BoolExpr) -> None:
        disjuncts: List = []

        def flatten(e) -> None:
            if isinstance(e, BoolExpr) and e.op == "or":
                flatten(e.left)
                flatten(e.right)
            else:
                disjuncts.append(e)

        flatten(expr)
        class_preds: List[ClassPredicate] = []
        for disjunct in disjuncts:
            if not isinstance(disjunct, SimplePredicate):
                raise TranslationError(
                    "baseline OR supports simple predicates only"
                )
            owner, binding = self.lookup(disjunct.path.var)
            if owner is not self or binding.apt_node is None:
                raise TranslationError("baseline OR over outer/constructed")
            leaf = flat_graft(
                binding.apt_node,
                disjunct.path.steps,
                "*",
                self.lcls,
                self.class_tags,
            )
            source = self.sources[binding.source_index]
            if isinstance(source, _DocSource):
                source.keep_lcls.append(leaf.lcl)
            class_preds.append(
                ClassPredicate(leaf.lcl, disjunct.op, disjunct.value)
            )
        predicate = disjunctive_predicate(class_preds)
        label = " or ".join(p.describe() for p in class_preds)
        refs = [p.lcl for p in class_preds]
        self.post_join.append(
            lambda top, p=predicate, lab=label, r=refs: TreeFilterOp(
                p, lab, top, lcls=r
            )
        )

    # ------------------------------------------------------------------
    # constructed-content resolution (same scheme as the TLC translator)
    # ------------------------------------------------------------------
    def resolve_constructed_path(
        self, binding: _Binding, path: PathExpr
    ) -> int:
        source = self.sources[binding.source_index]
        if not path.steps:
            return binding.label
        spec = None
        if isinstance(source, _FlworSource):
            spec = source.block.construct_spec
        current_lcl = binding.label
        steps = list(path.steps)
        while steps and isinstance(spec, CElement):
            step = steps[0]
            matched = None
            for child in spec.children:
                if isinstance(child, CElement) and child.tag == step.name:
                    matched = (child.lcl, child)
                    break
                if isinstance(child, CClassRef) and (
                    self.class_tags.get(child.lcl) == step.name
                ):
                    matched = (child.lcl, None)
                    break
            if matched is None:
                break
            current_lcl, spec = matched
            steps.pop(0)
        if not steps:
            self.extra_keep.append(current_lcl)
            return current_lcl
        ext_root = APTNode(NodeTest(None), 0, lc_ref=current_lcl)
        leaf = flat_graft(ext_root, steps, "*", self.lcls, self.class_tags)
        self.extra_keep.append(current_lcl)
        self.post_join.append(
            lambda top, apt=APT(ext_root): SelectOp(apt, top)
        )
        return leaf.lcl

    def output_root_lcl(self) -> int:
        spec = self.construct_spec
        if isinstance(spec, (CElement, CClassRef)):
            return spec.lcl
        raise TranslationError("block has no construct output")

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def finish(self) -> Operator:
        if self._finished is not None:
            return self._finished
        ret_spec = self._parse_return(self.flwor.ret)
        self.construct_spec = ret_spec["ctree"]
        for _, _, inner_lcl in self.deferred:
            ret_spec["keep"].append(inner_lcl)
            ctree = ret_spec["ctree"]
            if isinstance(ctree, CElement):
                if not any(
                    isinstance(c, CClassRef) and c.lcl == inner_lcl
                    for c in ctree.children
                ):
                    ctree.children.append(CClassRef(inner_lcl, hidden=True))
            elif not (
                isinstance(ctree, CClassRef) and ctree.lcl == inner_lcl
            ):
                raise TranslationError(
                    "correlated nested query must RETURN an element"
                )

        top = self._assemble_join()
        for builder in self.post_join:
            top = builder(top)

        keep = self._project_keep(ret_spec)
        top = ProjectOp(sorted(set(keep)), top)
        dedup_lcls, dedup_bases = self._dedup_lcls()
        if dedup_lcls:
            top = DedupOp(dedup_lcls, "id", top, bases=dedup_bases)

        if self.flwor.order is not None:
            top = self._apply_order(top)

        for source in self.return_joins:
            top = self._join_nested(top, source)
        for builder in ret_spec["selects"]:
            top = builder(top)
        from ..core.construct import ConstructOp

        top = ConstructOp(ret_spec["ctree"], top)
        self._finished = top
        return top

    def _build_source(self, index: int) -> Operator:
        source = self.sources[index]
        if isinstance(source, _FlworSource):
            top = source.block.finish()
            for builder in source.branch_builders:
                top = builder(top)
            return top
        top: Operator = SelectOp(source.apt)
        if self.style == "tax":
            # early materialization: fetch the whole subtree of every
            # bound variable, then eliminate duplicates (Section 6.1).
            # Join-participating classes key by content so that distinct
            # join partners survive the duplicate elimination.
            keep = sorted(set(source.var_lcls + source.keep_lcls))
            top = ProjectOp(keep, top, with_subtrees=True)
            dedup = sorted(set(source.var_lcls + source.keep_lcls))
            bases = {lcl: "content" for lcl in source.keep_lcls}
            top = DedupOp(dedup, "id", top, bases=bases)
        for builder in source.branch_builders:
            top = builder(top)
        return top

    def _assemble_join(self) -> Operator:
        if not self.sources:
            raise TranslationError("FLWOR has no sources")
        tops = [self._build_source(i) for i in range(len(self.sources))]
        first = self.sources[0]
        if isinstance(first, _FlworSource) and first.block.deferred:
            raise TranslationError(
                "correlated nested query cannot be the first source"
            )
        current = tops[0]
        covered = {0}
        pending = list(self.join_preds)
        for index in range(1, len(self.sources)):
            source = self.sources[index]
            preds: List[JoinPredicate] = []
            rest = []
            for left_src, left_lcl, op, right_lcl, right_src in pending:
                if right_src == index and left_src in covered:
                    preds.append(JoinPredicate(left_lcl, op, right_lcl))
                elif left_src == index and right_src in covered:
                    preds.append(
                        JoinPredicate(right_lcl, FLIPPED_OP[op], left_lcl)
                    )
                else:
                    rest.append(
                        (left_src, left_lcl, op, right_lcl, right_src)
                    )
            pending = rest
            nested_let = False
            if isinstance(source, _FlworSource):
                for outer_lcl, op, inner_lcl in source.block.deferred:
                    preds.append(JoinPredicate(outer_lcl, op, inner_lcl))
                nested_let = source.mspec_join == "*"
            root_lcl = self.lcls.allocate()
            self.class_tags[root_lcl] = "join_root"
            self._join_root_lcl = root_lcl
            # the baselines join flat; LET nesting is recovered by an
            # explicit grouping step over the join results
            current = JoinOp(
                current,
                tops[index],
                preds,
                root_lcl=root_lcl,
                right_mspec="?" if nested_let else source_mspec(source),
            )
            if nested_let:
                current = NestJoinResultsOp(
                    self._group_key_lcl(), root_lcl, current
                )
            covered.add(index)
        if pending:
            raise TranslationError("unplaceable join predicate")
        return current

    def _join_nested(
        self, top: Operator, source: _FlworSource
    ) -> Operator:
        preds = [
            JoinPredicate(outer_lcl, op, inner_lcl)
            for outer_lcl, op, inner_lcl in source.block.deferred
        ]
        root_lcl = self.lcls.allocate()
        self.class_tags[root_lcl] = "join_root"
        joined = JoinOp(
            top,
            source.block.finish(),
            preds,
            root_lcl=root_lcl,
            right_mspec="?",
        )
        return NestJoinResultsOp(self._group_key_lcl(), root_lcl, joined)

    def _group_key_lcl(self) -> int:
        """Class identifying 'one left tree' when regrouping join output."""
        for var in self.flwor.for_vars():
            binding = self.bindings.get(var)
            if binding is not None and binding.apt_node is not None:
                return binding.label
        raise TranslationError(
            "nested LET requires a document-bound FOR variable to group by"
        )

    def _project_keep(self, ret_spec) -> List[int]:
        keep: List[int] = []
        if len(self.sources) > 1:
            keep.append(self._join_root_lcl)
        for var in self.flwor.for_vars() + self.flwor.let_vars():
            binding = self.bindings.get(var)
            if binding is not None:
                keep.append(binding.label)
        keep.extend(self.extra_keep)
        keep.extend(ret_spec["keep"])
        return keep

    def _dedup_lcls(self):
        lcls: List[int] = []
        bases: Dict[int, str] = {}
        for var in self.flwor.for_vars():
            binding = self.bindings.get(var)
            if binding is not None:
                lcls.append(binding.label)
        for _, _, inner_lcl in self.deferred:
            lcls.append(inner_lcl)
            bases[inner_lcl] = "content"
        return sorted(set(lcls)), bases

    def _apply_order(self, top: Operator) -> Operator:
        order = self.flwor.order
        key_lcls: List[int] = []
        for path in order.paths:
            owner, binding = self.lookup(path.var)
            if owner is not self:
                raise TranslationError("ORDER BY over outer variables")
            if binding.apt_node is None:
                key_lcls.append(self.resolve_constructed_path(binding, path))
                continue
            if not path.steps:
                key_lcls.append(binding.label)
                continue
            doc = self._source_doc(binding)
            builder, _, leaf_lcl = self._branch(binding, path.steps, doc)
            top = builder(top)
            key_lcls.append(leaf_lcl)
        return SortOp(key_lcls, order.descending, top)

    # ------------------------------------------------------------------
    # RETURN
    # ------------------------------------------------------------------
    def _parse_return(self, ret) -> dict:
        spec = {"selects": [], "keep": [], "ctree": None}
        if ret is None:
            raise TranslationError("FLWOR lacks a RETURN clause")
        spec["ctree"] = self._return_expr(ret, spec)
        return spec

    def _return_expr(self, expr, spec):
        if isinstance(expr, ElementConstructor):
            element = CElement(expr.tag, self.lcls.allocate())
            self.class_tags[element.lcl] = expr.tag
            for attr_name, attr_value in expr.attrs:
                if isinstance(attr_value, str):
                    element.attrs.append((attr_name, attr_value))
                else:
                    element.attrs.append(
                        (attr_name, self._value_ref(attr_value, spec, True))
                    )
            for child in expr.children:
                element.children.append(self._return_expr(child, spec))
            return element
        if isinstance(expr, TextLiteral):
            return CText(expr.text)
        if isinstance(expr, PathExpr):
            return self._value_ref(expr, spec, expr.text_fn)
        if isinstance(expr, AggrExpr):
            return self._value_ref(expr, spec, True)
        if isinstance(expr, FLWOR):
            inner = self.translator.translate_block(expr, parent=self)
            source = _FlworSource(inner, "*")
            self.return_joins.append(source)
            for outer_lcl, _, _ in inner.deferred:
                spec["keep"].append(outer_lcl)
            return CClassRef(inner.output_root_lcl())
        raise TranslationError(f"unsupported RETURN expression: {expr!r}")

    def _value_ref(self, expr, spec, text: bool) -> CClassRef:
        if isinstance(expr, AggrExpr):
            base = self._value_ref(expr.path, spec, False)
            new_lcl = self.lcls.allocate()
            self.class_tags[new_lcl] = expr.fname
            spec["selects"].append(
                lambda top, f=expr.fname, l=base.lcl, n=new_lcl: AggregateOp(
                    f, l, n, top
                )
            )
            return CClassRef(new_lcl, text_only=True)
        owner, binding = self.lookup(expr.var)
        if owner is not self:
            raise TranslationError("RETURN over outer variables")
        if not expr.steps:
            spec["keep"].append(binding.label)
            return CClassRef(binding.label, text_only=text)
        if binding.apt_node is not None:
            doc = self._source_doc(binding)
            builder, _, leaf_lcl = self._branch(binding, expr.steps, doc)
            spec["selects"].append(builder)
            spec["keep"].append(binding.label)
            return CClassRef(leaf_lcl, text_only=text)
        lcl = self.resolve_constructed_path(binding, expr)
        spec["keep"].append(lcl)
        return CClassRef(lcl, text_only=text)


def source_mspec(source) -> str:
    """Flat join edge for a source: ``-`` (FOR) since LET is regrouped."""
    if isinstance(source, _FlworSource):
        return source.mspec_join if source.mspec_join == "-" else "?"
    return "-"


class BaselineTranslator:
    """Translates queries in the TAX or GTP style."""

    def __init__(self, style: str) -> None:
        if style not in ("tax", "gtp"):
            raise ValueError(f"unknown baseline style {style!r}")
        self.style = style
        self.lcls = LCLAllocator()
        self.class_tags: Dict[int, str] = {}

    def translate_block(
        self, flwor: FLWOR, parent: Optional[BaselineBlock] = None
    ) -> BaselineBlock:
        block = BaselineBlock(self, flwor, parent)
        block.process_clauses()
        block.process_where()
        block.finish()
        return block

    def translate(self, flwor: FLWOR) -> TranslationResult:
        block = self.translate_block(flwor)
        var_lcls = {
            var: binding.label for var, binding in block.bindings.items()
        }
        return TranslationResult(block.finish(), var_lcls, self.class_tags)

    def translate_text(self, text: str) -> TranslationResult:
        return self.translate(parse_query(text))
