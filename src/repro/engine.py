"""High-level facade: load documents, run XQuery under any of the four
engines (TLC / TAX / GTP / NAV), optionally with the Section 4 rewrites.

This is the entry point downstream users and the benchmark harness share::

    from repro import Engine
    engine = Engine()
    engine.load_xml("auction.xml", xml_text)
    result = engine.run(query_text)               # TLC by default
    result = engine.run(query_text, engine="gtp")  # a competitor
    result = engine.run(query_text, optimize=True) # Flatten/Shadow rewrites
"""

from __future__ import annotations

import time
from typing import Optional, Union

from .baselines.gtp.translator import translate_gtp
from .baselines.nav.evaluator import NavEvaluator
from .baselines.tax.translator import translate_tax
from .core.base import Context, Operator
from .core.evaluator import evaluate
from .errors import ReproError
from .model.sequence import TreeSequence
from .storage.database import DEFAULT_POOL_PAGES, Database
from .storage.stats import QueryReport
from .xquery.translator import TranslationResult, translate_query

#: Engine names accepted by :meth:`Engine.run`.
ENGINES = ("tlc", "tax", "gtp", "nav")


def _validate_plan(plan: Operator) -> None:
    """Lint a TLC plan, raising on error-severity diagnostics."""
    from .analysis import analyze
    from .errors import PlanValidationError

    analysis = analyze(plan)
    if not analysis.ok:
        raise PlanValidationError(
            "plan failed static LC-flow validation", analysis.errors
        )


class Engine:
    """A database plus the four query evaluation strategies of Section 6."""

    def __init__(
        self,
        db: Optional[Database] = None,
        pool_pages: int = DEFAULT_POOL_PAGES,
    ) -> None:
        self.db = db if db is not None else Database(pool_pages)

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load_xml(self, name: str, text: str):
        """Parse and store an XML document."""
        return self.db.load_xml(name, text)

    def load_xmark(self, factor: float = 0.01, name: str = "auction.xml"):
        """Generate and store a synthetic XMark document."""
        from .xmark.generator import load_xmark

        return load_xmark(self.db, factor, name)

    # ------------------------------------------------------------------
    # planning and execution
    # ------------------------------------------------------------------
    def plan(
        self, query: str, engine: str = "tlc", optimize: bool = False
    ) -> TranslationResult:
        """Translate a query into a plan for the given algebraic engine.

        ``nav`` has no plan (it interprets the AST); asking for one raises.
        """
        if engine == "tlc":
            translation = translate_query(query)
            if optimize:
                from .rewrites.pipeline import optimize_plan

                translation = optimize_plan(translation)
            return translation
        if optimize:
            raise ReproError(
                "the Flatten/Shadow rewrites are TLC-specific (Section 4)"
            )
        if engine == "tax":
            return translate_tax(query)
        if engine == "gtp":
            return translate_gtp(query)
        raise ReproError(f"engine {engine!r} has no algebraic plan")

    def run(
        self,
        query: str,
        engine: str = "tlc",
        optimize: bool = False,
        strict: bool = False,
    ) -> TreeSequence:
        """Evaluate a query and return the result forest.

        With ``strict`` the TLC plan is linted by the static LC-flow
        analyzer before execution and a
        :class:`~repro.errors.PlanValidationError` is raised when any
        error-severity diagnostic is found.  The baseline algebras do not
        carry LC-flow metadata, so ``strict`` applies to ``tlc`` only.
        """
        if engine not in ENGINES:
            raise ReproError(
                f"unknown engine {engine!r}; choose one of {ENGINES}"
            )
        if engine == "nav":
            if optimize:
                raise ReproError("rewrites do not apply to navigation")
            return NavEvaluator(self.db).run(query)
        translation = self.plan(query, engine, optimize)
        return self.run_plan(
            translation.plan, strict=strict and engine == "tlc"
        )

    def run_plan(self, plan: Operator, strict: bool = False) -> TreeSequence:
        """Evaluate an already-built plan against this engine's database."""
        if strict:
            _validate_plan(plan)
        return evaluate(plan, Context(self.db))

    # ------------------------------------------------------------------
    # measurement (the benchmark harness entry point)
    # ------------------------------------------------------------------
    def measure(
        self,
        query: str,
        engine: str = "tlc",
        optimize: bool = False,
        label: str = "",
        cold_cache: bool = False,
    ) -> QueryReport:
        """Run a query and report wall time plus the work counters."""
        self.db.reset_metrics(cold_cache=cold_cache)
        started = time.perf_counter()
        result = self.run(query, engine=engine, optimize=optimize)
        elapsed = time.perf_counter() - started
        name = engine + ("+opt" if optimize else "")
        return QueryReport(
            engine=name,
            query=label or query.strip().splitlines()[0],
            seconds=elapsed,
            counters=self.db.metrics.snapshot(),
            result_trees=len(result),
        )
