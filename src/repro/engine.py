"""High-level facade: load documents, run XQuery under any of the four
engines (TLC / TAX / GTP / NAV), optionally with the Section 4 rewrites.

This is the entry point downstream users and the benchmark harness share::

    from repro import Engine
    engine = Engine()
    engine.load_xml("auction.xml", xml_text)
    result = engine.run(query_text)               # TLC by default
    result = engine.run(query_text, engine="gtp")  # a competitor
    result = engine.run(query_text, optimize=True) # Flatten/Shadow rewrites
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional, Union

from .baselines.gtp.translator import translate_gtp
from .baselines.nav.evaluator import NavEvaluator
from .baselines.tax.translator import translate_tax
from .core.base import Context, Operator
from .core.evaluator import evaluate
from .core.limits import ExecutionLimits
from .errors import ReproError
from .model.sequence import TreeSequence
from .storage.database import DEFAULT_POOL_PAGES, Database
from .storage.stats import CardinalityStats, QueryReport
from .xquery.translator import TLCTranslator, TranslationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .service import QueryService

#: Engine names accepted by :meth:`Engine.run`.
ENGINES = ("tlc", "tax", "gtp", "nav")


def _require_query_text(query: str) -> None:
    """Reject empty/whitespace-only query text with a clear error.

    Without this guard a blank query would surface as a confusing parser
    error (or, historically, an ``IndexError`` from the benchmark label
    fallback in :meth:`Engine.measure`).
    """
    if not query or not query.strip():
        raise ReproError("query text is empty")


def _validate_plan(plan: Operator) -> None:
    """Lint a TLC plan, raising on error-severity diagnostics."""
    from .analysis import analyze
    from .errors import PlanValidationError

    analysis = analyze(plan)
    if not analysis.ok:
        raise PlanValidationError(
            "plan failed static LC-flow validation", analysis.errors
        )


class Engine:
    """A database plus the four query evaluation strategies of Section 6."""

    def __init__(
        self,
        db: Optional[Database] = None,
        pool_pages: int = DEFAULT_POOL_PAGES,
    ) -> None:
        self.db = db if db is not None else Database(pool_pages)
        #: (document names, snapshot) — see :meth:`cardinality_stats`
        self._stats_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load_xml(self, name: str, text: str):
        """Parse and store an XML document."""
        return self.db.load_xml(name, text)

    def load_xmark(self, factor: float = 0.01, name: str = "auction.xml"):
        """Generate and store a synthetic XMark document."""
        from .xmark.generator import load_xmark

        return load_xmark(self.db, factor, name)

    # ------------------------------------------------------------------
    # planning and execution
    # ------------------------------------------------------------------
    def cardinality_stats(self) -> CardinalityStats:
        """A cached tag-count snapshot of the loaded documents.

        Documents are load-only (the Database has no update API), so the
        snapshot stays valid until another document is loaded; the cache
        key is the set of document names.  This keeps the cost-based
        planner's per-query overhead at pure arithmetic instead of a
        per-plan walk over every tag index.
        """
        names = tuple(sorted(self.db.document_names()))
        if self._stats_cache is None or self._stats_cache[0] != names:
            self._stats_cache = (
                names,
                CardinalityStats.from_database(self.db),
            )
        return self._stats_cache[1]

    def plan(
        self,
        query: str,
        engine: str = "tlc",
        optimize: bool = False,
        planner: Optional[bool] = None,
        observed: Optional[dict] = None,
    ) -> TranslationResult:
        """Translate a query into a plan for the given algebraic engine.

        ``nav`` has no plan (it interprets the AST); asking for one raises.

        ``planner`` runs cost-based physical planning on the TLC plan
        (``None`` follows the process-wide ``REPRO_PLANNER`` toggle):
        edge orders, operator currency and join engine are chosen by the
        cost model and the :class:`~repro.planner.PlanDecision` lands on
        ``translation.plan.planner_decision``.  ``observed`` optionally
        feeds measured cardinalities into the model (the telemetry
        feedback loop; see :mod:`repro.planner.feedback`).
        """
        _require_query_text(query)
        if engine == "tlc":
            # span() is a no-op thread-local read unless the calling
            # thread is serving a traced service request
            from .telemetry.spans import span
            from .xquery.parser import parse_query

            with span("parse"):
                ast = parse_query(query)
            with span("translate"):
                translation = TLCTranslator().translate(ast)
            if optimize:
                from .rewrites.pipeline import optimize_plan

                with span("rewrite"):
                    translation = optimize_plan(translation)
            if planner is None:
                from .planner import planner_enabled

                planner = planner_enabled()
            if planner:
                from .planner import plan_physical

                with span("planner"):
                    plan_physical(
                        translation.plan,
                        self.cardinality_stats(),
                        observed=observed,
                        metrics=self.db.metrics,
                    )
            return translation
        if optimize:
            raise ReproError(
                "the Flatten/Shadow rewrites are TLC-specific (Section 4)"
            )
        if engine == "tax":
            return translate_tax(query)
        if engine == "gtp":
            return translate_gtp(query)
        raise ReproError(f"engine {engine!r} has no algebraic plan")

    def run(
        self,
        query: str,
        engine: str = "tlc",
        optimize: bool = False,
        strict: bool = False,
        trace: bool = False,
        scan_cache: bool = True,
        limits: Optional[ExecutionLimits] = None,
        deadline: Optional[float] = None,
        max_trees: Optional[int] = None,
        planner: Optional[bool] = None,
    ) -> TreeSequence:
        """Evaluate a query and return the result forest.

        ``planner`` applies cost-based physical planning to the TLC plan
        before execution (``None`` follows the ``REPRO_PLANNER``
        toggle); see :meth:`plan`.  The planned plan's output is
        byte-identical — only the work to produce it changes.

        With ``strict`` the TLC plan is linted by the static LC-flow
        analyzer before execution and a
        :class:`~repro.errors.PlanValidationError` is raised when any
        error-severity diagnostic is found.  The baseline algebras do not
        carry LC-flow metadata, so ``strict`` applies to ``tlc`` only.

        With ``trace`` the evaluation is instrumented per operator and
        the resulting :class:`~repro.trace.PlanTrace` is attached to the
        returned sequence as ``result.trace``.  Tracing instruments the
        shared ``Operator`` protocol, so it works for every algebraic
        plan (``tlc``, ``tax``, ``gtp``); the navigational baseline
        interprets the AST and has no operators to trace.

        ``scan_cache`` controls the query-scoped memo of identical index
        scans and pattern-leaf matches (on by default; hits show up as
        ``scan_cache_hits`` in the counters).  Disable it to reproduce
        the uncached behaviour, e.g. for before/after benchmarking.

        ``limits`` (or the ``deadline``/``max_trees`` shorthands, which
        build one) arms the cooperative abort checks: a query past its
        wall-clock budget raises
        :class:`~repro.errors.QueryTimeoutError`, one past its
        output-cardinality budget raises
        :class:`~repro.errors.ResourceLimitError` — at the next operator
        boundary or matcher tick, instead of hanging.  Limits apply to
        the algebraic engines only (``nav`` interprets the AST without
        an evaluator loop to check in).
        """
        if engine not in ENGINES:
            raise ReproError(
                f"unknown engine {engine!r}; choose one of {ENGINES}"
            )
        _require_query_text(query)
        if limits is None and (deadline is not None or max_trees is not None):
            limits = ExecutionLimits(deadline=deadline, max_trees=max_trees)
        if engine == "nav":
            if optimize:
                raise ReproError("rewrites do not apply to navigation")
            if trace:
                raise ReproError(
                    "the tracer instruments algebraic plans; 'nav' "
                    "interprets the AST and has no operators to trace"
                )
            if limits is not None:
                raise ReproError(
                    "execution limits need the evaluator loop; 'nav' "
                    "has none (use an algebraic engine)"
                )
            return NavEvaluator(self.db).run(query)
        translation = self.plan(query, engine, optimize, planner=planner)
        return self.run_plan(
            translation.plan,
            strict=strict and engine == "tlc",
            trace=trace,
            scan_cache=scan_cache,
            limits=limits,
        )

    def run_plan(
        self,
        plan: Operator,
        strict: bool = False,
        trace: bool = False,
        scan_cache: bool = True,
        limits: Optional[ExecutionLimits] = None,
    ) -> TreeSequence:
        """Evaluate an already-built plan against this engine's database.

        A plan the cost-based planner annotated with
        ``exec_engine == "legacy"`` is evaluated with the fast join path
        suppressed for the duration of the walk (the planner's engine
        choice; in practice it always picks ``fast`` — the hook keeps
        the decision executable rather than advisory).
        """
        if strict:
            _validate_plan(plan)
        ctx = Context(self.db, scan_cache=scan_cache, limits=limits)
        if getattr(plan, "exec_engine", None) == "legacy":
            from .physical.structural_join import use_fast_path

            with use_fast_path(False):
                return self._evaluate(plan, ctx, trace)
        return self._evaluate(plan, ctx, trace)

    def _evaluate(
        self, plan: Operator, ctx: Context, trace: bool
    ) -> TreeSequence:
        if not trace:
            return evaluate(plan, ctx)
        from .trace import Tracer

        tracer = Tracer(ctx.metrics)
        result = evaluate(plan, ctx, tracer)
        result.trace = tracer.finish(plan)
        return result

    def service(self, **kwargs) -> "QueryService":
        """A concurrent :class:`~repro.service.QueryService` over this
        engine's database (prepared-plan cache, thread pool, deadlines).

        Keyword arguments are forwarded to
        :class:`~repro.service.QueryService` (``threads``, ``mode``,
        ``start_method``, ``cache_size``, ``default_deadline``,
        ``default_max_trees``, ``retry_legacy``).
        """
        from .service import QueryService

        return QueryService(self, **kwargs)

    # ------------------------------------------------------------------
    # measurement (the benchmark harness entry point)
    # ------------------------------------------------------------------
    def measure(
        self,
        query: str,
        engine: str = "tlc",
        optimize: bool = False,
        label: str = "",
        cold_cache: bool = False,
        strict: bool = False,
        trace: bool = False,
        scan_cache: bool = True,
        planner: Optional[bool] = None,
    ) -> QueryReport:
        """Run a query and report wall time plus the work counters.

        ``strict`` and ``trace`` are forwarded to :meth:`run`: a
        benchmark run can lint its plan pre-execution and/or attach the
        per-operator :class:`~repro.trace.PlanTrace` to the report
        (``report.trace``).  ``planner`` (default: the ``REPRO_PLANNER``
        toggle) cost-plans the TLC plan first; planning time is part of
        the measured wall time, as it would be for a real request.
        """
        _require_query_text(query)
        self.db.reset_metrics(cold_cache=cold_cache)
        started = time.perf_counter()
        result = self.run(
            query,
            engine=engine,
            optimize=optimize,
            strict=strict,
            trace=trace,
            scan_cache=scan_cache,
            planner=planner,
        )
        elapsed = time.perf_counter() - started
        name = engine + ("+opt" if optimize else "")
        first_line = next(
            (
                line.strip()
                for line in query.splitlines()
                if line.strip()
            ),
            "<query>",
        )
        return QueryReport(
            engine=name,
            query=label or first_line,
            seconds=elapsed,
            counters=self.db.metrics.snapshot(),
            result_trees=len(result),
            trace=result.trace,
        )
