"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — build a synthetic XMark document and save it (XML or the
  binary TLCDB format);
* ``query``    — run an XQuery (from a file or inline) against a document,
  under any engine, optionally with the Section 4 rewrites;
* ``bench``    — regenerate one of the paper's figures;
* ``explain``  — print the algebraic plan for a query; ``--cost`` adds
  the cost-based planner's report (chosen vs rejected physical shapes
  with their cost estimates);
* ``plan``     — run just the cost-based planner and print its
  :class:`~repro.planner.PlanDecision` (``--json`` for the raw record);
* ``lint``     — statically check a query's TLC plan with the LC-flow
  analyzer (no document needed; exits 1 on error diagnostics);
* ``profile``  — EXPLAIN ANALYZE: run a query with the runtime tracer
  and print the plan annotated with per-operator wall time,
  cardinalities and work-counter deltas; ``--spans`` runs it through
  the traced service instead and prints the request's span tree as
  Chrome-trace-event JSON (load in Perfetto / ``chrome://tracing``);
* ``calibrate`` — measure the cost model's constants on this machine:
  run the benchmark queries under the tracer, distil per-operator
  self-time-per-row and the legacy/batch constants into a calibration
  table the planner loads via ``REPRO_CALIBRATION``;
* ``prepare``  — compile a query through the service's prepared-plan
  cache and report what the cache would save on re-execution;
* ``serve``    — run queries from stdin through the concurrent
  :class:`~repro.service.QueryService` (plan cache, thread pool,
  deadlines), one query per line; ``--http`` exposes ``/metrics``,
  ``/stats``, ``/healthz``, ``/slow``, ``/trace`` and ``/workers``
  while serving, ``--slow-ms`` arms slow-query capture, ``--spans``
  records a span tree per request, ``--query-log`` appends one JSON
  line per request, ``--feedback-file`` persists observed
  cardinalities across restarts;
* ``stats``    — summarise a query-log JSONL file (or fetch ``/stats``
  from a running ``serve --http``): request counts by status/engine,
  cache hits, latency percentiles; ``--workers`` fetches the
  per-worker-process introspection instead;
* ``tail``     — print the newest query-log events; ``--slow`` shows
  only slow queries with each capture's hottest operators.

Every command is documented with copy-pasteable invocations in
``docs/CLI.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import Engine
from .errors import ReproError
from .storage.persist import load_database, save_database
from .xmark.generator import XMarkGenerator


def _open_engine(source: str) -> Engine:
    """Build an engine from an .xml, .tlcdb, or xmark:<factor> source."""
    if source.startswith("xmark:"):
        engine = Engine()
        engine.load_xmark(factor=float(source.split(":", 1)[1]))
        return engine
    path = Path(source)
    if path.suffix == ".tlcdb":
        return Engine(load_database(path))
    engine = Engine()
    engine.load_xml("auction.xml", path.read_text())
    return engine


def cmd_generate(args: argparse.Namespace) -> int:
    generator = XMarkGenerator(factor=args.factor, seed=args.seed)
    out = Path(args.output)
    if out.suffix == ".tlcdb":
        from .storage.database import Database

        db = Database()
        generator.load_into(db)
        save_database(db, out)
    else:
        out.write_text(generator.generate_xml())
    print(f"wrote XMark factor {args.factor} to {out}")
    return 0


def _read_query(args: argparse.Namespace) -> str:
    if args.query_file:
        return Path(args.query_file).read_text()
    if args.query:
        return args.query
    return sys.stdin.read()


def cmd_query(args: argparse.Namespace) -> int:
    engine = _open_engine(args.document)
    query = _read_query(args)
    report = engine.measure(
        query, engine=args.engine, optimize=args.optimize, label="cli"
    )
    result = engine.run(query, engine=args.engine, optimize=args.optimize)
    for tree in result:
        print(tree.to_xml())
    if args.stats:
        counters = report.counters
        print(
            f"-- {report.result_trees} trees in "
            f"{report.seconds * 1000:.1f} ms | "
            f"pages={counters['pages_read']} "
            f"nodes={counters['nodes_touched']} "
            f"sjoins={counters['structural_joins']} "
            f"groupbys={counters['groupby_ops']} "
            f"navsteps={counters['navigation_steps']} "
            f"cachehits={counters['scan_cache_hits']} "
            f"reused={counters['postings_reused']}",
            file=sys.stderr,
        )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    engine = _open_engine(args.document)
    query = _read_query(args)
    translation = engine.plan(query, args.engine, args.optimize)
    if getattr(args, "lint", False):
        if args.engine != "tlc":
            raise ReproError(
                "--lint needs LC-flow metadata, which only the tlc "
                "engine's operators carry"
            )
        from .analysis import lint_plan
        from .storage.stats import CardinalityStats

        stats = CardinalityStats.from_database(engine.db)
        print(lint_plan(translation.plan, stats=stats).annotated_plan())
    elif getattr(args, "dot", False):
        from .core.visualize import plan_to_dot

        print(plan_to_dot(translation.plan))
    elif getattr(args, "cost", False):
        if args.engine != "tlc":
            raise ReproError(
                "--cost is the cost-based planner's report; only tlc "
                "plans carry the pattern statistics it prices"
            )
        from contextlib import nullcontext

        from .planner import (
            DEFAULT_CONSTANTS,
            CalibrationTable,
            active_calibration,
            calibrated,
            plan_physical,
            use_calibration,
        )

        scope = (
            use_calibration(CalibrationTable.load(args.calibration))
            if getattr(args, "calibration", None)
            else nullcontext()
        )
        with scope:
            decision = plan_physical(
                translation.plan, engine.cardinality_stats()
            )
            print(translation.explain())
            print()
            print(decision.render())
            print()
            table = active_calibration()
            if table is None:
                print("cost constants: hand-fit defaults "
                      "(no calibration table loaded)")
            else:
                print(
                    "cost constants: calibrated on XMark factor "
                    f"{table.factor:g} ({table.queries} queries, "
                    f"unit {table.unit_us:g} us/work-unit)"
                )
            for name in sorted(DEFAULT_CONSTANTS):
                value = calibrated(name)
                default = DEFAULT_CONSTANTS[name]
                suffix = (
                    "" if value == default
                    else f"  (default {default:g})"
                )
                print(f"  {name} = {value:g}{suffix}")
    else:
        print(translation.explain())
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    if args.inline_query and (args.query or args.query_file):
        raise ReproError("give the query either inline or via -q/-f")
    query = args.inline_query or _read_query(args)
    engine = _open_engine(args.document)
    from .planner import plan_physical

    translation = engine.plan(query, "tlc", args.optimize, planner=False)
    decision = plan_physical(translation.plan, engine.cardinality_stats())
    if args.json:
        print(decision.to_json(), end="")
    else:
        print(decision.render())
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .rewrites.pipeline import optimize_plan
    from .xquery.translator import translate_query

    if args.inline_query and (args.query or args.query_file):
        raise ReproError("give the query either inline or via -q/-f")
    query = args.inline_query or _read_query(args)
    translation = translate_query(query)
    if args.optimize:
        # verify=False: lint reports what the rewrites produced instead
        # of aborting on the first step that breaks the plan
        translation = optimize_plan(translation, verify=False)
    report = translation.lint()
    print(report.render())
    # exit-code contract: non-zero only at or above the --severity
    # threshold (errors by default; --severity warning gates on any
    # diagnostic at all)
    if args.severity == "warning":
        return 1 if report.diagnostics else 0
    return 0 if report.ok else 1


def cmd_check(args: argparse.Namespace) -> int:
    from .analysis.checker import PASSES, run_check
    from .analysis.findings import Baseline

    passes = args.passes or list(PASSES)
    if args.baseline:
        baseline_path = Path(args.baseline)
    elif args.paths:
        # an explicit source selection is not what the repo baseline
        # describes; suppress nothing unless a baseline is named
        baseline_path = None
    else:
        baseline_path = Path("tools/check_baseline.json")
    baseline = None
    if (
        not args.no_baseline
        and baseline_path is not None
        and baseline_path.exists()
    ):
        baseline = Baseline.load(baseline_path)
    paths = [Path(p) for p in args.paths] if args.paths else None
    result = run_check(paths=paths, baseline=baseline, passes=passes)
    if args.update_baseline:
        if baseline_path is None:
            raise ReproError(
                "--update-baseline with --paths needs an explicit "
                "--baseline file"
            )
        existing = baseline.suppressions if baseline else {}
        updated = Baseline(
            {
                finding.key: existing.get(
                    finding.key, "TODO: review and justify"
                )
                for finding in result.findings
            }
        )
        updated.save(baseline_path)
        print(f"wrote {len(updated.suppressions)} suppressions to "
              f"{baseline_path}")
        return 0
    print(result.render())
    return result.exit_code(strict_baseline=args.strict_baseline)


def cmd_profile(args: argparse.Namespace) -> int:
    if args.inline_query and (args.query or args.query_file):
        raise ReproError("give the query either inline or via -q/-f")
    query = args.inline_query or _read_query(args)
    engine = _open_engine(args.document)
    if getattr(args, "spans", False):
        return _profile_spans(args, engine, query)
    report = engine.measure(
        query,
        engine=args.engine,
        optimize=args.optimize,
        label="profile",
        strict=args.strict,
        trace=True,
    )
    trace = report.trace
    if args.json:
        import json

        from .trace import trace_to_json

        payload = trace_to_json(trace)
        payload["engine"] = report.engine
        payload["result_trees"] = report.result_trees
        payload["wall_seconds"] = round(report.seconds, 6)
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.dot:
        from .trace import trace_to_dot

        print(trace_to_dot(trace, title=f"{args.engine} plan (traced)"))
    else:
        print(trace.render())
        print(
            f"-- query: {report.result_trees} trees in "
            f"{report.seconds * 1000:.1f} ms under {report.engine} "
            f"(wall time includes parse + translate)",
            file=sys.stderr,
        )
    return 0


def _profile_spans(args: argparse.Namespace, engine, query: str) -> int:
    """``profile --spans``: one traced request, Chrome-trace JSON out."""
    import json

    from .service import QueryService
    from .telemetry.hooks import instrument
    from .telemetry.spans import to_chrome_trace

    if args.json or args.dot:
        raise ReproError(
            "--spans emits Chrome-trace JSON already; it does not "
            "combine with --json or --dot"
        )
    mode = getattr(args, "mode", "thread") or "thread"
    with QueryService(
        engine,
        threads=1,
        mode=mode,
        strict=args.strict,
        spans=True,
    ) as svc:
        handle = svc.submit(
            query, engine=args.engine, optimize=args.optimize
        )
        result = handle.result()
        capture = svc.span_store.tail(1)[0]
    instrument("spans.export")
    print(json.dumps(to_chrome_trace([capture]), indent=2, sort_keys=True))
    print(
        f"-- trace {capture.trace_id}: {len(capture.spans)} spans over "
        f"{len(result)} result trees under {mode} mode "
        "(load the JSON in Perfetto / chrome://tracing)",
        file=sys.stderr,
    )
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    from .planner import DEFAULT_CONSTANTS, check_table, run_calibration

    def progress(message: str) -> None:
        print(f"-- {message}", file=sys.stderr, flush=True)

    table = run_calibration(
        factor=args.factor,
        repeats=args.repeats,
        queries=args.queries or None,
        progress=progress,
    )
    problems = check_table(table)
    if problems:
        for problem in problems:
            print(f"error: calibration table invalid: {problem}",
                  file=sys.stderr)
        return 1
    table.save(args.output)
    measured = sum(
        1 for entry in table.operators.values() if entry.get("measured")
    )
    print(f"wrote {args.output}")
    print(
        f"swept XMark factor {table.factor:g}: {table.queries} queries "
        f"x {table.repeats} repeats, {measured}/{len(table.operators)} "
        f"operators measured, unit {table.unit_us:g} us/work-unit"
    )
    for name in sorted(DEFAULT_CONSTANTS):
        print(
            f"  {name} = {getattr(table, name):g} "
            f"(default {DEFAULT_CONSTANTS[name]:g})"
        )
    print(
        f"activate with: REPRO_CALIBRATION={args.output} "
        "(or planner.set_calibration)",
        file=sys.stderr,
    )
    return 0


def cmd_prepare(args: argparse.Namespace) -> int:
    import time

    from .service import QueryService

    if args.inline_query and (args.query or args.query_file):
        raise ReproError("give the query either inline or via -q/-f")
    query = args.inline_query or _read_query(args)
    engine = _open_engine(args.document)
    with QueryService(engine, threads=1, strict=args.strict) as svc:
        started = time.perf_counter()
        prepared = svc.prepare(
            query, engine=args.engine, optimize=args.optimize
        )
        compile_ms = (time.perf_counter() - started) * 1000
        started = time.perf_counter()
        svc.prepare(query, engine=args.engine, optimize=args.optimize)
        cached_ms = (time.perf_counter() - started) * 1000
        if args.explain:
            print(prepared.explain())
        operators = sum(1 for _ in prepared.plan.walk())
        stats = svc.stats().cache
        print(
            f"prepared: {operators} operators under {args.engine}"
            + ("+opt" if args.optimize else "")
        )
        print(
            f"compile {compile_ms:.2f} ms cold, {cached_ms:.3f} ms cached "
            f"(cache {stats.hits} hits / {stats.misses} misses)"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import QueryService
    from .telemetry.querylog import QueryLog

    engine = _open_engine(args.document)
    query_log = (
        QueryLog(sink_path=args.query_log) if args.query_log else None
    )
    slow_threshold = (
        args.slow_ms / 1000.0 if args.slow_ms is not None else None
    )
    workers = args.workers if args.workers is not None else args.threads
    failures = 0
    with QueryService(
        engine,
        threads=workers,
        mode=args.mode,
        start_method=args.start_method,
        cache_size=args.cache_size,
        default_deadline=args.deadline,
        default_max_trees=args.max_trees,
        slow_threshold=slow_threshold,
        query_log=query_log,
        spans=True if args.spans else None,
        feedback_path=args.feedback_file,
    ) as svc:
        if args.mode == "process":
            pids = svc.prime()
            print(
                f"-- {len(pids)} worker processes up "
                f"({svc.start_method})",
                file=sys.stderr,
                flush=True,
            )
        server = None
        if args.http is not None:
            from .telemetry.http import ENDPOINTS, TelemetryServer

            server = TelemetryServer(svc, port=args.http)
            host, port = server.start()
            # announced before stdin is read, so a scraper holding the
            # stdin pipe open can find the endpoints while we serve
            print(
                f"-- telemetry on http://{host}:{port} "
                f"({' '.join(ENDPOINTS)})",
                file=sys.stderr,
                flush=True,
            )
        try:
            # submit as lines arrive: queries overlap on the pool while
            # stdin is still open (and the telemetry endpoints stay
            # scrapeable mid-stream)
            handles = []
            for line in sys.stdin:
                query = line.strip()
                if not query or query.startswith("#"):
                    continue
                handles.append(
                    svc.submit(
                        query, engine=args.engine, optimize=args.optimize
                    )
                )
            if not handles:
                print(
                    "serve: no queries on stdin (one per line)",
                    file=sys.stderr,
                )
                return 1
            for number, handle in enumerate(handles, 1):
                try:
                    result = handle.result()
                except ReproError as error:  # includes structured aborts
                    failures += 1
                    print(
                        f"-- query {number}: error: {error}",
                        file=sys.stderr,
                    )
                    continue
                print(
                    f"-- query {number}: {len(result)} trees",
                    file=sys.stderr,
                )
                for tree in result:
                    print(tree.to_xml())
            stats = svc.stats()
            unit = (
                "worker processes" if stats.mode == "process" else "threads"
            )
            print(
                f"-- served {stats.executed} queries on "
                f"{stats.threads} {unit}"
                f" | cache hits={stats.cache.hits}"
                f" misses={stats.cache.misses}"
                f" evictions={stats.cache.evictions}"
                f" | timeouts={stats.timeouts} failed={stats.failed}"
                f" slow={stats.slow_queries}",
                file=sys.stderr,
            )
            latency = stats.latency.get("all", {})
            if latency.get("count"):
                print(
                    f"-- latency p50={latency['p50_ms']} ms "
                    f"p95={latency['p95_ms']} ms "
                    f"p99={latency['p99_ms']} ms",
                    file=sys.stderr,
                )
        finally:
            if server is not None:
                server.close()
    return 1 if failures and args.strict_exit else 0


def _read_query_log(path: str) -> list:
    """Parse a query-log JSONL file into event dicts (newest last)."""
    import json

    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError as error:
                raise ReproError(
                    f"{path}: not a query-log JSONL file ({error})"
                ) from None
    return events


def _fetch_json(url: str) -> dict:
    import json
    from urllib.error import URLError
    from urllib.request import urlopen

    try:
        with urlopen(url, timeout=10) as response:
            return json.load(response)
    except URLError as error:
        raise ReproError(f"cannot reach {url}: {error}") from None


def _percentile_ms(values: list, q: float) -> float:
    """Exact percentile over a sorted list of millisecond latencies."""
    if not values:
        return 0.0
    rank = q * (len(values) - 1)
    low = int(rank)
    high = min(low + 1, len(values) - 1)
    frac = rank - low
    return round(values[low] + (values[high] - values[low]) * frac, 3)


def cmd_stats(args: argparse.Namespace) -> int:
    import json

    if args.workers:
        if not args.url:
            raise ReproError(
                "--workers reads live pool state; give --url of a "
                "running serve --http"
            )
        payload = _fetch_json(args.url.rstrip("/") + "/workers")
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        method = payload.get("start_method")
        print(
            f"{payload.get('mode', '?')} mode, "
            f"{payload.get('threads', 0)} workers"
            + (f" ({method})" if method else "")
            + f" | in flight={payload.get('in_flight', 0)}"
            f" dispatched={payload.get('dispatched', 0)}"
        )
        for worker in payload.get("workers", []):
            plans = worker.get("plans") or {}
            load_ms = worker.get("snapshot_load_ms")
            load = (
                f"{float(load_ms):.1f} ms snapshot load"
                if load_ms is not None
                else "inherited database"
            )
            print(
                f"  pid {worker.get('pid')}: "
                f"{worker.get('requests', 0)} requests, "
                f"{len(plans)} plan hash(es) "
                f"({sum(plans.values())} executions), {load}"
            )
        if not payload.get("workers"):
            print("  (no worker processes: thread mode or none primed)")
        return 0
    if bool(args.log_file) == bool(args.url):
        raise ReproError("give exactly one of -f/--log-file or --url")
    if args.url:
        payload = _fetch_json(args.url.rstrip("/") + "/stats")
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    events = _read_query_log(args.log_file)
    by_status: dict = {}
    by_engine: dict = {}
    latencies = []
    slow = 0
    cache_hits = 0
    for event in events:
        by_status[event.get("status", "?")] = (
            by_status.get(event.get("status", "?"), 0) + 1
        )
        by_engine[event.get("engine", "?")] = (
            by_engine.get(event.get("engine", "?"), 0) + 1
        )
        latencies.append(float(event.get("ms", 0.0)))
        slow += 1 if event.get("slow") else 0
        cache_hits += 1 if event.get("cache_hit") else 0
    latencies.sort()
    summary = {
        "requests": len(events),
        "by_status": dict(sorted(by_status.items())),
        "by_engine": dict(sorted(by_engine.items())),
        "slow": slow,
        "cache_hits": cache_hits,
        "latency_ms": {
            "p50": _percentile_ms(latencies, 0.50),
            "p95": _percentile_ms(latencies, 0.95),
            "p99": _percentile_ms(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"{summary['requests']} requests ({slow} slow)")
    print(
        "status: "
        + " ".join(f"{k}={v}" for k, v in summary["by_status"].items())
    )
    print(
        "engine: "
        + " ".join(f"{k}={v}" for k, v in summary["by_engine"].items())
    )
    hit_rate = cache_hits / len(events) if events else 0.0
    print(f"plan-cache hits: {cache_hits} ({hit_rate:.0%})")
    lat = summary["latency_ms"]
    print(
        f"latency: p50={lat['p50']} ms p95={lat['p95']} ms "
        f"p99={lat['p99']} ms max={lat['max']} ms"
    )
    return 0


def _format_event(event: dict) -> str:
    mark = "SLOW " if event.get("slow") else ""
    error = f" | {event['error']}" if event.get("error") else ""
    return (
        f"{event.get('trace_id', '?')} {mark}{event.get('status', '?')}"
        f" {event.get('ms', 0.0):>9.3f} ms"
        f" {event.get('result_trees', 0):>6} trees"
        f" [{event.get('engine', '?')}"
        f"{'+opt' if event.get('optimize') else ''}"
        f"{' cached' if event.get('cache_hit') else ''}]"
        f" {event.get('query', '')}{error}"
    )


def _format_trace_summary(trace: dict, top: int = 3) -> str:
    """The hottest operators of a captured slow-query trace."""
    records = sorted(
        trace.get("records", []),
        key=lambda r: r.get("self_seconds", 0.0),
        reverse=True,
    )
    parts = [
        f"{r.get('name', '?')}={r.get('self_seconds', 0.0) * 1000:.2f}ms"
        for r in records[:top]
    ]
    return "hot operators: " + ", ".join(parts) if parts else ""


def cmd_tail(args: argparse.Namespace) -> int:
    if bool(args.log_file) == bool(args.url):
        raise ReproError("give exactly one of -f/--log-file or --url")
    if args.url:
        if not args.slow:
            raise ReproError(
                "--url serves the slow-query ring only; add --slow "
                "(full events live in the serve-side query log file)"
            )
        payload = _fetch_json(args.url.rstrip("/") + "/slow")
        events = payload.get("slow", [])
    else:
        events = _read_query_log(args.log_file)
        if args.slow:
            events = [e for e in events if e.get("slow")]
    for event in events[-args.count:]:
        print(_format_event(event))
        if args.slow and event.get("trace"):
            summary = _format_trace_summary(event["trace"])
            if summary:
                print(f"    {summary}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        Harness,
        figure15_speedups,
        figure15_table,
        figure16_breakdown,
        figure16_table,
        figure17_table,
        operator_breakdown,
    )

    harness = Harness()
    trace = getattr(args, "trace", False)
    if trace and args.figure in ("17", "fastpath", "service", "planner"):
        raise ReproError(
            "--trace breaks down Figures 15 and 16; the other benches "
            "have no per-operator report"
        )
    if args.figure == "service":
        from .bench import bench_service, service_table

        report = bench_service(
            factor=args.factor,
            repeats=args.repeats,
            threads=args.threads,
            harness=harness,
            mode=args.mode,
            start_method=args.start_method,
        )
        print(service_table(report))
        if args.out:
            Path(args.out).write_text(report.to_json())
            print(f"wrote {args.out}", file=sys.stderr)
    elif args.figure == "planner":
        from .bench import compare_planner, planner_table

        report = compare_planner(
            factor=args.factor, repeats=args.repeats, harness=harness
        )
        print(planner_table(report))
        if args.out:
            Path(args.out).write_text(report.to_json())
            print(f"wrote {args.out}", file=sys.stderr)
    elif args.figure == "fastpath":
        if getattr(args, "batch", False):
            from .bench import batch_table, compare_batch

            report = compare_batch(
                factor=args.factor, repeats=args.repeats, harness=harness
            )
            print(batch_table(report))
        else:
            from .bench import compare_fastpath, fastpath_table

            report = compare_fastpath(
                factor=args.factor, repeats=args.repeats, harness=harness
            )
            print(fastpath_table(report))
        if args.out:
            Path(args.out).write_text(report.to_json())
            print(f"wrote {args.out}", file=sys.stderr)
    elif args.figure == "15":
        reports = harness.figure15(
            factor=args.factor, repeats=args.repeats, trace=trace
        )
        print(figure15_table(reports))
        print()
        print(figure15_speedups(reports))
        if trace:
            for report in reports:
                if report.trace is not None:
                    print()
                    print(operator_breakdown(report))
    elif args.figure == "16":
        reports = harness.figure16(
            factor=args.factor, repeats=args.repeats, trace=trace
        )
        print(figure16_table(reports))
        if trace:
            print()
            print(figure16_breakdown(reports))
    else:
        print(figure17_table(harness.figure17(repeats=args.repeats)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="generate a synthetic XMark document"
    )
    generate.add_argument("output", help=".xml or .tlcdb output path")
    generate.add_argument("--factor", type=float, default=0.01)
    generate.add_argument("--seed", type=int, default=20040613)
    generate.set_defaults(func=cmd_generate)

    for name, func in (("query", cmd_query), ("explain", cmd_explain)):
        command = sub.add_parser(
            name,
            help=f"{name} an XQuery against a document",
        )
        command.add_argument(
            "document",
            help=".xml file, .tlcdb file, or xmark:<factor>",
        )
        command.add_argument("-q", "--query", help="inline query text")
        command.add_argument("-f", "--query-file", help="query file")
        command.add_argument(
            "-e", "--engine", default="tlc",
            choices=("tlc", "gtp", "tax", "nav"),
        )
        command.add_argument(
            "-O", "--optimize", action="store_true",
            help="apply the Section 4 rewrites (TLC only)",
        )
        if name == "query":
            command.add_argument(
                "--stats", action="store_true",
                help="print timing and work counters to stderr",
            )
        else:
            command.add_argument(
                "--dot", action="store_true",
                help="emit Graphviz DOT instead of the text rendering",
            )
            command.add_argument(
                "--lint", action="store_true",
                help="annotate each operator with its LC-flow "
                "(produced/consumed/live classes) and any diagnostics",
            )
            command.add_argument(
                "--cost", action="store_true",
                help="append the cost-based planner's report: chosen "
                "vs rejected physical shapes with cost estimates, plus "
                "the calibrated-vs-default cost constants (TLC only)",
            )
            command.add_argument(
                "--calibration", default=None, metavar="FILE",
                help="with --cost: plan under this calibration table "
                "(default: REPRO_CALIBRATION / hand-fit constants)",
            )
        command.set_defaults(func=func)

    plan = sub.add_parser(
        "plan",
        help="run the cost-based physical planner and print its "
        "decision record (chosen vs rejected shapes with estimates)",
    )
    plan.add_argument(
        "inline_query", nargs="?", default=None, metavar="query",
        help="the XQuery text (or use -q/-f/stdin)",
    )
    plan.add_argument(
        "-d", "--document", default="xmark:0.002",
        help=".xml file, .tlcdb file, or xmark:<factor> "
        "(default: xmark:0.002)",
    )
    plan.add_argument("-q", "--query", help="inline query text")
    plan.add_argument("-f", "--query-file", help="query file")
    plan.add_argument(
        "-O", "--optimize", action="store_true",
        help="plan after the Section 4 rewrites",
    )
    plan.add_argument(
        "--json", action="store_true",
        help="emit the PlanDecision as JSON instead of the text report",
    )
    plan.set_defaults(func=cmd_plan)

    lint = sub.add_parser(
        "lint",
        help="statically check a query's TLC plan without running it",
    )
    lint.add_argument(
        "inline_query", nargs="?", default=None, metavar="query",
        help="the XQuery text (or use -q/-f/stdin)",
    )
    lint.add_argument("-q", "--query", help="inline query text")
    lint.add_argument("-f", "--query-file", help="query file")
    lint.add_argument(
        "-O", "--optimize", action="store_true",
        help="lint the plan after the Section 4 rewrites",
    )
    lint.add_argument(
        "--severity", choices=("error", "warning"), default="error",
        help="exit non-zero at this severity and above "
        "(default: error — warnings alone exit 0)",
    )
    lint.set_defaults(func=cmd_lint)

    check = sub.add_parser(
        "check",
        help="run the three-pass static analysis suite (concurrency "
        "lint, fork/pickle-safety certification, cardinality bounds) "
        "against the suppression baseline",
    )
    check.add_argument(
        "--pass", dest="passes", action="append",
        choices=("concurrency", "forksafety", "cardinality"),
        help="run only this pass (repeatable; default: all three)",
    )
    check.add_argument(
        "--paths", nargs="+", metavar="PATH",
        help="source files/dirs for the concurrency pass "
        "(default: the installed repro package)",
    )
    check.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppression baseline (default: tools/check_baseline.json "
        "when present)",
    )
    check.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    check.add_argument(
        "--strict-baseline", action="store_true",
        help="also fail on stale baseline entries (CI drift detection)",
    )
    check.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings "
        "(keeps existing reasons) instead of failing",
    )
    check.set_defaults(func=cmd_check)

    profile = sub.add_parser(
        "profile",
        help="EXPLAIN ANALYZE: run a query and print its plan annotated "
        "with per-operator costs",
    )
    profile.add_argument(
        "inline_query", nargs="?", default=None, metavar="query",
        help="the XQuery text (or use -q/-f/stdin)",
    )
    profile.add_argument(
        "-d", "--document", default="xmark:0.002",
        help=".xml file, .tlcdb file, or xmark:<factor> "
        "(default: xmark:0.002)",
    )
    profile.add_argument("-q", "--query", help="inline query text")
    profile.add_argument("-f", "--query-file", help="query file")
    profile.add_argument(
        "-e", "--engine", default="tlc", choices=("tlc", "gtp", "tax"),
        help="algebraic engine to profile (nav has no operator plan)",
    )
    profile.add_argument(
        "-O", "--optimize", action="store_true",
        help="apply the Section 4 rewrites (TLC only)",
    )
    profile.add_argument(
        "--strict", action="store_true",
        help="lint the TLC plan with the static analyzer before running",
    )
    profile.add_argument(
        "--dot", action="store_true",
        help="emit annotated Graphviz DOT instead of the text tree",
    )
    profile.add_argument(
        "--json", action="store_true",
        help="emit the trace as JSON (trace_to_json payload) instead "
        "of the text tree",
    )
    profile.add_argument(
        "--spans", action="store_true",
        help="run the query through the traced service and emit the "
        "request's span tree as Chrome-trace-event JSON "
        "(Perfetto / chrome://tracing)",
    )
    profile.add_argument(
        "--mode", choices=("thread", "process"), default="thread",
        help="with --spans: execution backend — process adds the "
        "worker-side spans (serialize, IPC, execute) to the trace",
    )
    profile.set_defaults(func=cmd_profile)

    calibrate = sub.add_parser(
        "calibrate",
        help="measure the cost model's constants on a traced XMark "
        "sweep and write a calibration table for REPRO_CALIBRATION",
    )
    calibrate.add_argument(
        "--factor", type=float, default=0.05,
        help="XMark scale factor to sweep (default 0.05)",
    )
    calibrate.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per configuration; the fastest run "
        "counts (default 3)",
    )
    calibrate.add_argument(
        "--queries", nargs="+", default=None, metavar="XQUERY",
        help="calibrate on these query texts instead of the paper's "
        "benchmark set",
    )
    calibrate.add_argument(
        "-o", "--output", default="CALIBRATION.json",
        help="where to write the table (default CALIBRATION.json)",
    )
    calibrate.set_defaults(func=cmd_calibrate)

    bench = sub.add_parser(
        "bench",
        help="regenerate a paper figure or the fast-path comparison",
    )
    bench.add_argument(
        "figure",
        choices=("15", "16", "17", "fastpath", "service", "planner"),
    )
    bench.add_argument("--factor", type=float, default=0.002)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument(
        "--threads", type=int, default=8,
        help="service only: workers for the concurrent batch "
        "(threads or processes, per --mode)",
    )
    bench.add_argument(
        "--mode", choices=("thread", "process"), default="thread",
        help="service only: execution backend for the pooled batch "
        "(process = one worker process per --threads, the multi-core "
        "configuration)",
    )
    bench.add_argument(
        "--start-method", choices=("fork", "spawn"), default=None,
        help="service only, with --mode process: how workers get the "
        "database (fork inherits it; spawn loads a verified snapshot)",
    )
    bench.add_argument(
        "--trace", action="store_true",
        help="per-operator breakdown (Figures 15 and 16): trace every "
        "run and attribute costs to individual operators",
    )
    bench.add_argument(
        "--batch", action="store_true",
        help="fastpath only: compare the batch runtime against the "
        "per-tree fast path instead (the BENCH_8 experiment; "
        "--out e.g. BENCH_8.json)",
    )
    bench.add_argument(
        "--out",
        help="fastpath/service/planner only: also write the report as "
        "JSON (e.g. BENCH_3.json / BENCH_4.json / BENCH_9.json)",
    )
    bench.set_defaults(func=cmd_bench)

    prepare = sub.add_parser(
        "prepare",
        help="compile a query through the prepared-plan cache and "
        "report the compile cost the cache saves",
    )
    prepare.add_argument(
        "inline_query", nargs="?", default=None, metavar="query",
        help="the XQuery text (or use -q/-f/stdin)",
    )
    prepare.add_argument(
        "-d", "--document", default="xmark:0.002",
        help=".xml file, .tlcdb file, or xmark:<factor> "
        "(default: xmark:0.002)",
    )
    prepare.add_argument("-q", "--query", help="inline query text")
    prepare.add_argument("-f", "--query-file", help="query file")
    prepare.add_argument(
        "-e", "--engine", default="tlc", choices=("tlc", "gtp", "tax"),
        help="algebraic engine to prepare for (nav has no plan)",
    )
    prepare.add_argument(
        "-O", "--optimize", action="store_true",
        help="cache the plan after the Section 4 rewrites",
    )
    prepare.add_argument(
        "--strict", action="store_true",
        help="lint the TLC plan before it enters the cache",
    )
    prepare.add_argument(
        "--explain", action="store_true",
        help="also print the compiled plan",
    )
    prepare.set_defaults(func=cmd_prepare)

    serve = sub.add_parser(
        "serve",
        help="run queries from stdin (one per line) through the "
        "concurrent query service",
    )
    serve.add_argument(
        "document", help=".xml file, .tlcdb file, or xmark:<factor>"
    )
    serve.add_argument(
        "-e", "--engine", default="tlc", choices=("tlc", "gtp", "tax"),
    )
    serve.add_argument(
        "-O", "--optimize", action="store_true",
        help="apply the Section 4 rewrites (TLC only)",
    )
    serve.add_argument(
        "--threads", type=int, default=4,
        help="worker threads (default 4)",
    )
    serve.add_argument(
        "--mode", choices=("thread", "process"), default="thread",
        help="execution backend: thread (default) or process — worker "
        "processes each holding their own copy of the database, the "
        "mode that scales with cores",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="worker count for --mode process (defaults to --threads)",
    )
    serve.add_argument(
        "--start-method", choices=("fork", "spawn"), default=None,
        help="with --mode process: fork (workers inherit the database) "
        "or spawn (workers load a digest-verified snapshot); default "
        "picks the platform's",
    )
    serve.add_argument(
        "--cache-size", type=int, default=64,
        help="prepared-plan cache capacity (default 64)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None,
        help="per-query wall-clock budget in seconds",
    )
    serve.add_argument(
        "--max-trees", type=int, default=None,
        help="per-query output-cardinality budget",
    )
    serve.add_argument(
        "--strict-exit", action="store_true",
        help="exit 1 when any query failed (default: report and exit 0)",
    )
    serve.add_argument(
        "--http", type=int, default=None, metavar="PORT",
        help="expose /metrics /stats /healthz /slow on this port "
        "(0 picks an ephemeral port; address printed to stderr)",
    )
    serve.add_argument(
        "--slow-ms", type=float, default=None, metavar="MS",
        help="slow-query threshold in milliseconds: slower requests "
        "are logged and capture an EXPLAIN ANALYZE trace",
    )
    serve.add_argument(
        "--query-log", default=None, metavar="PATH",
        help="append one JSON line per request to this file "
        "(read back with 'stats -f' / 'tail -f')",
    )
    serve.add_argument(
        "--spans", action="store_true",
        help="record a span tree per request (parse, plan, queue, "
        "dispatch, worker execute, merge) served at /trace/<id> as "
        "Chrome-trace JSON; default follows REPRO_SPANS",
    )
    serve.add_argument(
        "--feedback-file", default=None, metavar="PATH",
        help="load observed-cardinality feedback from this JSON file "
        "at start and save it back on shutdown",
    )
    serve.set_defaults(func=cmd_serve)

    stats = sub.add_parser(
        "stats",
        help="summarise a query-log JSONL file, or fetch /stats from "
        "a running serve --http",
    )
    stats.add_argument(
        "-f", "--log-file", default=None,
        help="query-log JSONL file written by serve --query-log",
    )
    stats.add_argument(
        "--url", default=None,
        help="base URL of a running serve --http (fetches /stats)",
    )
    stats.add_argument(
        "--json", action="store_true",
        help="print the aggregate as JSON instead of text",
    )
    stats.add_argument(
        "--workers", action="store_true",
        help="with --url: fetch /workers instead — per-worker-process "
        "requests served, plans cached, snapshot load time",
    )
    stats.set_defaults(func=cmd_stats)

    tail = sub.add_parser(
        "tail",
        help="print the newest query-log events (or the slow-query "
        "ring of a running serve --http)",
    )
    tail.add_argument(
        "-f", "--log-file", default=None,
        help="query-log JSONL file written by serve --query-log",
    )
    tail.add_argument(
        "--url", default=None,
        help="base URL of a running serve --http (fetches /slow; "
        "requires --slow)",
    )
    tail.add_argument(
        "-n", "--count", type=int, default=20,
        help="events to show (default 20)",
    )
    tail.add_argument(
        "--slow", action="store_true",
        help="only slow events, with each capture's hottest operators",
    )
    tail.set_defaults(func=cmd_tail)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
