"""Binary persistence for the node store.

TIMBER is a disk-resident database; this module gives the substrate a
durable format so generated XMark documents (expensive to rebuild at
large factors) can be saved once and reopened instantly.  The format is
a compact little-endian layout:

* header: magic ``TLCDB``, format version, document count;
* per document: name, a string table (tags and values are interned),
  then the record array — ``tag_ref, value_ref, start, end, level,
  parent, n_children, children…`` as varint-free fixed 32-bit fields.

Indexes are rebuilt on load (they derive from the records; rebuilding is
linear and keeps the format minimal).
"""

from __future__ import annotations

import hashlib
import io
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Dict, List, Union

from ..errors import StorageError
from .database import Database
from .document import Document, NodeRecord

MAGIC = b"TLCDB"
VERSION = 1

_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")
_HEADER = struct.Struct("<5sBI")
# tag, value, start, end, level, parent, n_children
_RECORD_FIXED = struct.Struct("<IiIIIiI")


def _write_u32(stream: BinaryIO, value: int) -> None:
    stream.write(_U32.pack(value))


def _read_u32(stream: BinaryIO) -> int:
    data = stream.read(4)
    if len(data) != 4:
        raise StorageError("truncated database file")
    return _U32.unpack(data)[0]


def _write_str(stream: BinaryIO, text: str) -> None:
    encoded = text.encode("utf-8")
    _write_u32(stream, len(encoded))
    stream.write(encoded)


def _read_str(stream: BinaryIO) -> str:
    length = _read_u32(stream)
    data = stream.read(length)
    if len(data) != length:
        raise StorageError("truncated database file")
    return data.decode("utf-8")


def save_database(db: Database, path: Union[str, Path]) -> None:
    """Write every document of ``db`` to ``path`` in the TLCDB format."""
    names = db.document_names()
    with open(path, "wb") as stream:
        stream.write(_HEADER.pack(MAGIC, VERSION, len(names)))
        for name in names:
            _save_document(stream, db.document(name))


def _save_document(stream: BinaryIO, document: Document) -> None:
    _write_str(stream, document.name)
    strings: Dict[str, int] = {}
    order: List[str] = []

    def intern(text: str) -> int:
        if text not in strings:
            strings[text] = len(order)
            order.append(text)
        return strings[text]

    # first pass: build the string table (value index 0 = the None marker)
    intern("")  # reserved: None values reference slot 0 via flag -1 below
    encoded_records = []
    for record in document.records:
        tag_ref = intern(record.tag)
        value_ref = -1 if record.value is None else intern(record.value)
        encoded_records.append((tag_ref, value_ref, record))
    _write_u32(stream, len(order))
    for text in order:
        _write_str(stream, text)
    _write_u32(stream, len(encoded_records))
    for tag_ref, value_ref, record in encoded_records:
        stream.write(
            _RECORD_FIXED.pack(
                tag_ref,
                value_ref,
                record.start,
                record.end,
                record.level,
                record.parent,
                len(record.children),
            )
        )
        for child in record.children:
            _write_u32(stream, child)


def load_database(
    path: Union[str, Path], pool_pages: int = None
) -> Database:
    """Open a TLCDB file as a fresh :class:`Database` (indexes rebuilt)."""
    from .database import DEFAULT_POOL_PAGES

    db = Database(pool_pages or DEFAULT_POOL_PAGES)
    with open(path, "rb") as stream:
        header = stream.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise StorageError(f"{path}: not a TLCDB file")
        magic, version, n_docs = _HEADER.unpack(header)
        if magic != MAGIC:
            raise StorageError(f"{path}: bad magic {magic!r}")
        if version != VERSION:
            raise StorageError(
                f"{path}: unsupported format version {version}"
            )
        for _ in range(n_docs):
            _load_document(stream, db)
    return db


def _load_document(stream: BinaryIO, db: Database) -> Document:
    name = _read_str(stream)
    n_strings = _read_u32(stream)
    strings = [_read_str(stream) for _ in range(n_strings)]
    n_records = _read_u32(stream)
    records: List[NodeRecord] = []
    for _ in range(n_records):
        fixed = stream.read(_RECORD_FIXED.size)
        if len(fixed) != _RECORD_FIXED.size:
            raise StorageError("truncated record")
        (tag_ref, value_ref, start, end, level, parent,
         n_children) = _RECORD_FIXED.unpack(fixed)
        children = tuple(_read_u32(stream) for _ in range(n_children))
        records.append(
            NodeRecord(
                strings[tag_ref],
                None if value_ref < 0 else strings[value_ref],
                start,
                end,
                level,
                parent,
                children,
            )
        )
    return _register_loaded(db, name, records)


@dataclass(frozen=True)
class SnapshotHandle:
    """A verifiable reference to a TLCDB snapshot on disk.

    The process-pool handshake: the dispatcher writes the immutable
    database once with :func:`write_snapshot` and ships the (tiny,
    picklable) handle to spawn-mode workers, each of which materializes
    its private copy with :func:`open_snapshot`.  The sha256 digest
    pins the exact bytes — a worker that finds different content (a
    concurrently rewritten temp file, a stale path from a previous
    serve run) fails loudly instead of silently answering queries
    against the wrong document set.
    """

    path: str
    #: sha256 hex digest of the snapshot file's bytes
    digest: str
    #: buffer-pool capacity the source database ran with, so workers
    #: reproduce its paging behaviour (and its counter profile)
    pool_pages: int


def _digest_file(path: Union[str, Path]) -> str:
    sha = hashlib.sha256()
    with open(path, "rb") as stream:
        for chunk in iter(lambda: stream.read(1 << 20), b""):
            sha.update(chunk)
    return sha.hexdigest()


def write_snapshot(db: Database, path: Union[str, Path]) -> SnapshotHandle:
    """Persist ``db`` and return the handle spawn-mode workers load."""
    save_database(db, path)
    return SnapshotHandle(
        path=str(path),
        digest=_digest_file(path),
        pool_pages=db.pool.capacity,
    )


def open_snapshot(handle: SnapshotHandle) -> Database:
    """Load a snapshot, verifying its digest before trusting a byte."""
    actual = _digest_file(handle.path)
    if actual != handle.digest:
        raise StorageError(
            f"{handle.path}: snapshot digest mismatch "
            f"(expected {handle.digest[:12]}…, found {actual[:12]}…); "
            "refusing to serve queries against unverified data"
        )
    return load_database(handle.path, pool_pages=handle.pool_pages)


def _register_loaded(
    db: Database, name: str, records: List[NodeRecord]
) -> Document:
    """Install a record array as a document and rebuild its indexes."""
    from .indexes import TagIndex, ValueIndex

    doc_id = (
        db.document(name).doc_id
        if name in db.document_names()
        else len(db._by_id)
    )
    document = Document(name, doc_id)
    document.records = records
    document._by_start = {r.start: i for i, r in enumerate(records)}
    document.attach(db.pool, db.metrics)
    db._by_name[name] = document
    db._by_id[doc_id] = document
    db._tag_indexes[doc_id] = TagIndex(document)
    db._value_indexes[doc_id] = ValueIndex(document)
    return document
