"""The database: documents, indexes, buffer pool and metrics.

This is the TIMBER-substrate facade every engine talks to.  All stored-node
access is metered through one shared buffer pool so that the relative I/O
behaviour of TLC, TAX, GTP and the navigational evaluator is comparable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import StorageError
from ..model.node_id import NodeId
from ..model.tree import TNode
from .document import Document
from .indexes import TagIndex, ValueIndex
from .page import BufferPool
from .postings import Postings
from .stats import Metrics
from .xml_parser import ParsedElement, parse_xml

#: Default pool size: 2048 pages × 64 records ≈ 128k resident records,
#: the spirit of the paper's 128 MB pool scaled to the simulation.
DEFAULT_POOL_PAGES = 2048


class Database:
    """A collection of stored XML documents with tag and value indexes."""

    def __init__(self, pool_pages: int = DEFAULT_POOL_PAGES) -> None:
        self.metrics = Metrics()
        self.pool = BufferPool(pool_pages, self.metrics)
        self._by_name: Dict[str, Document] = {}
        self._by_id: Dict[int, Document] = {}
        self._tag_indexes: Dict[int, TagIndex] = {}
        self._value_indexes: Dict[int, ValueIndex] = {}
        #: bumped on every (re)load; compiled plans embed document
        #: structure assumptions, so the service layer's plan cache
        #: treats entries from an older generation as stale
        self.generation = 0

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load_xml(self, name: str, text: str) -> Document:
        """Parse ``text`` and store it under ``name`` (replaces existing)."""
        return self.load_parsed(name, parse_xml(text))

    def load_parsed(self, name: str, root: ParsedElement) -> Document:
        """Store an already-parsed tree under ``name``."""
        doc_id = self._by_name[name].doc_id if name in self._by_name else len(
            self._by_id
        )
        document = Document.from_parsed(name, doc_id, root)
        document.attach(self.pool, self.metrics)
        self._by_name[name] = document
        self._by_id[doc_id] = document
        self._tag_indexes[doc_id] = TagIndex(document)
        self._value_indexes[doc_id] = ValueIndex(document)
        self.generation += 1
        return document

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def document(self, name: str) -> Document:
        """The document stored under ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise StorageError(f"no document named {name!r}") from None

    def document_names(self) -> List[str]:
        """Names of all stored documents."""
        return sorted(self._by_name)

    def owner(self, nid: NodeId) -> Document:
        """The document a node id belongs to."""
        try:
            return self._by_id[nid.doc]
        except KeyError:
            raise StorageError(f"node {nid} belongs to no document") from None

    # ------------------------------------------------------------------
    # metered node access (delegates to the owning document)
    # ------------------------------------------------------------------
    def tag_of(self, nid: NodeId) -> str:
        """Tag of a stored node."""
        return self.owner(nid).tag_of(nid)

    def value_of(self, nid: NodeId) -> Optional[str]:
        """Atomic content of a stored node."""
        return self.owner(nid).value_of(nid)

    def children(self, nid: NodeId) -> List[NodeId]:
        """Children of a stored node, in document order."""
        return self.owner(nid).children_ids(nid)

    def parent(self, nid: NodeId) -> Optional[NodeId]:
        """Parent of a stored node (None for a doc_root)."""
        return self.owner(nid).parent_id(nid)

    def subtree(self, nid: NodeId, lcls=None) -> TNode:
        """Materialise the full subtree under ``nid`` (pays full I/O)."""
        return self.owner(nid).subtree(nid, lcls)

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def tag_lookup(self, doc_name: str, tag: str) -> Postings:
        """Postings with ``tag`` in the named document (via tag index).

        Returns the index's immutable columnar
        :class:`~repro.storage.postings.Postings` view — node ids in
        document order, with the precomputed ``starts``/``ends``/``levels``
        columns the structural joins consume directly.  The view is shared,
        not copied; callers must not mutate it (they cannot).
        """
        document = self.document(doc_name)
        return self._tag_indexes[document.doc_id].lookup(
            tag, self.pool, self.metrics
        )

    def value_lookup(
        self, doc_name: str, tag: str, op: str, value
    ) -> List[NodeId]:
        """Node ids with ``tag`` whose content satisfies ``op value``."""
        document = self.document(doc_name)
        return self._value_indexes[document.doc_id].lookup(
            tag, op, value, self.pool, self.metrics
        )

    def tag_index(self, doc_name: str) -> TagIndex:
        """The raw tag index of a document (statistics, optimizers)."""
        return self._tag_indexes[self.document(doc_name).doc_id]

    # ------------------------------------------------------------------
    # bench support
    # ------------------------------------------------------------------
    def reset_metrics(self, cold_cache: bool = False) -> None:
        """Zero counters; optionally also evict the buffer pool."""
        self.metrics.reset()
        if cold_cache:
            self.pool.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Database docs={self.document_names()}>"
