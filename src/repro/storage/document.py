"""Stored documents: interval-encoded node records behind the buffer pool.

A document is a flat array of :class:`NodeRecord` in document (pre-) order —
record index *i* is the *i*-th node of a depth-first walk, which means nodes
are "clustered with their children" on pages exactly as TIMBER stores them
(Section 6.3, footnote 8).  Interval ids are assigned with an enter/exit
counter so strict containment tests work for leaves as well.

Attributes are stored as child nodes tagged ``@name`` (preceding element
children), matching the paper's pattern trees where ``@id`` and ``@person``
appear as pattern nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import StorageError
from ..model.node_id import NodeId
from ..model.tree import TNode
from .page import NODES_PER_PAGE, BufferPool
from .stats import Metrics
from .xml_parser import ParsedElement


@dataclass
class NodeRecord:
    """On-"disk" representation of one node."""

    tag: str
    value: Optional[str]
    start: int
    end: int
    level: int
    parent: int  # record index of the parent; -1 for the root
    children: Tuple[int, ...]  # record indexes of children, document order

    __slots__ = ("tag", "value", "start", "end", "level", "parent", "children")


class Document:
    """One stored XML document with metered record access."""

    def __init__(self, name: str, doc_id: int) -> None:
        self.name = name
        self.doc_id = doc_id
        self.records: List[NodeRecord] = []
        self._by_start: Dict[int, int] = {}
        self._pool: Optional[BufferPool] = None
        self._metrics: Optional[Metrics] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_parsed(
        cls, name: str, doc_id: int, root: ParsedElement
    ) -> "Document":
        """Build a document from a parse tree, assigning interval ids.

        The stored root is a synthetic ``doc_root`` element wrapping the
        document element, mirroring the paper's plans whose pattern trees
        start at ``doc_root``.
        """
        doc = cls(name, doc_id)
        counter = [0]

        def enter() -> int:
            counter[0] += 1
            return counter[0]

        def store(
            tag: str, value: Optional[str], level: int, parent: int
        ) -> int:
            idx = len(doc.records)
            doc.records.append(
                NodeRecord(tag, value, 0, 0, level, parent, ())
            )
            return idx

        def build(element: ParsedElement, level: int, parent: int) -> int:
            idx = store(element.tag, element.text, level, parent)
            start = enter()
            child_idxs: List[int] = []
            for attr_name, attr_value in element.attrs.items():
                attr_idx = store(
                    "@" + attr_name, attr_value, level + 1, idx
                )
                attr_start = enter()
                attr_end = enter()
                rec = doc.records[attr_idx]
                rec.start, rec.end = attr_start, attr_end
                child_idxs.append(attr_idx)
            for child in element.children:
                child_idxs.append(build(child, level + 1, idx))
            end = enter()
            rec = doc.records[idx]
            rec.start, rec.end = start, end
            rec.children = tuple(child_idxs)
            return idx

        root_idx = store("doc_root", None, 0, -1)
        root_start = enter()
        child_idx = build(root, 1, root_idx)
        root_end = enter()
        rec = doc.records[root_idx]
        rec.start, rec.end = root_start, root_end
        rec.children = (child_idx,)
        doc._by_start = {r.start: i for i, r in enumerate(doc.records)}
        return doc

    def attach(self, pool: BufferPool, metrics: Metrics) -> None:
        """Connect this document to a database's buffer pool and metrics."""
        self._pool = pool
        self._metrics = metrics

    # ------------------------------------------------------------------
    # metered access
    # ------------------------------------------------------------------
    def _touch(self, record_idx: int) -> None:
        if self._pool is not None:
            self._pool.access((self.doc_id, record_idx // NODES_PER_PAGE))
        if self._metrics is not None:
            self._metrics.nodes_touched += 1

    def node_id(self, record_idx: int) -> NodeId:
        """Interval id of the record at ``record_idx`` (no page touch)."""
        rec = self.records[record_idx]
        return NodeId(self.doc_id, rec.start, rec.end, rec.level)

    def index_of(self, nid: NodeId) -> int:
        """Record index of a node id belonging to this document."""
        if nid.doc != self.doc_id:
            raise StorageError(
                f"node {nid} does not belong to document {self.name}"
            )
        try:
            return self._by_start[nid.start]
        except KeyError:
            raise StorageError(f"unknown node id {nid}") from None

    def fetch(self, record_idx: int) -> NodeRecord:
        """Read one record through the buffer pool."""
        self._touch(record_idx)
        return self.records[record_idx]

    def fetch_by_id(self, nid: NodeId) -> NodeRecord:
        """Read the record for a node id through the buffer pool."""
        return self.fetch(self.index_of(nid))

    @property
    def root_id(self) -> NodeId:
        """Id of the synthetic ``doc_root`` node."""
        return self.node_id(0)

    def children_ids(self, nid: NodeId) -> List[NodeId]:
        """Ids of the children of ``nid``, in document order (metered)."""
        rec = self.fetch_by_id(nid)
        out = []
        for child_idx in rec.children:
            self._touch(child_idx)
            out.append(self.node_id(child_idx))
        return out

    def parent_id(self, nid: NodeId) -> Optional[NodeId]:
        """Id of the parent of ``nid`` or ``None`` for the root (metered)."""
        rec = self.fetch_by_id(nid)
        if rec.parent < 0:
            return None
        return self.node_id(rec.parent)

    def value_of(self, nid: NodeId) -> Optional[str]:
        """Atomic content of ``nid`` (metered)."""
        return self.fetch_by_id(nid).value

    def tag_of(self, nid: NodeId) -> str:
        """Tag of ``nid`` (metered)."""
        return self.fetch_by_id(nid).tag

    def subtree(self, nid: NodeId, lcls=None) -> TNode:
        """Materialise the full subtree rooted at ``nid`` as in-memory tree.

        Every record in the subtree is read through the buffer pool — this
        is the "data materialization cost" the paper discusses; TAX pays it
        early for every bound variable, TLC/GTP only at Construct time.
        """
        root_idx = self.index_of(nid)

        def build(idx: int) -> TNode:
            rec = self.fetch(idx)
            node = TNode(rec.tag, rec.value, self.node_id(idx))
            for child_idx in rec.children:
                node.add_child(build(child_idx))
            return node

        node = build(root_idx)
        if lcls:
            node.lcls.update(lcls)
        return node

    def iter_ids(self) -> Iterator[NodeId]:
        """All node ids in document order (unmetered; used by index builds)."""
        for idx in range(len(self.records)):
            yield self.node_id(idx)

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Document {self.name!r} nodes={len(self.records)}>"
