"""Columnar posting lists: the storage side of the structural-join fast path.

The paper's performance argument (Sections 5-6) rests on interval-encoded
structural joins being cheap.  In the original Python substrate every join
call rebuilt a ``(doc, start)`` key array from its input node ids and every
index lookup copied its posting list — pure interpreter overhead on the
hottest primitive.  A :class:`Postings` object fixes both: it is an
**immutable, columnar view** of one tag's node ids, carrying the parallel
``starts`` / ``ends`` / ``levels`` arrays, so joins binary-search
ready-made columns instead of rebuilding them per call.

The columns are built **lazily** and stored compactly: ``ends`` and
``levels`` are C-typed integer columns (``array('l')``, or numpy arrays
when the batch runtime's numpy flag is on — see
:mod:`repro.columns.arrays`), and nothing is derived until a consumer
first touches it, so callers that only iterate ``ids`` (containment
checks, the value index's sorted probes) never pay for columns they do
not read.  ``starts`` stays a list of ``(doc, start)`` tuples because
the join cursors probe it with tuple keys through ``bisect``.

``at_level`` additionally partitions the postings by tree level (lazily,
cached), which lets a parent-child join probe only the ``parent.level + 1``
slice instead of scanning the parent's whole descendant range and filtering
— the level-split trick of the structural-join lineage (Al-Khalifa et al.,
survey in "A Survey of XML Tree Patterns").  Partitions are carved out of
the parent's already-built columns by index positions instead of
re-deriving every column from the node ids.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..columns.arrays import int_column, take
from ..model.node_id import NodeId


class Postings(Sequence[NodeId]):
    """Immutable columnar view of a sorted node-id posting list.

    Behaves as a read-only ``Sequence[NodeId]`` (so existing callers that
    iterated or indexed the old list results keep working, and ``== []``
    style comparisons still hold), while exposing the parallel columns the
    structural joins consume directly:

    * ``ids``     — the node ids themselves, document order;
    * ``starts``  — ``(doc, start)`` probe keys, sorted ascending;
    * ``ends``    — interval ends, aligned with ``ids``;
    * ``levels``  — tree levels, aligned with ``ids``;
    * ``record_indexes`` — optional document record indexes aligned with
      ``ids``, letting scans fetch records without per-node id resolution.

    ``starts``/``ends``/``levels`` are properties over lazily-built
    compact columns; reading them is idempotent and cheap after the
    first touch.
    """

    __slots__ = ("ids", "record_indexes",
                 "_starts", "_ends", "_levels", "_by_level")

    def __init__(
        self,
        ids: Sequence[NodeId],
        record_indexes: Optional[Sequence[int]] = None,
    ) -> None:
        self.ids: Tuple[NodeId, ...] = tuple(ids)
        self.record_indexes: Optional[Tuple[int, ...]] = (
            tuple(record_indexes) if record_indexes is not None else None
        )
        self._starts: Optional[List[Tuple[int, int]]] = None
        self._ends = None
        self._levels = None
        self._by_level: Optional[Dict[int, "Postings"]] = None

    # ------------------------------------------------------------------
    # lazy columns
    # ------------------------------------------------------------------
    @property
    def starts(self) -> List[Tuple[int, int]]:
        """``(doc, start)`` probe keys, built on first touch."""
        if self._starts is None:
            self._starts = [(n.doc, n.start) for n in self.ids]
        return self._starts

    @property
    def ends(self):
        """Interval ends as a compact integer column (lazy)."""
        if self._ends is None:
            self._ends = int_column([n.end for n in self.ids])
        return self._ends

    @property
    def levels(self):
        """Tree levels as a compact integer column (lazy)."""
        if self._levels is None:
            self._levels = int_column([n.level for n in self.ids])
        return self._levels

    # ------------------------------------------------------------------
    # level partitions (the pc-axis fast path)
    # ------------------------------------------------------------------
    def _partition(self, positions: List[int]) -> "Postings":
        """A sub-view at the given index positions, sharing built columns.

        Columns the parent has already materialised are *sliced* (taken
        by position) rather than re-derived from the node ids; columns
        never touched stay lazy in the child too.
        """
        ids = self.ids
        child = Postings.__new__(Postings)
        child.ids = tuple(ids[i] for i in positions)
        child.record_indexes = (
            tuple(self.record_indexes[i] for i in positions)
            if self.record_indexes is not None
            else None
        )
        child._starts = (
            [self._starts[i] for i in positions]
            if self._starts is not None
            else None
        )
        child._ends = (
            take(self._ends, positions) if self._ends is not None else None
        )
        child._levels = None  # constant within a partition; rarely read
        child._by_level = None
        return child

    def at_level(self, level: int) -> "Postings":
        """The sub-postings at exactly ``level``, document order.

        Partitions are built lazily on first use and cached; a level with
        no postings returns the shared empty view.
        """
        if self._by_level is None:
            groups: Dict[int, List[int]] = {}
            for position, node_level in enumerate(self.levels):
                groups.setdefault(int(node_level), []).append(position)
            self._by_level = {
                node_level: self._partition(positions)
                for node_level, positions in groups.items()
            }
        return self._by_level.get(level, EMPTY_POSTINGS)

    def levels_present(self) -> List[int]:
        """Distinct tree levels with at least one posting (ascending)."""
        return sorted({int(level) for level in self.levels})

    # ------------------------------------------------------------------
    # Sequence protocol (read-only)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ids)

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[NodeId, Tuple[NodeId, ...]]:
        return self.ids[index]

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.ids)

    def __contains__(self, item: object) -> bool:
        """Membership by binary search over the sorted ``starts`` column.

        ``ids`` are sorted by ``(doc, start)``, so a stored node id is
        found in logarithmic time instead of the former O(n) tuple scan.
        Non-:class:`NodeId` probes (temporary ids, arbitrary objects)
        keep the linear fallback — they are never in a posting list, but
        equality semantics stay exactly list-like.
        """
        if isinstance(item, NodeId):
            starts = self.starts
            position = bisect_left(starts, (item.doc, item.start))
            ids = self.ids
            while position < len(ids):
                if starts[position] != (item.doc, item.start):
                    return False
                if ids[position] == item:
                    return True
                position += 1
            return False
        return item in self.ids

    def __eq__(self, other: object) -> bool:
        """Element-wise equality against any sequence of node ids.

        Keeps ``lookup(tag) == []`` and list-result comparisons working
        now that lookups return views instead of fresh lists.
        """
        if isinstance(other, Postings):
            return self.ids == other.ids
        if isinstance(other, (list, tuple)):
            return list(self.ids) == list(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.ids)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Postings n={len(self.ids)}>"


#: Shared empty view (missing tags, empty level partitions).
EMPTY_POSTINGS = Postings(())
