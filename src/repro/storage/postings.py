"""Columnar posting lists: the storage side of the structural-join fast path.

The paper's performance argument (Sections 5-6) rests on interval-encoded
structural joins being cheap.  In the original Python substrate every join
call rebuilt a ``(doc, start)`` key array from its input node ids and every
index lookup copied its posting list — pure interpreter overhead on the
hottest primitive.  A :class:`Postings` object fixes both: it is an
**immutable, columnar view** of one tag's node ids, carrying the parallel
``starts`` / ``ends`` / ``levels`` arrays precomputed once at index build
time, so joins binary-search ready-made columns instead of rebuilding them
per call.

``at_level`` additionally partitions the postings by tree level (lazily,
cached), which lets a parent-child join probe only the ``parent.level + 1``
slice instead of scanning the parent's whole descendant range and filtering
— the level-split trick of the structural-join lineage (Al-Khalifa et al.,
survey in "A Survey of XML Tree Patterns").
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..model.node_id import NodeId


class Postings(Sequence[NodeId]):
    """Immutable columnar view of a sorted node-id posting list.

    Behaves as a read-only ``Sequence[NodeId]`` (so existing callers that
    iterated or indexed the old list results keep working, and ``== []``
    style comparisons still hold), while exposing the parallel columns the
    structural joins consume directly:

    * ``ids``     — the node ids themselves, document order;
    * ``starts``  — ``(doc, start)`` probe keys, sorted ascending;
    * ``ends``    — interval ends, aligned with ``ids``;
    * ``levels``  — tree levels, aligned with ``ids``;
    * ``record_indexes`` — optional document record indexes aligned with
      ``ids``, letting scans fetch records without per-node id resolution.
    """

    __slots__ = ("ids", "starts", "ends", "levels", "record_indexes",
                 "_by_level")

    def __init__(
        self,
        ids: Sequence[NodeId],
        record_indexes: Optional[Sequence[int]] = None,
    ) -> None:
        self.ids: Tuple[NodeId, ...] = tuple(ids)
        self.starts: List[Tuple[int, int]] = [
            (n.doc, n.start) for n in self.ids
        ]
        self.ends: List[int] = [n.end for n in self.ids]
        self.levels: List[int] = [n.level for n in self.ids]
        self.record_indexes: Optional[Tuple[int, ...]] = (
            tuple(record_indexes) if record_indexes is not None else None
        )
        self._by_level: Optional[Dict[int, "Postings"]] = None

    # ------------------------------------------------------------------
    # level partitions (the pc-axis fast path)
    # ------------------------------------------------------------------
    def at_level(self, level: int) -> "Postings":
        """The sub-postings at exactly ``level``, document order.

        Partitions are built lazily on first use and cached; a level with
        no postings returns the shared empty view.
        """
        if self._by_level is None:
            groups: Dict[int, List[int]] = {}
            for position, node_level in enumerate(self.levels):
                groups.setdefault(node_level, []).append(position)
            self._by_level = {
                node_level: Postings(
                    [self.ids[i] for i in positions],
                    (
                        [self.record_indexes[i] for i in positions]
                        if self.record_indexes is not None
                        else None
                    ),
                )
                for node_level, positions in groups.items()
            }
        return self._by_level.get(level, EMPTY_POSTINGS)

    def levels_present(self) -> List[int]:
        """Distinct tree levels with at least one posting (ascending)."""
        return sorted(set(self.levels))

    # ------------------------------------------------------------------
    # Sequence protocol (read-only)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ids)

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[NodeId, Tuple[NodeId, ...]]:
        return self.ids[index]

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.ids)

    def __contains__(self, item: object) -> bool:
        return item in self.ids

    def __eq__(self, other: object) -> bool:
        """Element-wise equality against any sequence of node ids.

        Keeps ``lookup(tag) == []`` and list-result comparisons working
        now that lookups return views instead of fresh lists.
        """
        if isinstance(other, Postings):
            return self.ids == other.ids
        if isinstance(other, (list, tuple)):
            return list(self.ids) == list(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.ids)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Postings n={len(self.ids)}>"


#: Shared empty view (missing tags, empty level partitions).
EMPTY_POSTINGS = Postings(())
