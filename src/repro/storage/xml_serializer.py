"""Serialisation of parse trees, stored subtrees and result trees to XML."""

from __future__ import annotations

from typing import List

from ..model.tree import TNode
from .document import Document
from .xml_parser import ParsedElement


def escape_text(text: str) -> str:
    """Escape XML character data."""
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def escape_attr(text: str) -> str:
    """Escape XML attribute content (double-quoted)."""
    return escape_text(text).replace('"', "&quot;")


def serialize_parsed(element: ParsedElement, indent: int = 0) -> str:
    """Pretty-print a :class:`ParsedElement` tree as XML text."""
    pad = "  " * indent
    attrs = "".join(
        f' {name}="{escape_attr(value)}"'
        for name, value in element.attrs.items()
    )
    if not element.children and element.text is None:
        return f"{pad}<{element.tag}{attrs}/>"
    if not element.children:
        return (
            f"{pad}<{element.tag}{attrs}>"
            f"{escape_text(element.text or '')}</{element.tag}>"
        )
    lines: List[str] = [f"{pad}<{element.tag}{attrs}>"]
    if element.text:
        lines.append(f"{pad}  {escape_text(element.text)}")
    for child in element.children:
        lines.append(serialize_parsed(child, indent + 1))
    lines.append(f"{pad}</{element.tag}>")
    return "\n".join(lines)


def serialize_stored(document: Document, record_idx: int = 0) -> str:
    """Serialise a stored subtree back to XML (unmetered; for tests).

    The synthetic ``doc_root`` wrapper is skipped when serialising from the
    top so round-trips return the original document element.
    """
    rec = document.records[record_idx]
    if rec.tag == "doc_root" and len(rec.children) == 1:
        return serialize_stored(document, rec.children[0])
    attr_parts: List[str] = []
    child_parts: List[str] = []
    for child_idx in rec.children:
        child = document.records[child_idx]
        if child.tag.startswith("@"):
            attr_value = child.value if child.value is not None else ""
            attr_parts.append(
                f' {child.tag[1:]}="{escape_attr(str(attr_value))}"'
            )
        else:
            child_parts.append(serialize_stored(document, child_idx))
    attrs = "".join(attr_parts)
    text = escape_text(rec.value) if rec.value is not None else ""
    body = text + "".join(child_parts)
    if not body:
        return f"<{rec.tag}{attrs}/>"
    return f"<{rec.tag}{attrs}>{body}</{rec.tag}>"


def serialize_result(node: TNode) -> str:
    """Serialise a result tree node (delegates to :meth:`TNode.to_xml`)."""
    return node.to_xml()
