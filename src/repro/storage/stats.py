"""Execution metrics for the storage and physical layers.

The paper's experiments report wall-clock time on a specific 2004 machine.
Our substrate is a Python simulation, so in addition to wall time the bench
harness reports *work counters* that explain the shape of every result:
page reads through the buffer pool, node records touched, structural joins
executed, group-by restructurings (the expensive operation TAX/GTP rely on),
and navigation steps (children fetched by the navigational baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..trace.model import PlanTrace


@dataclass
class Metrics:
    """Mutable counter bundle shared by a database and its evaluators."""

    pages_read: int = 0
    pages_written: int = 0
    buffer_hits: int = 0
    nodes_touched: int = 0
    index_lookups: int = 0
    index_entries_scanned: int = 0
    structural_joins: int = 0
    value_joins: int = 0
    nest_joins: int = 0
    groupby_ops: int = 0
    pattern_matches: int = 0
    navigation_steps: int = 0
    trees_built: int = 0
    sort_ops: int = 0
    #: observability counters for the columnar fast path: identical index
    #: scans / leaf matches served from the query-scoped ScanCache, and
    #: structural joins that consumed precomputed posting columns instead
    #: of rebuilding their probe-key arrays
    scan_cache_hits: int = 0
    postings_reused: int = 0
    #: prepared-plan cache counters (the service layer's LRU of compiled
    #: plans): queries answered without re-parse/translate/rewrite, cache
    #: misses that paid the full compile, and entries evicted by capacity
    #: or invalidated by a document reload
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_evictions: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> dict:
        """Immutable copy of the counters as a plain dict."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def diff(self, before: dict) -> dict:
        """Counters accumulated since ``before`` (a prior snapshot)."""
        return {
            f.name: getattr(self, f.name) - before.get(f.name, 0)
            for f in fields(self)
        }

    def __add__(self, other: "Metrics") -> "Metrics":
        merged = Metrics()
        for f in fields(self):
            setattr(
                merged, f.name, getattr(self, f.name) + getattr(other, f.name)
            )
        return merged


@dataclass(frozen=True)
class CardinalityStats:
    """Per-(document, tag) node counts for the cardinality interpreter.

    A frozen snapshot of the tag indexes: how many nodes each tag has in
    each document, plus per-document totals.  The static analyzer's
    interval interpretation (``analysis/cardinality.py``) propagates
    these through a plan to bound every operator's output cardinality —
    the input interface of a future cost-based planner.
    """

    #: doc name -> tag -> node count
    tag_counts: Dict[str, Dict[str, int]]
    #: doc name -> total node count
    totals: Dict[str, int]

    @classmethod
    def from_database(cls, db) -> "CardinalityStats":
        """Snapshot the tag indexes of every loaded document."""
        tag_counts: Dict[str, Dict[str, int]] = {}
        totals: Dict[str, int] = {}
        for name in db.document_names():
            index = db.tag_index(name)
            counts = {tag: index.count(tag) for tag in index.tags()}
            tag_counts[name] = counts
            totals[name] = sum(counts.values())
        return cls(tag_counts, totals)

    def tag_count(
        self, doc: Optional[str], tag: Optional[str]
    ) -> Optional[int]:
        """Nodes of ``tag`` in ``doc``; None when unknown.

        A ``None`` doc (an extension pattern matching inside trees of
        unrecorded provenance) falls back to the count across *all*
        loaded documents — any node of the tag lives in some document.
        A ``None`` tag is a wildcard node: bounded by the total node
        count.  A named but unloaded document is unknown.
        """
        if doc is None:
            if tag is None:
                return self.database_nodes
            return sum(
                counts.get(tag, 0) for counts in self.tag_counts.values()
            )
        if doc not in self.tag_counts:
            return None
        if tag is None:
            return self.totals[doc]
        return self.tag_counts[doc].get(tag, 0)

    def total(self, doc: Optional[str]) -> Optional[int]:
        if doc is None:
            return None
        return self.totals.get(doc)

    @property
    def database_nodes(self) -> int:
        """Total nodes across every document (blowup-threshold anchor)."""
        return sum(self.totals.values())


@dataclass
class QueryReport:
    """One benchmark observation: timing plus the counter snapshot."""

    engine: str
    query: str
    seconds: float
    counters: dict = field(default_factory=dict)
    result_trees: int = 0
    #: per-operator execution trace when measured with ``trace=True``
    trace: Optional["PlanTrace"] = None

    def row(self) -> tuple:
        """Compact tuple for tabular reports."""
        return (
            self.query,
            self.engine,
            round(self.seconds, 4),
            self.result_trees,
            self.counters.get("pages_read", 0),
            self.counters.get("nodes_touched", 0),
            self.counters.get("structural_joins", 0),
            self.counters.get("groupby_ops", 0),
        )
