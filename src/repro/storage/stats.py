"""Execution metrics for the storage and physical layers.

The paper's experiments report wall-clock time on a specific 2004 machine.
Our substrate is a Python simulation, so in addition to wall time the bench
harness reports *work counters* that explain the shape of every result:
page reads through the buffer pool, node records touched, structural joins
executed, group-by restructurings (the expensive operation TAX/GTP rely on),
and navigation steps (children fetched by the navigational baseline).

Concurrency model.  :class:`Metrics` is shared by a database, its buffer
pool, its documents and every evaluator over them, so a concurrent query
service writes to it from many threads at once.  The counters are striped
per thread (:class:`threading.local` cells): an increment touches only the
calling thread's cell, so

* increments never race and never drop — :meth:`snapshot` totals are
  *exact* under concurrency, not best-effort;
* a worker thread's own window is observable in isolation —
  :meth:`local_snapshot` / :meth:`local_diff` give the service layer
  request-scoped counter attribution (a request runs wholly on one
  thread, so the thread's delta *is* the request's delta, with no bleed
  from concurrent requests);
* pickling (process-pool workers ship a database to a child, and ship
  counter deltas back) reduces a Metrics to its merged totals — see
  :meth:`merge` for folding a shipped delta back in.

Cells are registered when a thread first touches the bundle and are kept
alive past thread exit, so totals never lose a finished worker's counts.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..trace.model import PlanTrace

#: Every counter carried by :class:`Metrics`, in rendering order.
#:
#: ``scan_cache_hits`` / ``postings_reused`` observe the columnar fast
#: path (identical scans served from the query-scoped ScanCache, joins
#: that consumed precomputed posting columns); the ``plan_cache_*``
#: counters mirror the service layer's prepared-plan LRU.
COUNTER_FIELDS: Tuple[str, ...] = (
    "pages_read",
    "pages_written",
    "buffer_hits",
    "nodes_touched",
    "index_lookups",
    "index_entries_scanned",
    "structural_joins",
    "value_joins",
    "nest_joins",
    "groupby_ops",
    "pattern_matches",
    "navigation_steps",
    "trees_built",
    "sort_ops",
    "scan_cache_hits",
    "postings_reused",
    "plan_cache_hits",
    "plan_cache_misses",
    "plan_cache_evictions",
    "batch_ops",
    "batch_rows",
    "batch_fallbacks",
    "planner_plans",
    "planner_reorders",
    "planner_evictions",
)

#: Metrics instance -> the per-thread cell dicts it has handed out.
#: Values hold strong references to the cells so a dead worker thread's
#: counts stay in the totals; the instance key is weak so the registry
#: does not keep databases alive.
_CELLS: "weakref.WeakKeyDictionary[Metrics, List[Dict[str, int]]]" = (
    weakref.WeakKeyDictionary()
)
_CELLS_LOCK = threading.Lock()


def _register_cell(metrics: "Metrics", cell: Dict[str, int]) -> None:
    with _CELLS_LOCK:
        _CELLS.setdefault(metrics, []).append(cell)


def _cells_of(metrics: "Metrics") -> List[Dict[str, int]]:
    with _CELLS_LOCK:
        return list(_CELLS.get(metrics, ()))


def _metrics_from_totals(totals: Dict[str, int]) -> "Metrics":
    """Pickle reconstructor: a fresh bundle pre-loaded with ``totals``."""
    metrics = Metrics()
    metrics.merge(totals)
    return metrics


class Metrics(threading.local):
    """Thread-striped counter bundle shared by a database's evaluators.

    Reads and writes of the plain counter attributes touch the *calling
    thread's* cell only (cheap, lock-free, race-free); the merged views
    below aggregate across every thread that ever touched the bundle.
    """

    def __init__(self) -> None:
        # runs once per (instance, thread): threading.local re-invokes
        # __init__ the first time a new thread touches the object
        for name in COUNTER_FIELDS:
            setattr(self, name, 0)
        _register_cell(self, vars(self))

    # ------------------------------------------------------------------
    # merged views (totals across every thread)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Point-in-time totals across all threads, as a plain dict."""
        totals = dict.fromkeys(COUNTER_FIELDS, 0)
        for cell in _cells_of(self):
            for name in COUNTER_FIELDS:
                totals[name] += cell.get(name, 0)
        return totals

    def diff(self, before: dict) -> dict:
        """Totals accumulated since ``before`` (a prior :meth:`snapshot`)."""
        now = self.snapshot()
        return {
            name: now[name] - before.get(name, 0) for name in COUNTER_FIELDS
        }

    # ------------------------------------------------------------------
    # thread-local views (request-scoped attribution)
    # ------------------------------------------------------------------
    def local_snapshot(self) -> dict:
        """The calling thread's own counters (request-scoped window).

        A service request executes wholly on one worker thread, so a
        ``local_snapshot`` / :meth:`local_diff` pair around it measures
        exactly that request's work — concurrent requests on other
        threads cannot bleed into the window.
        """
        return {name: getattr(self, name) for name in COUNTER_FIELDS}

    def local_diff(self, before: dict) -> dict:
        """Calling-thread counters since ``before`` (a local snapshot)."""
        return {
            name: getattr(self, name) - before.get(name, 0)
            for name in COUNTER_FIELDS
        }

    # ------------------------------------------------------------------
    # maintenance and aggregation
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every counter in every thread's cell."""
        for cell in _cells_of(self):
            for name in COUNTER_FIELDS:
                cell[name] = 0

    def merge(self, delta: Dict[str, int]) -> None:
        """Fold a shipped counter delta into the calling thread's cell.

        The process-pool dispatcher calls this with the delta a worker
        shipped back, from the dispatcher thread that owns the request —
        so the merged counts land inside that request's
        :meth:`local_diff` window *and* in the global totals.
        Unknown keys are ignored (forward compatibility with snapshots
        from newer workers).
        """
        for name in COUNTER_FIELDS:
            value = delta.get(name, 0)
            if value:
                setattr(self, name, getattr(self, name) + value)

    def __add__(self, other: "Metrics") -> "Metrics":
        merged = Metrics()
        ours, theirs = self.snapshot(), other.snapshot()
        merged.merge(ours)
        merged.merge(theirs)
        return merged

    def __reduce__(self):
        # a pickled Metrics collapses to its merged totals: the copy a
        # spawn-mode worker reconstructs starts from the same numbers
        return (_metrics_from_totals, (self.snapshot(),))


@dataclass(frozen=True)
class CardinalityStats:
    """Per-(document, tag) node counts for the cardinality interpreter.

    A frozen snapshot of the tag indexes: how many nodes each tag has in
    each document, plus per-document totals.  The static analyzer's
    interval interpretation (``analysis/cardinality.py``) propagates
    these through a plan to bound every operator's output cardinality —
    the input interface of a future cost-based planner.
    """

    #: doc name -> tag -> node count
    tag_counts: Dict[str, Dict[str, int]]
    #: doc name -> total node count
    totals: Dict[str, int]

    @classmethod
    def from_database(cls, db) -> "CardinalityStats":
        """Snapshot the tag indexes of every loaded document."""
        tag_counts: Dict[str, Dict[str, int]] = {}
        totals: Dict[str, int] = {}
        for name in db.document_names():
            index = db.tag_index(name)
            counts = {tag: index.count(tag) for tag in index.tags()}
            tag_counts[name] = counts
            totals[name] = sum(counts.values())
        return cls(tag_counts, totals)

    def tag_count(
        self, doc: Optional[str], tag: Optional[str]
    ) -> Optional[int]:
        """Nodes of ``tag`` in ``doc``; None when unknown.

        A ``None`` doc (an extension pattern matching inside trees of
        unrecorded provenance) falls back to the count across *all*
        loaded documents — any node of the tag lives in some document.
        A ``None`` tag is a wildcard node: bounded by the total node
        count.  A named but unloaded document is unknown.
        """
        if doc is None:
            if tag is None:
                return self.database_nodes
            return sum(
                counts.get(tag, 0) for counts in self.tag_counts.values()
            )
        if doc not in self.tag_counts:
            return None
        if tag is None:
            return self.totals[doc]
        return self.tag_counts[doc].get(tag, 0)

    def total(self, doc: Optional[str]) -> Optional[int]:
        if doc is None:
            return None
        return self.totals.get(doc)

    @property
    def database_nodes(self) -> int:
        """Total nodes across every document (blowup-threshold anchor)."""
        return sum(self.totals.values())


@dataclass
class QueryReport:
    """One benchmark observation: timing plus the counter snapshot."""

    engine: str
    query: str
    seconds: float
    counters: dict = field(default_factory=dict)
    result_trees: int = 0
    #: per-operator execution trace when measured with ``trace=True``
    trace: Optional["PlanTrace"] = None

    def row(self) -> tuple:
        """Compact tuple for tabular reports."""
        return (
            self.query,
            self.engine,
            round(self.seconds, 4),
            self.result_trees,
            self.counters.get("pages_read", 0),
            self.counters.get("nodes_touched", 0),
            self.counters.get("structural_joins", 0),
            self.counters.get("groupby_ops", 0),
        )
