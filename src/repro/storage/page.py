"""Pages and the LRU buffer pool.

TIMBER stores nodes on disk pages behind a buffer pool (the paper's setup
used a 128 MB pool).  We simulate the same architecture: node records are
grouped into fixed-size pages in document order ("nodes are clustered with
their children", Section 6.3 footnote 8) and every record access routes
through an LRU pool that counts hits and misses.  A miss models one disk
read.  The absolute timings of the reproduction come from Python execution,
but the *I/O shape* of each algorithm (how often it revisits the same data)
is captured faithfully by these counters.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from .stats import Metrics

#: Node records per simulated page.  XMark element records are small;
#: 64 records/page roughly matches 8 KB pages with ~128-byte records.
NODES_PER_PAGE = 64


class BufferPool:
    """LRU cache of page identifiers with hit/miss accounting.

    Pages are identified by arbitrary hashable keys (``(doc, page_no)`` for
    node pages, ``("idx", tag, page_no)`` for index pages).  The pool does
    not hold page *contents* — data lives in the node store — it only
    simulates residency to produce faithful I/O counts.
    """

    def __init__(self, capacity_pages: int, metrics: Metrics) -> None:
        if capacity_pages <= 0:
            raise ValueError("buffer pool capacity must be positive")
        self.capacity = capacity_pages
        self.metrics = metrics
        self._resident: "OrderedDict[Hashable, None]" = OrderedDict()

    def access(self, page_id: Hashable) -> bool:
        """Touch ``page_id``; returns True on a hit, False on a miss (read).

        Safe under concurrent readers (the service layer's thread pool):
        each ``OrderedDict`` operation is a single GIL-atomic C call, and
        the membership test is folded into a ``move_to_end`` attempt so
        an eviction racing between "check" and "touch" surfaces as the
        handled ``KeyError`` (counted as a miss) instead of escaping.
        Counter increments may drop under contention — counts stay
        approximate, residency stays consistent.
        """
        try:
            self._resident.move_to_end(page_id)
            self.metrics.buffer_hits += 1
            return True
        except KeyError:
            pass
        self.metrics.pages_read += 1
        self._resident[page_id] = None
        while len(self._resident) > self.capacity:
            try:
                self._resident.popitem(last=False)
            except KeyError:  # another thread evicted the last candidate
                break
        return False

    def write(self, page_id: Hashable) -> None:
        """Touch ``page_id`` for writing (counts a write, keeps residency)."""
        self.metrics.pages_written += 1
        self._resident[page_id] = None
        try:
            self._resident.move_to_end(page_id)
        except KeyError:  # concurrently evicted between insert and touch
            self._resident[page_id] = None
        while len(self._resident) > self.capacity:
            try:
                self._resident.popitem(last=False)
            except KeyError:
                break

    def clear(self) -> None:
        """Evict everything (cold-cache benchmarking)."""
        self._resident.clear()

    @property
    def resident_pages(self) -> int:
        """Number of pages currently resident."""
        return len(self._resident)
