"""A small, dependency-free XML parser.

The reproduction builds its own substrate, including parsing: this module
turns XML text into a lightweight parse tree of :class:`ParsedElement`.
Supported: elements, attributes, character data, entity references
(named + numeric), comments, processing instructions, CDATA sections and an
optional XML declaration.  Not supported (not needed for XMark):
namespaces, DTDs, external entities.

Whitespace-only text between elements is dropped; other text is attached to
the enclosing element (concatenated if interleaved with children — the
single-text-value node model used throughout the paper's figures).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import XMLParseError

_NAME_RE = re.compile(r"[A-Za-z_][\w.\-]*")
_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}


@dataclass
class ParsedElement:
    """One element of the parse tree."""

    tag: str
    attrs: Dict[str, str] = field(default_factory=dict)
    text: Optional[str] = None
    children: List["ParsedElement"] = field(default_factory=list)

    def find_all(self, tag: str) -> List["ParsedElement"]:
        """All descendants (including self) with the given tag."""
        found = []
        stack = [self]
        while stack:
            node = stack.pop()
            if node.tag == tag:
                found.append(node)
            stack.extend(reversed(node.children))
        return found

    def size(self) -> int:
        """Number of elements in this subtree (attributes not counted)."""
        total = 0
        stack = [self]
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children)
        return total


class _Scanner:
    """Cursor over the XML text with line/column tracking for errors."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> XMLParseError:
        line = self.text.count("\n", 0, self.pos) + 1
        column = self.pos - self.text.rfind("\n", 0, self.pos)
        return XMLParseError(message, line, column)

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, n: int = 1) -> str:
        return self.text[self.pos : self.pos + n]

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def expect(self, literal: str) -> None:
        if not self.startswith(literal):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def read_name(self) -> str:
        match = _NAME_RE.match(self.text, self.pos)
        if not match:
            raise self.error("expected a name")
        self.pos = match.end()
        return match.group()

    def read_until(self, terminator: str) -> str:
        idx = self.text.find(terminator, self.pos)
        if idx < 0:
            raise self.error(f"unterminated construct, expected {terminator!r}")
        chunk = self.text[self.pos : idx]
        self.pos = idx + len(terminator)
        return chunk


def decode_entities(text: str) -> str:
    """Replace XML entity and character references with their characters."""
    if "&" not in text:
        return text

    def _sub(match: "re.Match[str]") -> str:
        body = match.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        if body in _ENTITIES:
            return _ENTITIES[body]
        raise XMLParseError(f"unknown entity &{body};")

    return re.sub(r"&([^;&\s]+);", _sub, text)


def parse_xml(text: str) -> ParsedElement:
    """Parse XML text and return the root :class:`ParsedElement`."""
    scanner = _Scanner(text)
    _skip_prolog(scanner)
    root = _parse_element(scanner)
    _skip_misc(scanner)
    if not scanner.eof():
        raise scanner.error("content after document element")
    return root


def _skip_prolog(scanner: _Scanner) -> None:
    scanner.skip_ws()
    while True:
        if scanner.startswith("<?"):
            scanner.pos += 2
            scanner.read_until("?>")
        elif scanner.startswith("<!--"):
            scanner.pos += 4
            scanner.read_until("-->")
        elif scanner.startswith("<!DOCTYPE"):
            # skip a simple (bracket-free or internal-subset) doctype
            depth = 0
            while not scanner.eof():
                ch = scanner.text[scanner.pos]
                scanner.pos += 1
                if ch == "[":
                    depth += 1
                elif ch == "]":
                    depth -= 1
                elif ch == ">" and depth <= 0:
                    break
        else:
            break
        scanner.skip_ws()


def _skip_misc(scanner: _Scanner) -> None:
    scanner.skip_ws()
    while scanner.startswith("<!--") or scanner.startswith("<?"):
        if scanner.startswith("<!--"):
            scanner.pos += 4
            scanner.read_until("-->")
        else:
            scanner.pos += 2
            scanner.read_until("?>")
        scanner.skip_ws()


def _parse_attrs(scanner: _Scanner) -> Dict[str, str]:
    attrs: Dict[str, str] = {}
    while True:
        scanner.skip_ws()
        ch = scanner.peek()
        if ch in (">", "/") or not ch:
            return attrs
        name = scanner.read_name()
        scanner.skip_ws()
        scanner.expect("=")
        scanner.skip_ws()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.pos += 1
        value = scanner.read_until(quote)
        attrs[name] = decode_entities(value)


def _parse_element(scanner: _Scanner) -> ParsedElement:
    scanner.expect("<")
    tag = scanner.read_name()
    attrs = _parse_attrs(scanner)
    element = ParsedElement(tag, attrs)
    scanner.skip_ws()
    if scanner.startswith("/>"):
        scanner.pos += 2
        return element
    scanner.expect(">")
    _parse_content(scanner, element)
    return element


def _parse_content(scanner: _Scanner, element: ParsedElement) -> None:
    text_parts: List[str] = []
    while True:
        if scanner.eof():
            raise scanner.error(f"unclosed element <{element.tag}>")
        if scanner.startswith("</"):
            scanner.pos += 2
            closing = scanner.read_name()
            if closing != element.tag:
                raise scanner.error(
                    f"mismatched close tag </{closing}> for <{element.tag}>"
                )
            scanner.skip_ws()
            scanner.expect(">")
            break
        if scanner.startswith("<!--"):
            scanner.pos += 4
            scanner.read_until("-->")
            continue
        if scanner.startswith("<![CDATA["):
            scanner.pos += 9
            text_parts.append(scanner.read_until("]]>"))
            continue
        if scanner.startswith("<?"):
            scanner.pos += 2
            scanner.read_until("?>")
            continue
        if scanner.startswith("<"):
            element.children.append(_parse_element(scanner))
            continue
        idx = scanner.text.find("<", scanner.pos)
        if idx < 0:
            raise scanner.error(f"unclosed element <{element.tag}>")
        raw = scanner.text[scanner.pos : idx]
        scanner.pos = idx
        if raw.strip():
            text_parts.append(decode_entities(raw.strip()))
    if text_parts:
        element.text = " ".join(text_parts)
