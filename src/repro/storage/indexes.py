"""Tag-name and content-value indexes.

The paper's setup (Section 6.2): "We used an index on element tag name for
all the queries, which returns the node identifiers given a tag name.  On
all queries that had a condition on content we used a value index, which
returns the node ids given a content value."  No join-value index exists —
a limitation the paper calls out and we keep.

Index leaf pages are metered through the buffer pool so that index scans
contribute to the I/O counts (one simulated page per ``ENTRIES_PER_PAGE``
postings).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from ..model.node_id import NodeId
from ..model.value import sort_key
from .document import Document
from .page import BufferPool
from .stats import Metrics

#: Postings per simulated index leaf page.
ENTRIES_PER_PAGE = 256


class TagIndex:
    """tag name -> node ids in document order."""

    def __init__(self, document: Document) -> None:
        self._doc = document
        self._postings: Dict[str, List[NodeId]] = {}
        for idx, rec in enumerate(document.records):
            self._postings.setdefault(rec.tag, []).append(
                document.node_id(idx)
            )
        # document order == record order, already sorted

    def lookup(
        self,
        tag: str,
        pool: Optional[BufferPool] = None,
        metrics: Optional[Metrics] = None,
    ) -> List[NodeId]:
        """All nodes with the given tag, in document order (metered)."""
        postings = self._postings.get(tag, [])
        _meter(("tagidx", self._doc.doc_id, tag), len(postings), pool, metrics)
        return list(postings)

    def tags(self) -> List[str]:
        """All distinct tags in the document."""
        return sorted(self._postings)

    def count(self, tag: str) -> int:
        """Number of nodes with the given tag (no page touches)."""
        return len(self._postings.get(tag, ()))


class ValueIndex:
    """(tag, content value) -> node ids; supports equality and ranges.

    Postings for each tag are kept sorted by the total-order
    :func:`~repro.model.value.sort_key` of the content, so equality uses
    binary search and range predicates scan a contiguous run.
    """

    def __init__(self, document: Document) -> None:
        self._doc = document
        self._by_tag: Dict[str, List[Tuple[tuple, NodeId]]] = {}
        for idx, rec in enumerate(document.records):
            if rec.value is None:
                continue
            self._by_tag.setdefault(rec.tag, []).append(
                (sort_key(rec.value), document.node_id(idx))
            )
        for entries in self._by_tag.values():
            entries.sort(key=lambda pair: (pair[0], pair[1].order_key))

    def lookup(
        self,
        tag: str,
        op: str,
        value,
        pool: Optional[BufferPool] = None,
        metrics: Optional[Metrics] = None,
    ) -> List[NodeId]:
        """Nodes whose tag is ``tag`` and content compares ``op value``.

        Supported operators: ``=  !=  <  <=  >  >=``.  Results are returned
        in document order.  ``!=`` degrades to a full scan of the tag's
        postings (as a real B-tree would).
        """
        entries = self._by_tag.get(tag, [])
        key = sort_key(value)
        keys = [e[0] for e in entries]
        if op == "=":
            lo = bisect.bisect_left(keys, key)
            hi = bisect.bisect_right(keys, key)
            hits = entries[lo:hi]
        elif op == "<":
            hits = entries[: bisect.bisect_left(keys, key)]
        elif op == "<=":
            hits = entries[: bisect.bisect_right(keys, key)]
        elif op == ">":
            hits = entries[bisect.bisect_right(keys, key) :]
        elif op == ">=":
            hits = entries[bisect.bisect_left(keys, key) :]
        elif op == "!=":
            hits = [e for e in entries if e[0] != key]
        else:
            raise ValueError(f"unsupported index operator: {op!r}")
        # range operators must not match non-numeric content against numbers
        if op not in ("=", "!="):
            hits = [e for e in hits if e[0][0] == key[0]]
        _meter(
            ("validx", self._doc.doc_id, tag),
            max(len(hits), 1),
            pool,
            metrics,
        )
        return sorted((nid for _, nid in hits), key=lambda n: n.order_key)

    def has_tag(self, tag: str) -> bool:
        """Whether any node of this tag has content (is indexed)."""
        return tag in self._by_tag


def _meter(
    key_prefix: tuple,
    n_entries: int,
    pool: Optional[BufferPool],
    metrics: Optional[Metrics],
) -> None:
    """Account one index lookup touching ceil(n/ENTRIES_PER_PAGE) pages."""
    if metrics is not None:
        metrics.index_lookups += 1
        metrics.index_entries_scanned += n_entries
    if pool is not None:
        n_pages = max(1, -(-n_entries // ENTRIES_PER_PAGE))
        for page_no in range(n_pages):
            pool.access(key_prefix + (page_no,))
