"""Tag-name and content-value indexes.

The paper's setup (Section 6.2): "We used an index on element tag name for
all the queries, which returns the node identifiers given a tag name.  On
all queries that had a condition on content we used a value index, which
returns the node ids given a content value."  No join-value index exists —
a limitation the paper calls out and we keep.

Both indexes are **columnar**: at build time the postings of each tag are
frozen into a :class:`~repro.storage.postings.Postings` view carrying the
parallel ``(doc, start)`` / ``end`` / ``level`` arrays the structural
joins probe, and the value index stores its sorted key column once, so no
lookup ever rebuilds a key array or copies a posting list.

Index leaf pages are metered through the buffer pool so that index scans
contribute to the I/O counts (one simulated page per ``ENTRIES_PER_PAGE``
postings).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from ..model.node_id import NodeId
from ..model.value import sort_key
from .document import Document
from .page import BufferPool
from .postings import EMPTY_POSTINGS, Postings
from .stats import Metrics

#: Postings per simulated index leaf page.
ENTRIES_PER_PAGE = 256


class TagIndex:
    """tag name -> columnar postings of node ids in document order."""

    def __init__(self, document: Document) -> None:
        self._doc = document
        by_tag: Dict[str, Tuple[List[NodeId], List[int]]] = {}
        for idx, rec in enumerate(document.records):
            ids, record_idxs = by_tag.setdefault(rec.tag, ([], []))
            ids.append(document.node_id(idx))
            record_idxs.append(idx)
        # document order == record order, already sorted
        self._postings: Dict[str, Postings] = {
            tag: Postings(ids, record_idxs)
            for tag, (ids, record_idxs) in by_tag.items()
        }

    def lookup(
        self,
        tag: str,
        pool: Optional[BufferPool] = None,
        metrics: Optional[Metrics] = None,
    ) -> Postings:
        """All nodes with the given tag, in document order (metered).

        Returns the index's own immutable :class:`Postings` view — no
        copy is taken, so callers must not (and cannot) mutate it.
        """
        postings = self._postings.get(tag, EMPTY_POSTINGS)
        _meter(("tagidx", self._doc.doc_id, tag), len(postings), pool, metrics)
        return postings

    def postings(self, tag: str) -> Postings:
        """The raw columnar view for ``tag`` (unmetered; optimizer use)."""
        return self._postings.get(tag, EMPTY_POSTINGS)

    def tags(self) -> List[str]:
        """All distinct tags in the document."""
        return sorted(self._postings)

    def count(self, tag: str) -> int:
        """Number of nodes with the given tag (no page touches)."""
        return len(self._postings.get(tag, ()))


class ValueIndex:
    """(tag, content value) -> node ids; supports equality and ranges.

    Postings for each tag are kept sorted by the total-order
    :func:`~repro.model.value.sort_key` of the content, so equality uses
    binary search and range predicates scan a contiguous run.  The sorted
    key column of each tag is computed once at build time — lookups no
    longer rebuild it per call.
    """

    def __init__(self, document: Document) -> None:
        self._doc = document
        self._by_tag: Dict[str, List[Tuple[tuple, NodeId]]] = {}
        for idx, rec in enumerate(document.records):
            if rec.value is None:
                continue
            self._by_tag.setdefault(rec.tag, []).append(
                (sort_key(rec.value), document.node_id(idx))
            )
        for entries in self._by_tag.values():
            entries.sort(key=lambda pair: (pair[0], pair[1].order_key))
        #: per-tag sorted key column, parallel to the entry list
        self._keys: Dict[str, List[tuple]] = {
            tag: [e[0] for e in entries]
            for tag, entries in self._by_tag.items()
        }

    def lookup(
        self,
        tag: str,
        op: str,
        value,
        pool: Optional[BufferPool] = None,
        metrics: Optional[Metrics] = None,
    ) -> List[NodeId]:
        """Nodes whose tag is ``tag`` and content compares ``op value``.

        Supported operators: ``=  !=  <  <=  >  >=``.  Results are returned
        in document order.  ``!=`` degrades to a full scan of the tag's
        postings (as a real B-tree would).

        Metering counts the entries the index actually scanned: the
        binary-search slice for ``=`` and the range operators (before the
        value-kind filter drops mixed-type entries), and the full posting
        list for ``!=``.
        """
        entries = self._by_tag.get(tag, [])
        key = sort_key(value)
        keys = self._keys.get(tag, [])
        if op == "=":
            lo = bisect.bisect_left(keys, key)
            hi = bisect.bisect_right(keys, key)
            hits = entries[lo:hi]
            scanned = hi - lo
        elif op == "<":
            hits = entries[: bisect.bisect_left(keys, key)]
            scanned = len(hits)
        elif op == "<=":
            hits = entries[: bisect.bisect_right(keys, key)]
            scanned = len(hits)
        elif op == ">":
            hits = entries[bisect.bisect_right(keys, key) :]
            scanned = len(hits)
        elif op == ">=":
            hits = entries[bisect.bisect_left(keys, key) :]
            scanned = len(hits)
        elif op == "!=":
            hits = [e for e in entries if e[0] != key]
            scanned = len(entries)
        else:
            raise ValueError(f"unsupported index operator: {op!r}")
        # range operators must not match non-numeric content against numbers
        if op not in ("=", "!="):
            hits = [e for e in hits if e[0][0] == key[0]]
        _meter(
            ("validx", self._doc.doc_id, tag),
            max(scanned, 1),
            pool,
            metrics,
        )
        return sorted((nid for _, nid in hits), key=lambda n: n.order_key)

    def has_tag(self, tag: str) -> bool:
        """Whether any node of this tag has content (is indexed)."""
        return tag in self._by_tag


def _meter(
    key_prefix: tuple,
    n_entries: int,
    pool: Optional[BufferPool],
    metrics: Optional[Metrics],
) -> None:
    """Account one index lookup touching ceil(n/ENTRIES_PER_PAGE) pages."""
    if metrics is not None:
        metrics.index_lookups += 1
        metrics.index_entries_scanned += n_entries
    if pool is not None:
        n_pages = max(1, -(-n_entries // ENTRIES_PER_PAGE))
        for page_no in range(n_pages):
            pool.access(key_prefix + (page_no,))
