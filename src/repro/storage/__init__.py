"""Storage substrate: parser, paged node store, indexes, buffer pool."""

from .database import DEFAULT_POOL_PAGES, Database
from .document import Document, NodeRecord
from .indexes import ENTRIES_PER_PAGE, TagIndex, ValueIndex
from .page import NODES_PER_PAGE, BufferPool
from .postings import EMPTY_POSTINGS, Postings
from .stats import Metrics, QueryReport
from .xml_parser import ParsedElement, parse_xml
from .xml_serializer import serialize_parsed, serialize_result, serialize_stored

__all__ = [
    "DEFAULT_POOL_PAGES",
    "Database",
    "Document",
    "NodeRecord",
    "ENTRIES_PER_PAGE",
    "TagIndex",
    "ValueIndex",
    "NODES_PER_PAGE",
    "BufferPool",
    "EMPTY_POSTINGS",
    "Postings",
    "Metrics",
    "QueryReport",
    "ParsedElement",
    "parse_xml",
    "serialize_parsed",
    "serialize_result",
    "serialize_stored",
]
