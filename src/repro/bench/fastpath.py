"""Before/after harness for the columnar fast path (BENCH_3 experiment).

"Before" is the seed's execution strategy: structural joins rebuild
their probe-key arrays per call (``*_legacy`` in
:mod:`repro.physical.structural_join`) and every pattern node re-scans
its index.  "After" is the optimised stack: shared :class:`Postings`
columns, the skip-aware merge cursor, and the query-scoped
:class:`~repro.patterns.scan_cache.ScanCache`.  Both configurations run
the *same* plans over the *same* cached XMark engine, so the only
variable is the physical execution strategy.

Absolute seconds belong to this machine; what travels is

* the per-query **speedup** (after is the same code base, so the ratio
  is machine-independent to first order), and
* the **structural_joins-normalised wall time** (microseconds of wall
  time per structural join executed), which the CI smoke check compares
  against the committed ``BENCH_3.json`` baseline.

The harness also verifies the fast path never *works harder*: for every
query it diffs the before/after work counters and records any counter
the fast path increased (``counters_regressed`` — expected to stay
empty; the observability counters ``scan_cache_hits`` and
``postings_reused`` are excluded since they only exist on the new path).
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from ..physical.structural_join import use_fast_path
from ..storage.stats import QueryReport
from ..xmark.queries import FIGURE15_ORDER
from .env import runtime_flags
from .harness import DEFAULT_FACTOR, Harness

#: Work counters that must never increase under the fast path.  The
#: observability counters (scan_cache_hits, postings_reused) are new-path
#: telemetry, not work, and buffer_hits can only *drop* together with the
#: scans it measures.
WORK_COUNTERS = (
    "pages_read",
    "pages_written",
    "nodes_touched",
    "index_lookups",
    "index_entries_scanned",
    "structural_joins",
    "value_joins",
    "nest_joins",
    "groupby_ops",
    "pattern_matches",
    "navigation_steps",
    "trees_built",
    "sort_ops",
)

#: A query counts as structural-join-dominated when its plan executes at
#: least this many structural joins (at the default factor the join-heavy
#: XMark queries sit orders of magnitude above it).
JOIN_HEAVY_MIN = 25


@dataclass
class FastPathRow:
    """One query's before/after measurement."""

    query: str
    before_seconds: float
    after_seconds: float
    speedup: float
    #: the *before* (legacy) run's count — the batched anchored
    #: extension collapses many per-anchor joins into one per edge, so
    #: the after-side count no longer reflects how join-dominated the
    #: query's plan is
    structural_joins: int
    join_heavy: bool
    #: wall microseconds per structural join, the scale-robust quantity
    #: the CI smoke check tracks
    normalized_before_us: float
    normalized_after_us: float
    scan_cache_hits: int
    postings_reused: int
    #: work counters the fast path increased (must stay empty)
    counters_regressed: List[str] = field(default_factory=list)


@dataclass
class FastPathReport:
    """The full before/after sweep plus its summary statistics."""

    factor: float
    repeats: int
    engine: str
    environment: Dict[str, object] = field(default_factory=dict)
    rows: List[FastPathRow] = field(default_factory=list)

    def join_heavy_speedup(self) -> float:
        """Geometric-mean speedup over the join-dominated queries."""
        return _geomean([r.speedup for r in self.rows if r.join_heavy])

    def overall_speedup(self) -> float:
        """Geometric-mean speedup over every measured query."""
        return _geomean([r.speedup for r in self.rows])

    def normalized_after_geomean(self) -> float:
        """Geomean of after-side µs-per-structural-join (join-heavy only).

        This is the single number the CI smoke check compares against
        the committed baseline's value.
        """
        return _geomean(
            [r.normalized_after_us for r in self.rows if r.join_heavy]
        )

    def to_json(self) -> str:
        payload = {
            "experiment": "fastpath",
            "factor": self.factor,
            "repeats": self.repeats,
            "engine": self.engine,
            "environment": self.environment,
            "summary": {
                "join_heavy_speedup": round(self.join_heavy_speedup(), 3),
                "overall_speedup": round(self.overall_speedup(), 3),
                "normalized_after_us_geomean": round(
                    self.normalized_after_geomean(), 3
                ),
            },
            "rows": [asdict(row) for row in self.rows],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FastPathReport":
        payload = json.loads(text)
        report = cls(
            factor=payload["factor"],
            repeats=payload["repeats"],
            engine=payload["engine"],
            environment=payload.get("environment", {}),
        )
        report.rows = [FastPathRow(**row) for row in payload["rows"]]
        return report


def _geomean(values: Sequence[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return float("nan")
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def _normalized_us(seconds: float, joins: int) -> float:
    return seconds * 1e6 / max(joins, 1)


def compare_fastpath(
    queries: Optional[Sequence[str]] = None,
    factor: float = DEFAULT_FACTOR,
    engine: str = "tlc",
    repeats: int = 3,
    harness: Optional[Harness] = None,
    join_heavy_min: int = JOIN_HEAVY_MIN,
) -> FastPathReport:
    """Measure every query before (legacy) and after (fast path).

    The "before" configuration runs the retained legacy join
    implementations with the scan cache disabled; "after" runs the
    defaults.  Both are measured through the Figure 15 harness on one
    shared engine, with the paper's repeat-and-trim methodology.
    """
    harness = harness or Harness()
    report = FastPathReport(
        factor=factor,
        repeats=repeats,
        engine=engine,
        environment=runtime_flags(),
    )
    for name in queries or FIGURE15_ORDER:
        with use_fast_path(False):
            before = harness.run_query(
                name, engine, factor,
                repeats=repeats, scan_cache=False,
            )
        after = harness.run_query(name, engine, factor, repeats=repeats)
        regressed = [
            key
            for key in WORK_COUNTERS
            if after.counters.get(key, 0) > before.counters.get(key, 0)
        ]
        # classify and normalise by the legacy run's join count: it
        # reflects the plan's join work independent of the batching that
        # collapses the after-side counter
        joins = before.counters.get("structural_joins", 0)
        report.rows.append(
            FastPathRow(
                query=name,
                before_seconds=round(before.seconds, 6),
                after_seconds=round(after.seconds, 6),
                speedup=round(
                    before.seconds / after.seconds
                    if after.seconds else float("inf"),
                    3,
                ),
                structural_joins=joins,
                join_heavy=joins >= join_heavy_min,
                normalized_before_us=round(
                    _normalized_us(before.seconds, joins), 3
                ),
                normalized_after_us=round(
                    _normalized_us(after.seconds, joins), 3
                ),
                scan_cache_hits=after.counters.get("scan_cache_hits", 0),
                postings_reused=after.counters.get("postings_reused", 0),
                counters_regressed=regressed,
            )
        )
    return report


def fastpath_table(report: FastPathReport) -> str:
    """Render the before/after sweep as a fixed-width table."""
    header = (
        f"{'query':6s}{'before':>9s}{'after':>9s}{'speedup':>9s}"
        f"{'sjoins':>8s}{'us/join':>9s}{'hits':>6s}{'reuse':>7s}  flags"
    )
    lines = [header, "-" * len(header)]
    for row in report.rows:
        flags = []
        if row.join_heavy:
            flags.append("join-heavy")
        if row.counters_regressed:
            flags.append("REGRESSED:" + ",".join(row.counters_regressed))
        lines.append(
            f"{row.query:6s}"
            f"{row.before_seconds:>9.3f}"
            f"{row.after_seconds:>9.3f}"
            f"{row.speedup:>8.2f}x"
            f"{row.structural_joins:>8d}"
            f"{row.normalized_after_us:>9.1f}"
            f"{row.scan_cache_hits:>6d}"
            f"{row.postings_reused:>7d}"
            f"  {' '.join(flags)}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"geomean speedup: {report.overall_speedup():.2f}x overall, "
        f"{report.join_heavy_speedup():.2f}x on join-heavy queries"
    )
    return "\n".join(lines)


def check_against_baseline(
    current: FastPathReport,
    baseline: FastPathReport,
    threshold: float = 0.25,
) -> List[str]:
    """Regression findings of ``current`` vs a committed baseline.

    Compares the geomean of structural_joins-normalised wall time over
    the join-heavy queries; a finding is produced when the current run
    is more than ``threshold`` (fractional) slower per join than the
    baseline, when any work counter regressed, or when the fast path
    lost its join-heavy speedup.  Returns human-readable findings
    (empty list == pass).
    """
    findings: List[str] = []
    base = baseline.normalized_after_geomean()
    cur = current.normalized_after_geomean()
    if base > 0 and not math.isnan(base) and not math.isnan(cur):
        ratio = cur / base
        if ratio > 1.0 + threshold:
            findings.append(
                "normalised wall time regressed: "
                f"{cur:.1f} us/join vs baseline {base:.1f} us/join "
                f"({ratio:.2f}x, threshold {1.0 + threshold:.2f}x)"
            )
    for row in current.rows:
        if row.counters_regressed:
            findings.append(
                f"{row.query}: fast path increased work counters "
                f"{row.counters_regressed}"
            )
    speedup = current.join_heavy_speedup()
    if not math.isnan(speedup) and speedup < 1.0:
        findings.append(
            "fast path is net slower than legacy on join-heavy queries "
            f"(geomean speedup {speedup:.2f}x)"
        )
    return findings


def counter_totals(report: FastPathReport) -> Dict[str, int]:
    """Aggregate after-side observability counters across the sweep."""
    return {
        "scan_cache_hits": sum(r.scan_cache_hits for r in report.rows),
        "postings_reused": sum(r.postings_reused for r in report.rows),
    }
