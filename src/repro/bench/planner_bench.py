"""Planner-on vs static fast path (the BENCH_9 experiment).

"Before" is the static configuration every earlier baseline measured:
the translator's plan shape executed as-is on the fast path.  "After"
runs the same queries with cost-based physical planning
(:func:`~repro.planner.plan_physical`) applied before execution — edge
orders, operator currency and join engine chosen by the cost model.
Planning time is *included* in the after-side wall time: a planner that
only wins by hiding its own cost would be lying, and plan-cache
amortisation is the service's story, not this sweep's.

Both sides produce byte-identical results (the integration sweep pins
this); what this harness measures is whether the chosen shapes are
actually cheaper.  The committed ``BENCH_9.json`` is what the CI smoke
check compares against; the win condition of the experiment is a
speedup geomean >= 1.0x with at least one query where the planner picked
a different join order than the source plan and won.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from ..planner import use_planner
from ..xmark.queries import FIGURE15_ORDER
from .env import runtime_flags
from .fastpath import WORK_COUNTERS, _geomean
from .harness import DEFAULT_FACTOR, Harness


@dataclass
class PlannerRow:
    """One query's static-vs-planned measurement."""

    query: str
    static_seconds: float    #: translator shape, fast path
    planned_seconds: float   #: cost-planned shape (planning included)
    speedup: float
    #: pattern nodes whose edge order the planner changed (from the
    #: ``planner_reorders`` counter of the measured run)
    reordered_sites: int
    #: work counters the planned run increased — informational: a
    #: reorder legitimately shifts work between counters, so this is
    #: recorded but not gated like the fast-path/batch sweeps
    counters_regressed: List[str] = field(default_factory=list)

    @property
    def join_order_win(self) -> bool:
        """The planner changed a join order *and* the query got faster."""
        return self.reordered_sites > 0 and self.speedup > 1.0


@dataclass
class PlannerReport:
    """The full static-vs-planned sweep plus its summary statistics."""

    factor: float
    repeats: int
    engine: str
    environment: Dict[str, object] = field(default_factory=dict)
    rows: List[PlannerRow] = field(default_factory=list)

    def speedup_geomean(self) -> float:
        """Geometric-mean speedup of planned over static execution."""
        return _geomean([row.speedup for row in self.rows])

    def reordered_queries(self) -> List[str]:
        """Queries where the planner changed at least one join order."""
        return [r.query for r in self.rows if r.reordered_sites > 0]

    def join_order_wins(self) -> List[str]:
        """Queries where a changed join order came out ahead."""
        return [r.query for r in self.rows if r.join_order_win]

    def to_json(self) -> str:
        payload = {
            "experiment": "planner",
            "factor": self.factor,
            "repeats": self.repeats,
            "engine": self.engine,
            "environment": self.environment,
            "summary": {
                "speedup_geomean": round(self.speedup_geomean(), 3),
                "reordered_queries": self.reordered_queries(),
                "join_order_wins": self.join_order_wins(),
            },
            "rows": [asdict(row) for row in self.rows],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "PlannerReport":
        payload = json.loads(text)
        report = cls(
            factor=payload["factor"],
            repeats=payload["repeats"],
            engine=payload["engine"],
            environment=payload.get("environment", {}),
        )
        report.rows = [PlannerRow(**row) for row in payload["rows"]]
        return report


def compare_planner(
    queries: Optional[Sequence[str]] = None,
    factor: float = DEFAULT_FACTOR,
    engine: str = "tlc",
    repeats: int = 3,
    harness: Optional[Harness] = None,
) -> PlannerReport:
    """Measure every query static (planner off) and cost-planned (on).

    Both sides share the cached XMark engine, the fast path and the
    scan cache; the planner toggle is the only variable.  The planned
    side re-plans on every run — planning is statistics arithmetic and
    its cost belongs in the measurement (see the module docstring).
    """
    harness = harness or Harness()
    report = PlannerReport(
        factor=factor,
        repeats=repeats,
        engine=engine,
        environment=runtime_flags(),
    )
    for name in queries or FIGURE15_ORDER:
        with use_planner(False):
            static = harness.run_query(
                name, engine, factor, repeats=repeats
            )
        with use_planner(True):
            planned = harness.run_query(
                name, engine, factor, repeats=repeats
            )
        regressed = [
            key
            for key in WORK_COUNTERS
            if planned.counters.get(key, 0) > static.counters.get(key, 0)
        ]
        report.rows.append(
            PlannerRow(
                query=name,
                static_seconds=round(static.seconds, 6),
                planned_seconds=round(planned.seconds, 6),
                speedup=round(
                    static.seconds / planned.seconds
                    if planned.seconds else float("inf"),
                    3,
                ),
                reordered_sites=planned.counters.get(
                    "planner_reorders", 0
                ),
                counters_regressed=regressed,
            )
        )
    return report


def planner_table(report: PlannerReport) -> str:
    """Render the static-vs-planned sweep as a fixed-width table."""
    header = (
        f"{'query':6s}{'static':>9s}{'planned':>9s}{'speedup':>9s}"
        f"{'reorder':>9s}  flags"
    )
    lines = [header, "-" * len(header)]
    for row in report.rows:
        flags = []
        if row.join_order_win:
            flags.append("join-order-win")
        elif row.reordered_sites:
            flags.append("reordered")
        if row.counters_regressed:
            flags.append("grew:" + ",".join(row.counters_regressed))
        lines.append(
            f"{row.query:6s}"
            f"{row.static_seconds:>9.3f}"
            f"{row.planned_seconds:>9.3f}"
            f"{row.speedup:>8.2f}x"
            f"{row.reordered_sites:>9d}"
            f"  {' '.join(flags)}"
        )
    lines.append("-" * len(header))
    wins = report.join_order_wins()
    lines.append(
        f"geomean speedup: {report.speedup_geomean():.2f}x; "
        f"{len(report.reordered_queries())} queries reordered, "
        f"join-order wins: {', '.join(wins) if wins else 'none'}"
    )
    return "\n".join(lines)


def check_planner_against_baseline(
    current: PlannerReport,
    baseline: PlannerReport,
    threshold: float = 0.25,
) -> List[str]:
    """Regression findings of ``current`` vs a committed baseline.

    Findings are produced when the speedup geomean fell more than
    ``threshold`` (fractional) below the baseline's, when the planner is
    *clearly* net slower than static execution (below ``1 - threshold``
    — the committed baseline sits near break-even at 1.01x, so a hard
    ``>= 1.0`` gate would flap on single-sample CI noise), or when no
    join-order win survives.  Per-row counter growth stays informational
    (a reorder shifts work between counters by design).  Empty list ==
    pass.
    """
    findings: List[str] = []
    base = baseline.speedup_geomean()
    cur = current.speedup_geomean()
    if not math.isnan(base) and not math.isnan(cur):
        floor = base * (1.0 - threshold)
        if cur < floor:
            findings.append(
                "planner speedup regressed: geomean "
                f"{cur:.2f}x vs baseline {base:.2f}x "
                f"(floor {floor:.2f}x at threshold {threshold:.0%})"
            )
    if not math.isnan(cur) and cur < 1.0 - threshold:
        findings.append(
            "cost-based planning is clearly net slower than the static "
            f"fast path (geomean speedup {cur:.2f}x, floor "
            f"{1.0 - threshold:.2f}x)"
        )
    if not current.join_order_wins():
        findings.append(
            "no join-order win: every query where the planner changed "
            "the join order came out slower (or none was changed)"
        )
    return findings
