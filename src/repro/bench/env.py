"""Runtime environment stamp shared by every benchmark report.

Committed ``BENCH_*.json`` files must be self-describing: a number
measured with numpy columns on a 16-core box is not comparable to one
measured pure-Python on 2 cores, and a report cannot say so unless it
records the configuration it ran under.  :func:`runtime_flags` snapshots
the machine (``cpu_count``) and every process-wide execution toggle
(fast path, batch runtime, numpy columns, cost-based planner).

For a before/after experiment the swept toggle is flipped *inside* the
run (``compare_batch`` sweeps the batch flag, ``compare_planner`` the
planner flag); the stamp records the *ambient* state around the sweep,
which is what the non-swept toggles ran under on both sides.
"""

from __future__ import annotations

import os
from typing import Dict


def runtime_flags() -> Dict[str, object]:
    """The machine and toggle configuration of this process, for JSON."""
    from ..columns.arrays import numpy_available, numpy_enabled
    from ..columns.batch import batch_enabled
    from ..physical.structural_join import fast_path_enabled
    from ..planner import active_calibration, planner_enabled
    from ..telemetry.spans import spans_enabled

    calibration = active_calibration()
    return {
        "cpu_count": os.cpu_count() or 1,
        "fast_path": fast_path_enabled(),
        "batch": batch_enabled(),
        "numpy": numpy_enabled() and numpy_available(),
        "planner": planner_enabled(),
        "spans": spans_enabled(),
        "calibration": (
            round(calibration.factor, 6)
            if calibration is not None
            else None
        ),
    }
