"""Before/after harness for the batch runtime (BENCH_8 experiment).

"Before" is the per-tree fast path (PR 3's optimised stack: shared
postings, merge cursors, scan cache) with the batch runtime switched
off; "after" is the same stack evaluating batch-at-a-time over
:class:`~repro.columns.batch.ColumnBatch` columns.  Both configurations
run the *same* plans over the *same* cached XMark engine, so the only
variable is the operator currency — trees versus columns.

The sweep runs once per column backend: ``pure`` (plain Python lists,
the configuration the acceptance gate tracks) and ``numpy`` (recorded
separately; absent when the container lacks numpy).  As with the
fast-path harness, absolute seconds belong to this machine — the
per-query **speedup** is the number that travels, and the committed
``BENCH_8.json`` baseline is what the CI smoke check compares against.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from ..columns.arrays import numpy_available, use_numpy
from ..columns.batch import use_batch
from ..xmark.queries import FIGURE15_ORDER
from .env import runtime_flags
from .fastpath import WORK_COUNTERS, _geomean
from .harness import DEFAULT_FACTOR, Harness

#: Column backends the sweep measures, in report order.
BACKENDS = ("pure", "numpy")


@dataclass
class BatchRow:
    """One query's before/after measurement under one column backend."""

    query: str
    backend: str            #: "pure" or "numpy"
    before_seconds: float   #: per-tree fast path (batch off)
    after_seconds: float    #: batch runtime (batch on)
    speedup: float
    batch_ops: int          #: operators that produced columnar output
    batch_rows: int         #: rows flowing out of those operators
    batch_fallbacks: int    #: forced materialisations (no batch form)
    #: work counters the batch runtime increased (must stay empty)
    counters_regressed: List[str] = field(default_factory=list)


@dataclass
class BatchReport:
    """The full before/after sweep plus its summary statistics."""

    factor: float
    repeats: int
    engine: str
    environment: Dict[str, object] = field(default_factory=dict)
    rows: List[BatchRow] = field(default_factory=list)

    def backend_rows(self, backend: str) -> List[BatchRow]:
        return [row for row in self.rows if row.backend == backend]

    def speedup_geomean(self, backend: str = "pure") -> float:
        """Geometric-mean speedup of one backend over the per-tree path.

        This is the acceptance number for ``backend='pure'``: the batch
        runtime must win on the algorithm, not on numpy's constants.
        """
        return _geomean(
            [row.speedup for row in self.backend_rows(backend)]
        )

    def fallback_free_queries(self, backend: str = "pure") -> int:
        """Queries whose whole plan stayed columnar (no fallback)."""
        return sum(
            1
            for row in self.backend_rows(backend)
            if row.batch_fallbacks == 0
        )

    def to_json(self) -> str:
        summary = {
            "pure_speedup": round(self.speedup_geomean("pure"), 3),
            "fallback_free_queries": self.fallback_free_queries("pure"),
        }
        if self.backend_rows("numpy"):
            summary["numpy_speedup"] = round(
                self.speedup_geomean("numpy"), 3
            )
        payload = {
            "experiment": "batch",
            "factor": self.factor,
            "repeats": self.repeats,
            "engine": self.engine,
            "environment": self.environment,
            "summary": summary,
            "rows": [asdict(row) for row in self.rows],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "BatchReport":
        payload = json.loads(text)
        report = cls(
            factor=payload["factor"],
            repeats=payload["repeats"],
            engine=payload["engine"],
            environment=payload.get("environment", {}),
        )
        report.rows = [BatchRow(**row) for row in payload["rows"]]
        return report


def compare_batch(
    queries: Optional[Sequence[str]] = None,
    factor: float = DEFAULT_FACTOR,
    engine: str = "tlc",
    repeats: int = 3,
    harness: Optional[Harness] = None,
    backends: Optional[Sequence[str]] = None,
) -> BatchReport:
    """Measure every query before (per-tree) and after (batch runtime).

    Both sides keep the fast path and scan cache on — the comparison
    isolates the operator currency.  Backends default to ``pure`` plus
    ``numpy`` when available; requesting ``numpy`` without numpy
    installed raises (the caller asked for a measurement that cannot
    run honestly).
    """
    harness = harness or Harness()
    if backends is None:
        backends = (
            BACKENDS if numpy_available() else ("pure",)
        )
    report = BatchReport(
        factor=factor,
        repeats=repeats,
        engine=engine,
        environment=runtime_flags(),
    )
    for name in queries or FIGURE15_ORDER:
        with use_batch(False):
            before = harness.run_query(
                name, engine, factor, repeats=repeats
            )
        for backend in backends:
            with use_batch(True), use_numpy(backend == "numpy"):
                after = harness.run_query(
                    name, engine, factor, repeats=repeats
                )
            regressed = [
                key
                for key in WORK_COUNTERS
                if after.counters.get(key, 0) > before.counters.get(key, 0)
            ]
            report.rows.append(
                BatchRow(
                    query=name,
                    backend=backend,
                    before_seconds=round(before.seconds, 6),
                    after_seconds=round(after.seconds, 6),
                    speedup=round(
                        before.seconds / after.seconds
                        if after.seconds else float("inf"),
                        3,
                    ),
                    batch_ops=after.counters.get("batch_ops", 0),
                    batch_rows=after.counters.get("batch_rows", 0),
                    batch_fallbacks=after.counters.get(
                        "batch_fallbacks", 0
                    ),
                    counters_regressed=regressed,
                )
            )
    return report


def batch_table(report: BatchReport) -> str:
    """Render the before/after sweep as a fixed-width table."""
    header = (
        f"{'query':6s}{'backend':>8s}{'before':>9s}{'after':>9s}"
        f"{'speedup':>9s}{'ops':>5s}{'rows':>7s}{'fall':>6s}  flags"
    )
    lines = [header, "-" * len(header)]
    for row in report.rows:
        flags = []
        if row.counters_regressed:
            flags.append("REGRESSED:" + ",".join(row.counters_regressed))
        lines.append(
            f"{row.query:6s}"
            f"{row.backend:>8s}"
            f"{row.before_seconds:>9.3f}"
            f"{row.after_seconds:>9.3f}"
            f"{row.speedup:>8.2f}x"
            f"{row.batch_ops:>5d}"
            f"{row.batch_rows:>7d}"
            f"{row.batch_fallbacks:>6d}"
            f"  {' '.join(flags)}"
        )
    lines.append("-" * len(header))
    summary = (
        f"geomean speedup: {report.speedup_geomean('pure'):.2f}x pure"
    )
    if report.backend_rows("numpy"):
        summary += f", {report.speedup_geomean('numpy'):.2f}x numpy"
    summary += (
        f"; {report.fallback_free_queries('pure')}/"
        f"{len(report.backend_rows('pure'))} plans fully columnar"
    )
    lines.append(summary)
    return "\n".join(lines)


def check_batch_against_baseline(
    current: BatchReport,
    baseline: BatchReport,
    threshold: float = 0.25,
) -> List[str]:
    """Regression findings of ``current`` vs a committed baseline.

    Findings are produced when the pure-Python speedup geomean fell
    more than ``threshold`` (fractional) below the baseline's, when the
    batch runtime is net slower than the per-tree path, or when any
    work counter regressed.  Speedup ratios are machine-independent to
    first order, so the committed numbers travel.  Empty list == pass.
    """
    findings: List[str] = []
    base = baseline.speedup_geomean("pure")
    cur = current.speedup_geomean("pure")
    if not math.isnan(base) and not math.isnan(cur):
        floor = base * (1.0 - threshold)
        if cur < floor:
            findings.append(
                "batch speedup regressed: geomean "
                f"{cur:.2f}x vs baseline {base:.2f}x "
                f"(floor {floor:.2f}x at threshold {threshold:.0%})"
            )
    if not math.isnan(cur) and cur < 1.0:
        findings.append(
            "batch runtime is net slower than the per-tree path "
            f"(geomean speedup {cur:.2f}x)"
        )
    for row in current.rows:
        if row.counters_regressed:
            findings.append(
                f"{row.query} ({row.backend}): batch runtime increased "
                f"work counters {row.counters_regressed}"
            )
    return findings
