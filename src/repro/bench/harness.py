"""Benchmark harness: regenerate the paper's Figures 15, 16 and 17.

The harness owns data generation (one engine per scale factor, cached),
query execution under each competitor and the collection of
:class:`~repro.storage.stats.QueryReport` rows.  Absolute seconds belong
to this Python substrate, not the paper's 2004 C++ system; the *shape* —
who wins, by what factor, where the crossovers are — is what the reports
compare (see EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..engine import Engine
from ..storage.stats import QueryReport
from ..xmark.generator import load_xmark
from ..xmark.queries import (
    FIGURE15_ORDER,
    FIGURE16_QUERIES,
    FIGURE17_QUERIES,
    QUERIES,
)

#: Engine column order of Figure 15.
FIGURE15_ENGINES = ("tlc", "gtp", "tax", "nav")

#: Default scale factor for full-grid runs (factor 1 ≈ the paper's 710 MB
#: document is far beyond interpreted-Python scale; ratios are preserved).
DEFAULT_FACTOR = 0.005


@dataclass
class Harness:
    """Cached XMark engines and the experiment runners."""

    seed: int = 20040613
    budget_seconds: float = 600.0  # the paper's 10-minute DNF cutoff
    _engines: Dict[float, Engine] = field(default_factory=dict)

    def engine_for(self, factor: float) -> Engine:
        """The (cached) engine loaded with XMark data at ``factor``."""
        if factor not in self._engines:
            engine = Engine()
            load_xmark(engine.db, factor, seed=self.seed)
            self._engines[factor] = engine
        return self._engines[factor]

    # ------------------------------------------------------------------
    def run_query(
        self,
        name: str,
        engine_name: str,
        factor: float = DEFAULT_FACTOR,
        optimize: bool = False,
        repeats: int = 1,
        trace: bool = False,
        scan_cache: bool = True,
    ) -> QueryReport:
        """One measurement: query × engine × factor.

        With ``repeats`` > 2 the paper's methodology applies: "the average
        of the query execution time over five executions … the highest and
        the lowest values were removed and then the average was computed".
        A cell whose first run already exceeds a tenth of the DNF budget
        is not repeated (repeating a minutes-long navigational query adds
        nothing but wall-clock time).

        With ``trace`` each run is instrumented per operator and the
        returned report carries the :class:`~repro.trace.PlanTrace` of
        its final execution (``report.trace``) — the opt-in Figure 15/16
        per-operator breakdown.  Tracing applies to the algebraic
        engines only; ``nav`` measurements ignore the flag.

        ``scan_cache`` is forwarded to :meth:`Engine.measure`; the
        fast-path comparison harness (:mod:`repro.bench.fastpath`)
        disables it for its "before" configuration.
        """
        engine = self.engine_for(factor)
        trace = trace and engine_name != "nav"
        first = engine.measure(
            QUERIES[name].text,
            engine=engine_name,
            optimize=optimize,
            label=name,
            trace=trace,
            scan_cache=scan_cache,
        )
        if first.seconds >= self.budget_seconds / 10:
            # too slow to repeat; the single (cold) run is the result
            return first
        # the first run warmed caches and code paths; measure afresh
        reports = [
            engine.measure(
                QUERIES[name].text,
                engine=engine_name,
                optimize=optimize,
                label=name,
                trace=trace,
                scan_cache=scan_cache,
            )
            for _ in range(max(1, repeats))
        ]
        report = reports[-1]
        times = sorted(r.seconds for r in reports)
        if len(times) > 2:
            times = times[1:-1]
        report.seconds = sum(times) / len(times)
        return report

    # ------------------------------------------------------------------
    # E1: Figure 15 — all queries under all four engines
    # ------------------------------------------------------------------
    def figure15(
        self,
        factor: float = DEFAULT_FACTOR,
        queries: Optional[Sequence[str]] = None,
        engines: Sequence[str] = FIGURE15_ENGINES,
        repeats: int = 1,
        trace: bool = False,
    ) -> List[QueryReport]:
        """Execution-time grid of Figure 15 (DNF rows marked)."""
        reports: List[QueryReport] = []
        for name in queries or FIGURE15_ORDER:
            for engine_name in engines:
                started = time.perf_counter()
                try:
                    report = self.run_query(
                        name, engine_name, factor,
                        repeats=repeats, trace=trace,
                    )
                except Exception as error:  # a DNF-equivalent failure
                    report = QueryReport(
                        engine=engine_name,
                        query=name,
                        seconds=float("nan"),
                        counters={"error": repr(error)},
                    )
                if time.perf_counter() - started > self.budget_seconds:
                    report.counters["dnf"] = True
                reports.append(report)
        return reports

    # ------------------------------------------------------------------
    # E2: Figure 16 — plain TLC vs rewritten (OPT) plans
    # ------------------------------------------------------------------
    def figure16(
        self,
        factor: float = DEFAULT_FACTOR,
        queries: Sequence[str] = tuple(FIGURE16_QUERIES),
        repeats: int = 1,
        trace: bool = False,
    ) -> List[QueryReport]:
        """TLC vs OPT timing for the rewrite-applicable queries.

        With ``trace`` every report carries a per-operator trace, which
        :func:`~repro.bench.reporting.figure16_breakdown` turns into the
        operator-level attribution of each rewrite win.
        """
        reports: List[QueryReport] = []
        for name in queries:
            reports.append(
                self.run_query(
                    name, "tlc", factor, repeats=repeats, trace=trace
                )
            )
            reports.append(
                self.run_query(
                    name, "tlc", factor,
                    optimize=True, repeats=repeats, trace=trace,
                )
            )
        return reports

    # ------------------------------------------------------------------
    # E3: Figure 17 — scalability across XMark factors
    # ------------------------------------------------------------------
    def figure17(
        self,
        factors: Sequence[float] = (0.001, 0.002, 0.005, 0.01, 0.02),
        queries: Sequence[str] = tuple(FIGURE17_QUERIES),
        repeats: int = 1,
    ) -> List[QueryReport]:
        """TLC timing for the scalability queries across factors.

        The paper sweeps XMark 0.1…5; the same geometric sweep is run at
        Python-feasible sizes (linearity is scale-free).
        """
        reports: List[QueryReport] = []
        for factor in factors:
            for name in queries:
                report = self.run_query(name, "tlc", factor, repeats=repeats)
                report.counters["factor"] = factor
                reports.append(report)
        return reports
