"""Tabular reports in the paper's layout for Figures 15, 16 and 17."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..storage.stats import QueryReport
from ..xmark.queries import FIGURE15_ORDER, QUERIES


def _grid(
    reports: Sequence[QueryReport],
) -> Dict[Tuple[str, str], QueryReport]:
    return {(r.query, r.engine): r for r in reports}


def _cell(report: Optional[QueryReport]) -> str:
    if report is None:
        return "-"
    if report.counters.get("dnf") or math.isnan(report.seconds):
        return "DNF"
    return f"{report.seconds:.3f}"


def figure15_table(
    reports: Sequence[QueryReport],
    engines: Sequence[str] = ("tlc", "gtp", "tax", "nav"),
) -> str:
    """Render the Figure 15 grid: queries × engines, with comments."""
    grid = _grid(reports)
    queries = [q for q in FIGURE15_ORDER if any(
        (q, e) in grid for e in engines
    )]
    header = (
        f"{'query':6s}" + "".join(f"{e.upper():>9s}" for e in engines)
        + "  comments"
    )
    lines = [header, "-" * len(header)]
    for name in queries:
        cells = "".join(
            f"{_cell(grid.get((name, e))):>9s}" for e in engines
        )
        lines.append(f"{name:6s}{cells}  {QUERIES[name].comment}")
    return "\n".join(lines)


def figure15_speedups(
    reports: Sequence[QueryReport],
    baseline_engines: Sequence[str] = ("gtp", "tax", "nav"),
) -> str:
    """Per-query speedup of TLC over each competitor (the paper's claim)."""
    grid = _grid(reports)
    lines = [
        f"{'query':6s}"
        + "".join(f"{'vs ' + e.upper():>10s}" for e in baseline_engines)
    ]
    lines.append("-" * len(lines[0]))
    for name in FIGURE15_ORDER:
        tlc = grid.get((name, "tlc"))
        if tlc is None or math.isnan(tlc.seconds) or tlc.seconds == 0:
            continue
        cells = []
        for engine in baseline_engines:
            other = grid.get((name, engine))
            if other is None or math.isnan(other.seconds):
                cells.append(f"{'DNF':>10s}")
            else:
                cells.append(f"{other.seconds / tlc.seconds:>9.1f}x")
        lines.append(f"{name:6s}" + "".join(cells))
    return "\n".join(lines)


def figure16_table(reports: Sequence[QueryReport]) -> str:
    """Render Figure 16: plain TLC vs rewritten (OPT) per query."""
    grid = _grid(reports)
    queries = sorted({r.query for r in reports}, key=_query_order)
    header = f"{'query':6s}{'TLC':>9s}{'OPT':>9s}{'speedup':>9s}"
    lines = [header, "-" * len(header)]
    for name in queries:
        plain = grid.get((name, "tlc"))
        opt = grid.get((name, "tlc+opt"))
        speed = (
            f"{plain.seconds / opt.seconds:.2f}x"
            if plain and opt and opt.seconds
            else "-"
        )
        lines.append(
            f"{name:6s}{_cell(plain):>9s}{_cell(opt):>9s}{speed:>9s}"
        )
    return "\n".join(lines)


def figure17_table(reports: Sequence[QueryReport]) -> str:
    """Render Figure 17: seconds per (factor, query) + linearity fits."""
    by_query: Dict[str, List[Tuple[float, float]]] = {}
    for report in reports:
        factor = report.counters.get("factor")
        if factor is None:
            continue
        by_query.setdefault(report.query, []).append(
            (factor, report.seconds)
        )
    factors = sorted({f for rows in by_query.values() for f, _ in rows})
    header = f"{'query':6s}" + "".join(f"{f:>10.3f}" for f in factors)
    lines = [header, "-" * len(header), "(seconds per XMark factor)"]
    for name in sorted(by_query, key=_query_order):
        rows = dict(by_query[name])
        cells = "".join(
            f"{rows.get(f, float('nan')):>10.4f}" for f in factors
        )
        lines.append(f"{name:6s}{cells}")
    lines.append("")
    lines.append("linearity (R² of seconds ~ factor):")
    for name in sorted(by_query, key=_query_order):
        r2 = linear_r2(by_query[name])
        lines.append(f"  {name:6s} R² = {r2:.4f}")
    return "\n".join(lines)


def linear_r2(points: Sequence[Tuple[float, float]]) -> float:
    """Coefficient of determination of a least-squares line through points."""
    n = len(points)
    if n < 2:
        return float("nan")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    syy = sum((y - mean_y) ** 2 for y in ys)
    if sxx == 0 or syy == 0:
        return 1.0
    return (sxy * sxy) / (sxx * syy)


def counters_table(reports: Sequence[QueryReport]) -> str:
    """Work-counter report: why each engine costs what it costs."""
    header = (
        f"{'query':6s}{'engine':>8s}{'secs':>9s}{'trees':>7s}"
        f"{'pages':>8s}{'nodes':>9s}{'sjoins':>8s}{'groups':>8s}"
        f"{'navsteps':>9s}"
    )
    lines = [header, "-" * len(header)]
    for report in reports:
        counters = report.counters
        lines.append(
            f"{report.query:6s}{report.engine:>8s}"
            f"{_cell(report):>9s}{report.result_trees:>7d}"
            f"{counters.get('pages_read', 0):>8d}"
            f"{counters.get('nodes_touched', 0):>9d}"
            f"{counters.get('structural_joins', 0):>8d}"
            f"{counters.get('groupby_ops', 0):>8d}"
            f"{counters.get('navigation_steps', 0):>9d}"
        )
    return "\n".join(lines)


def operator_breakdown(report: QueryReport) -> str:
    """EXPLAIN-ANALYZE rendering of one traced report's plan.

    Requires the report to have been measured with ``trace=True``
    (``Harness.run_query(..., trace=True)`` or
    ``Engine.measure(..., trace=True)``).
    """
    title = f"{report.query} × {report.engine}"
    if report.trace is None:
        return f"{title}: no trace (measure with trace=True)"
    return f"{title}\n{report.trace.render()}"


def figure16_breakdown(reports: Sequence[QueryReport]) -> str:
    """Attribute each Figure 16 rewrite win to specific operators.

    For every query measured with traces under both plain TLC and the
    rewritten (OPT) plan, aggregates per-operator self time by operator
    name and prints them side by side: an operator the rewrite removed
    shows ``-`` in the OPT column (its cost is the win), one it
    introduced (Flatten's nest-join, say) shows ``-`` under TLC.
    """
    grid = _grid(reports)
    sections: List[str] = []
    for name in sorted({r.query for r in reports}, key=_query_order):
        plain = grid.get((name, "tlc"))
        opt = grid.get((name, "tlc+opt"))
        if (
            plain is None or opt is None
            or plain.trace is None or opt.trace is None
        ):
            continue
        plain_ms = {
            op: seconds * 1000
            for op, seconds in plain.trace.self_seconds_by_name().items()
        }
        opt_ms = {
            op: seconds * 1000
            for op, seconds in opt.trace.self_seconds_by_name().items()
        }
        header = (
            f"{'operator':24s}{'TLC(ms)':>10s}{'OPT(ms)':>10s}"
            f"{'delta':>10s}"
        )
        lines = [
            f"{name}: self time per operator", header, "-" * len(header)
        ]
        for op in sorted(set(plain_ms) | set(opt_ms)):
            before = plain_ms.get(op)
            after = opt_ms.get(op)
            delta = (after or 0.0) - (before or 0.0)
            cells = "".join(
                f"{value:>10.3f}" if value is not None else f"{'-':>10s}"
                for value in (before, after)
            )
            lines.append(f"{op:24s}{cells}{delta:>+10.3f}")
        total_before = sum(plain_ms.values())
        total_after = sum(opt_ms.values())
        lines.append(
            f"{'total':24s}{total_before:>10.3f}{total_after:>10.3f}"
            f"{total_after - total_before:>+10.3f}"
        )
        sections.append("\n".join(lines))
    if not sections:
        return "no traced TLC/OPT pairs (run figure16 with trace=True)"
    return "\n\n".join(sections)


def _query_order(name: str) -> tuple:
    try:
        return (FIGURE15_ORDER.index(name),)
    except ValueError:
        return (len(FIGURE15_ORDER), name)
