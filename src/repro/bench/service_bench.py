"""Warm-vs-cold benchmark for the query service (BENCH_4 experiment).

"Cold" is what every ``Engine.run`` pays today: parse, translate,
analyze, rewrite, *then* execute.  "Warm" is the service's prepared
path: the plan comes out of the
:class:`~repro.service.cache.PlanCache` and the query goes straight to
execution.  Both configurations execute the *same* plans over the same
cached XMark engine through the same :class:`QueryService`, so the
measured difference is exactly the compile work the cache elides.

The report also measures a concurrent batch (every query × ``rounds``)
on a single-thread pool versus the full pool.  In thread mode Python's
GIL serialises the interpreter, so that number is an honesty check on
dispatch overhead; ``mode="process"`` routes the batch through the
process-pool worker backend, the configuration that can actually beat
serial — *per core*.  The report records ``cpu_count`` alongside the
timings because the speedup is a hardware property: on a single-core
host the process pool pays dispatch + serialization for no parallel
gain, and the honest number says so.  The pooled batch's results are
compared byte-for-byte against the serial service's
(``pooled_matches_serial``), so every committed report re-certifies
the equivalence oracle.

Since the telemetry layer (DESIGN.md §12), the report also harvests the
service's own latency histograms: p50/p95/p99 over every request of the
sweep, overall and per benchmark query (``BENCH_5.json`` is such a
report with the ``latency`` section populated).
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from ..service import QueryService
from ..service.cache import normalize_query
from ..telemetry.querylog import query_hash
from ..xmark.queries import FIGURE15_ORDER, QUERIES
from .env import runtime_flags
from .harness import DEFAULT_FACTOR, Harness


@dataclass
class ServiceBenchRow:
    """One query's cold (compile + execute) vs warm (cached) latency."""

    query: str
    cold_ms: float
    warm_ms: float
    speedup: float
    #: compile share of the cold latency, first-order: (cold - warm) / cold
    compile_fraction: float


@dataclass
class ServiceBenchReport:
    """The full warm-vs-cold sweep plus the pool-scaling observation."""

    factor: float
    repeats: int
    threads: int
    mode: str = "thread"
    start_method: Optional[str] = None
    #: cores the host exposed during the run — the ceiling on any
    #: process-pool speedup, recorded so the number can be judged
    cpu_count: int = 0
    #: uniform machine/toggle stamp (includes cpu_count again, plus the
    #: fast-path/batch/numpy/planner flags) — shared with every BENCH_*
    environment: Dict[str, object] = field(default_factory=dict)
    rows: List[ServiceBenchRow] = field(default_factory=list)
    #: wall seconds for the concurrent batch on 1 worker vs ``threads``
    serial_batch_seconds: float = 0.0
    pooled_batch_seconds: float = 0.0
    #: whether the pooled batch's results were byte-identical to the
    #: serial service's (None when the check did not run)
    pooled_matches_serial: Optional[bool] = None
    cache_hits: int = 0
    cache_misses: int = 0
    #: service-path latency percentiles from the telemetry histograms:
    #: ``"all"`` plus one entry per benchmark query (count, p50/p95/p99 ms)
    latency: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def overall_speedup(self) -> float:
        """Geometric-mean warm-vs-cold speedup over every query."""
        return _geomean([r.speedup for r in self.rows])

    def pool_speedup(self) -> float:
        """Serial-batch over pooled-batch wall time (>1 = pool wins)."""
        if not self.pooled_batch_seconds:
            return float("nan")
        return self.serial_batch_seconds / self.pooled_batch_seconds

    def median_compile_fraction(self) -> float:
        """Median share of cold latency spent compiling."""
        fractions = sorted(r.compile_fraction for r in self.rows)
        if not fractions:
            return float("nan")
        mid = len(fractions) // 2
        if len(fractions) % 2:
            return fractions[mid]
        return (fractions[mid - 1] + fractions[mid]) / 2

    def to_json(self) -> str:
        pool_speedup = self.pool_speedup()
        payload = {
            "experiment": "service",
            "factor": self.factor,
            "repeats": self.repeats,
            "threads": self.threads,
            "mode": self.mode,
            "start_method": self.start_method,
            "cpu_count": self.cpu_count,
            "environment": self.environment,
            "summary": {
                "warm_speedup_geomean": round(self.overall_speedup(), 3),
                "median_compile_fraction": round(
                    self.median_compile_fraction(), 3
                ),
                "serial_batch_seconds": round(self.serial_batch_seconds, 4),
                "pooled_batch_seconds": round(self.pooled_batch_seconds, 4),
                "pool_speedup": (
                    round(pool_speedup, 3)
                    if not math.isnan(pool_speedup)
                    else None
                ),
                "pooled_matches_serial": self.pooled_matches_serial,
                "plan_cache_hits": self.cache_hits,
                "plan_cache_misses": self.cache_misses,
            },
            "latency": self.latency,
            "rows": [asdict(row) for row in self.rows],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ServiceBenchReport":
        payload = json.loads(text)
        report = cls(
            factor=payload["factor"],
            repeats=payload["repeats"],
            threads=payload["threads"],
            mode=payload.get("mode", "thread"),
            start_method=payload.get("start_method"),
            cpu_count=payload.get("cpu_count", 0),
            environment=payload.get("environment", {}),
        )
        report.rows = [ServiceBenchRow(**row) for row in payload["rows"]]
        summary = payload.get("summary", {})
        report.serial_batch_seconds = summary.get("serial_batch_seconds", 0.0)
        report.pooled_batch_seconds = summary.get("pooled_batch_seconds", 0.0)
        report.pooled_matches_serial = summary.get("pooled_matches_serial")
        report.cache_hits = summary.get("plan_cache_hits", 0)
        report.cache_misses = summary.get("plan_cache_misses", 0)
        report.latency = payload.get("latency", {})
        return report


def _named_latency(
    latency: Dict[str, Dict[str, object]], names: Sequence[str]
) -> Dict[str, Dict[str, object]]:
    """Re-key the service's per-class percentiles by benchmark query name.

    The service buckets latency by ``engine:queryhash``; the hash is the
    plan-cache identity (sha of the normalized text), so each benchmark
    query's class is recoverable by hashing its text the same way.
    Classes that match no benchmark query (none, normally) are dropped.
    """
    hash_to_name = {
        query_hash(normalize_query(QUERIES[name].text)): name
        for name in names
    }
    named: Dict[str, Dict[str, object]] = {}
    for key, entry in latency.items():
        entry = {k: v for k, v in entry.items() if k != "query"}
        if key == "all":
            named["all"] = entry
        else:
            name = hash_to_name.get(key.split(":", 1)[-1])
            if name is not None:
                named[name] = entry
    return named


def _geomean(values: Sequence[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return float("nan")
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def _trimmed_mean(samples: List[float]) -> float:
    """The paper's methodology: drop min and max, average the rest."""
    ordered = sorted(samples)
    if len(ordered) > 2:
        ordered = ordered[1:-1]
    return sum(ordered) / len(ordered)


def bench_service(
    queries: Optional[Sequence[str]] = None,
    factor: float = DEFAULT_FACTOR,
    repeats: int = 5,
    threads: int = 8,
    rounds: int = 2,
    harness: Optional[Harness] = None,
    mode: str = "thread",
    start_method: Optional[str] = None,
) -> ServiceBenchReport:
    """Measure every query cold (cache cleared) and warm (cache hit).

    ``repeats`` samples are taken per configuration with the paper's
    trim-and-average; one untimed warm-up run per query precedes the
    measurements so buffer-pool state is comparable between the two
    sides.  ``rounds`` controls the size of the concurrent batch
    (every query, ``rounds`` times, in submission order).  ``mode``
    selects the pooled service's backend (``thread`` or ``process``);
    process-mode workers are primed before the batch is timed, so the
    measurement covers queries, not process starts.
    """
    harness = harness or Harness()
    engine = harness.engine_for(factor)
    names = list(queries or FIGURE15_ORDER)
    report = ServiceBenchReport(
        factor=factor,
        repeats=repeats,
        threads=threads,
        mode=mode,
        start_method=start_method,
        cpu_count=os.cpu_count() or 0,
        environment=runtime_flags(),
    )
    with QueryService(
        engine, threads=threads, mode=mode, start_method=start_method
    ) as svc:
        report.start_method = svc.start_method
        svc.prime()
        for name in names:
            text = QUERIES[name].text
            svc.execute(text)  # untimed warm-up (data caches, code paths)
            cold_samples: List[float] = []
            for _ in range(repeats):
                svc.cache.clear()
                started = time.perf_counter()
                svc.execute(text)
                cold_samples.append(time.perf_counter() - started)
            svc.execute(text)  # ensure the entry is resident again
            warm_samples: List[float] = []
            for _ in range(repeats):
                started = time.perf_counter()
                svc.execute(text)
                warm_samples.append(time.perf_counter() - started)
            cold = _trimmed_mean(cold_samples)
            warm = _trimmed_mean(warm_samples)
            report.rows.append(
                ServiceBenchRow(
                    query=name,
                    cold_ms=round(cold * 1000, 3),
                    warm_ms=round(warm * 1000, 3),
                    speedup=round(cold / warm if warm else float("inf"), 3),
                    compile_fraction=round(
                        max(0.0, cold - warm) / cold if cold else 0.0, 3
                    ),
                )
            )
        batch = [QUERIES[name].text for name in names] * rounds
        started = time.perf_counter()
        pooled_results = svc.execute_many(batch)
        report.pooled_batch_seconds = time.perf_counter() - started
        stats = svc.stats()
        report.cache_hits = stats.cache.hits
        report.cache_misses = stats.cache.misses
        report.latency = _named_latency(stats.latency, names)
    with QueryService(engine, threads=1) as serial:
        for name in names:  # warm the one-thread service's cache too
            serial.prepare(QUERIES[name].text)
        started = time.perf_counter()
        serial_results = serial.execute_many(batch)
        report.serial_batch_seconds = time.perf_counter() - started
    report.pooled_matches_serial = all(
        pooled.to_xml() == expected.to_xml()
        for pooled, expected in zip(pooled_results, serial_results)
    ) and len(pooled_results) == len(serial_results)
    return report


def service_table(report: ServiceBenchReport) -> str:
    """Render the warm-vs-cold sweep as a fixed-width table."""
    header = (
        f"{'query':6s}{'cold ms':>10s}{'warm ms':>10s}{'speedup':>9s}"
        f"{'compile%':>10s}"
    )
    lines = [header, "-" * len(header)]
    for row in report.rows:
        lines.append(
            f"{row.query:6s}"
            f"{row.cold_ms:>10.2f}"
            f"{row.warm_ms:>10.2f}"
            f"{row.speedup:>8.2f}x"
            f"{row.compile_fraction * 100:>9.1f}%"
        )
    lines.append("-" * len(header))
    lines.append(
        f"geomean warm speedup: {report.overall_speedup():.2f}x "
        f"(median compile share {report.median_compile_fraction() * 100:.0f}%)"
    )
    if report.mode == "process":
        method = report.start_method or "default"
        pool_speedup = report.pool_speedup()
        speedup_text = (
            f"{pool_speedup:.2f}x" if not math.isnan(pool_speedup) else "n/a"
        )
        lines.append(
            f"concurrent batch: {report.pooled_batch_seconds:.2f}s on "
            f"{report.threads} worker processes ({method}) vs "
            f"{report.serial_batch_seconds:.2f}s serial — {speedup_text} "
            f"on {report.cpu_count} "
            f"{'core' if report.cpu_count == 1 else 'cores'}"
        )
        if report.pooled_matches_serial is not None:
            verdict = (
                "byte-identical to serial"
                if report.pooled_matches_serial
                else "MISMATCH vs serial"
            )
            lines.append(f"pooled results: {verdict}")
    else:
        lines.append(
            f"concurrent batch: {report.pooled_batch_seconds:.2f}s on "
            f"{report.threads} workers vs {report.serial_batch_seconds:.2f}s "
            "on 1 (GIL-bound; isolation, not parallelism)"
        )
    lines.append(
        f"plan cache: {report.cache_hits} hits / "
        f"{report.cache_misses} misses"
    )
    overall = report.latency.get("all")
    if overall:
        lines.append(
            f"service latency over {overall['count']} requests: "
            f"p50 {overall['p50_ms']:.2f}ms · "
            f"p95 {overall['p95_ms']:.2f}ms · "
            f"p99 {overall['p99_ms']:.2f}ms"
        )
    return "\n".join(lines)
