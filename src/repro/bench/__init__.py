"""Benchmark harness and paper-style reporting."""

from .batch import (
    BatchReport,
    BatchRow,
    batch_table,
    check_batch_against_baseline,
    compare_batch,
)
from .env import runtime_flags
from .fastpath import (
    FastPathReport,
    FastPathRow,
    check_against_baseline,
    compare_fastpath,
    fastpath_table,
)
from .harness import DEFAULT_FACTOR, FIGURE15_ENGINES, Harness
from .planner_bench import (
    PlannerReport,
    PlannerRow,
    check_planner_against_baseline,
    compare_planner,
    planner_table,
)
from .reporting import (
    counters_table,
    figure15_speedups,
    figure15_table,
    figure16_breakdown,
    figure16_table,
    figure17_table,
    linear_r2,
    operator_breakdown,
)
from .service_bench import (
    ServiceBenchReport,
    ServiceBenchRow,
    bench_service,
    service_table,
)

__all__ = [
    "BatchReport",
    "BatchRow",
    "DEFAULT_FACTOR",
    "FIGURE15_ENGINES",
    "FastPathReport",
    "FastPathRow",
    "batch_table",
    "check_batch_against_baseline",
    "compare_batch",
    "Harness",
    "PlannerReport",
    "PlannerRow",
    "ServiceBenchReport",
    "ServiceBenchRow",
    "bench_service",
    "service_table",
    "check_against_baseline",
    "check_planner_against_baseline",
    "compare_fastpath",
    "compare_planner",
    "planner_table",
    "runtime_flags",
    "counters_table",
    "figure15_speedups",
    "figure15_table",
    "figure16_breakdown",
    "figure16_table",
    "figure17_table",
    "linear_r2",
    "operator_breakdown",
]
