"""The cost model: selectivity estimates over index statistics.

Everything here is arithmetic over :class:`~repro.storage.stats.CardinalityStats`
(exact per-tag node counts snapshotted from the tag indexes) — no query
is executed to produce an estimate.  Costs are abstract *work units*
(items touched), not seconds: the skip-aware merge cursor reads each
side of a structural join once and writes its output, so one unit is
"one posting/variant handled".  Absolute units do not matter — every
choice the planner makes compares alternatives under the same model, so
only ratios count.

Pattern-match cost (the join-order decision)
--------------------------------------------

Matching one annotated pattern node cascades one structural join per
edge, carrying the surviving *variants* forward.  For a node with raw
candidate count ``C`` and edges processed in some order::

    variants = C * sel(node)          # value predicates filter candidates
    cost     = C                      # the index scan
    for edge in order:
        cost     += variants + child_variants(edge)   # merge passes
        variants *= fanout(edge)                      # survivors
        cost     += variants                          # write output

``fanout`` is the expected alternatives each surviving parent variant
gains from the edge — the interval-containment fan-out: the child
subtree's estimated embeddings spread over the parent tag's node count
(every node has exactly one parent, so ``child_variants / parent_tag_count``
children land under each candidate on average).  The matching
specification then shapes it:

* ``-``  fanout = children-per-parent (a parent without children dies);
* ``?``  fanout = children-per-parent + 1 (the absent alternative);
* ``+``  fanout = P(>=1 child) — matches cluster into one witness;
* ``*``  fanout = 1 — every parent survives with one (possibly empty)
  cluster.

The scan and child-subtree costs are order-independent; only the
``variants`` trajectory depends on the order, which is exactly why
running selective edges first wins: they shrink the variant list every
later join has to carry.

Value predicates multiply a node's candidate count by
:data:`PREDICATE_SELECTIVITY` per comparison (a fixed guess — the
telemetry feedback loop exists precisely because such guesses are
sometimes wrong).  A tag the statistics cannot bound (a document that is
not loaded) estimates at :data:`UNKNOWN_COUNT`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.cardinality import Interval, bound_plan
from ..core.base import Operator
from ..core.join import JoinOp
from ..core.select import SelectOp
from ..patterns.apt import APTNode
from ..storage.stats import CardinalityStats

#: Estimated fraction of a tag's nodes that survive one value comparison.
PREDICATE_SELECTIVITY = 0.25

#: Candidate-count guess for a tag the statistics cannot bound.
UNKNOWN_COUNT = 64.0

#: Node orders with this many edges or fewer are costed exhaustively;
#: larger ones fall back to a greedy fanout-ascending sort.  23-query
#: XMark plans top out at 4 edges per node, so the exhaustive search is
#: the common case and stays trivially cheap (<= 120 orders).
MAX_EXHAUSTIVE_EDGES = 5

#: Cost multiplier of the legacy structural-join path relative to the
#: merge-cursor fast path (per-call probe-array rebuilds, no skipping,
#: no postings reuse).  Calibrated against the committed BENCH_3 sweep:
#: the fast path wins ~2.5x on join-heavy queries.
LEGACY_JOIN_FACTOR = 2.5

#: Per-row saving of a columnar operator over its per-tree twin and the
#: per-row price of crossing a tree<->column boundary, both relative to
#: one work unit.  Calibrated against BENCH_8: fully-columnar plans win
#: ~1.2x, plans that convert at every other operator do not.
BATCH_SAVING_PER_ROW = 0.15
BATCH_CONVERT_PER_ROW = 0.5

#: How decisively the estimated conversion price must beat the estimated
#: columnar saving before the planner abandons the batch runtime for
#: per-tree execution.  Batch is the *measured* default: the committed
#: BENCH_8 sweep shows it winning on 22 of 23 queries, including plans
#: where this model prices conversion up to ~1.8x the saving (x9), while
#: the one genuine batch loser (x12, 0.93x) sits at ~1.1x — inside the
#: winners' range, so no price/saving threshold can single it out.  The
#: margin therefore errs on the side of the measured default and only
#: vetoes plans whose boundary traffic clearly dominates.
TREE_VETO_MARGIN = 2.0

#: Estimated rows for an unbounded interval: the cardinality pass says
#: "anything"; the planner needs a number and uses a small multiple of
#: the database size (a query rarely outproduces the data it reads).
UNBOUNDED_ROWS_FACTOR = 4


@dataclass(frozen=True)
class EdgeEstimate:
    """One pattern edge's order-independent statistics."""

    index: int              #: position in ``node.edges``
    axis: str
    mspec: str
    tag: Optional[str]
    child_variants: float   #: estimated embeddings of the child subtree
    fanout: float           #: expected alternatives per parent variant
    child_cost: float       #: cost of producing the child matches

    def describe(self) -> str:
        arrow = "//" if self.axis == "ad" else "/"
        return f"{arrow}{self.mspec}{self.tag or '*'}"


@dataclass
class PatternEstimate:
    """A pattern node's candidates, per-edge stats and variant product."""

    tag: Optional[str]
    candidates: float       #: raw tag count after predicate selectivity
    raw_count: float        #: raw tag count (fan-out denominator)
    edges: List[EdgeEstimate] = field(default_factory=list)

    @property
    def variants(self) -> float:
        """Estimated match variants (order-independent product)."""
        total = self.candidates
        for edge in self.edges:
            total *= edge.fanout
        return total

    def subtree_cost(self) -> float:
        """Order-independent child-production cost below this node."""
        return sum(edge.child_cost for edge in self.edges)


class CostModel:
    """Estimates over one statistics snapshot, with optional overrides.

    ``observed`` maps a plan operator's post-order index (the tracer's
    record index) to its *measured* output cardinality; when present it
    replaces the static interval estimate for that operator — the
    telemetry feedback loop's way of correcting a wrong guess.
    """

    def __init__(
        self,
        stats: CardinalityStats,
        observed: Optional[Dict[int, int]] = None,
    ) -> None:
        self.stats = stats
        self.observed = observed or {}
        #: estimated rows for an interval the analysis left unbounded
        self.row_cap = float(
            max(stats.database_nodes, 1) * UNBOUNDED_ROWS_FACTOR
        )

    # ------------------------------------------------------------------
    # pattern-level estimates (the join-order decision)
    # ------------------------------------------------------------------
    def node_count(self, doc: Optional[str], node: APTNode) -> float:
        """Raw candidate count of one pattern node against ``doc``."""
        count = self.stats.tag_count(doc, node.test.tag)
        if count is None:
            return UNKNOWN_COUNT
        return float(count)

    def estimate_pattern(
        self, node: APTNode, doc: Optional[str]
    ) -> PatternEstimate:
        """Recursive :class:`PatternEstimate` for the subtree at ``node``."""
        raw = self.node_count(doc, node)
        selectivity = PREDICATE_SELECTIVITY ** len(node.test.comparisons)
        estimate = PatternEstimate(
            tag=node.test.tag,
            candidates=raw * selectivity,
            raw_count=raw,
        )
        for index, edge in enumerate(node.edges):
            child = self.estimate_pattern(edge.child, doc)
            spread = child.variants / max(raw, 1.0)
            if edge.mspec == "-":
                fanout = spread
            elif edge.mspec == "?":
                fanout = spread + 1.0
            elif edge.mspec == "+":
                fanout = min(1.0, spread)
            else:  # '*': every parent survives with one cluster
                fanout = 1.0
            estimate.edges.append(
                EdgeEstimate(
                    index=index,
                    axis=edge.axis,
                    mspec=edge.mspec,
                    tag=edge.child.test.tag,
                    child_variants=child.variants,
                    fanout=fanout,
                    child_cost=self.order_cost(
                        child, list(range(len(child.edges)))
                    )
                    + child.subtree_cost(),
                )
            )
        return estimate

    def order_cost(
        self, estimate: PatternEstimate, order: Sequence[int]
    ) -> float:
        """Join-cascade cost of processing the node's edges in ``order``.

        Excludes the order-independent child-production costs
        (:meth:`PatternEstimate.subtree_cost`); include them when
        comparing whole patterns rather than orders of one node.
        """
        variants = estimate.candidates
        cost = estimate.raw_count  # the index scan
        for position in order:
            edge = estimate.edges[position]
            cost += variants + edge.child_variants
            variants *= edge.fanout
            cost += variants
        return cost

    def best_order(
        self, estimate: PatternEstimate
    ) -> Tuple[List[int], float]:
        """The cheapest edge order of one node, with its cost.

        Exhaustive for small nodes, greedy (fanout ascending) past
        :data:`MAX_EXHAUSTIVE_EDGES`.  Ties break toward source order,
        so the planner never reorders without a reason.
        """
        count = len(estimate.edges)
        source = list(range(count))
        if count < 2:
            return source, self.order_cost(estimate, source)
        if count <= MAX_EXHAUSTIVE_EDGES:
            best, best_cost = source, self.order_cost(estimate, source)
            for candidate in permutations(range(count)):
                candidate = list(candidate)
                cost = self.order_cost(estimate, candidate)
                if cost < best_cost:
                    best, best_cost = candidate, cost
            return best, best_cost
        greedy = sorted(
            source, key=lambda i: (estimate.edges[i].fanout, i)
        )
        return greedy, self.order_cost(estimate, greedy)

    # ------------------------------------------------------------------
    # operator-level estimates (the currency and engine decisions)
    # ------------------------------------------------------------------
    def interval_rows(self, interval: Interval) -> float:
        """A single row estimate from a ``[lo, hi]`` interval."""
        if interval.hi is None:
            return max(self.row_cap, float(interval.lo))
        return float(max(interval.hi, interval.lo))

    def plan_rows(self, plan: Operator) -> Dict[int, float]:
        """Estimated output rows per operator (keyed by ``id(op)``).

        Static interval bounds capped at :attr:`row_cap`, then overridden
        with observed cardinalities where the feedback loop supplied
        them.
        """
        analysis = bound_plan(plan, self.stats)
        rows: Dict[int, float] = {}
        for index, op in enumerate(post_order(plan)):
            interval = analysis.bounds[id(op)]
            estimate = min(self.interval_rows(interval), self.row_cap)
            if index in self.observed:
                estimate = float(self.observed[index])
            rows[id(op)] = estimate
        return rows

    def op_cost(self, op: Operator, rows: Dict[int, float]) -> float:
        """One operator's work estimate given per-operator row counts."""
        out = rows[id(op)]
        ins = sum(rows[id(child)] for child in op.inputs)
        if isinstance(op, SelectOp) and not op.inputs:
            estimate = self.estimate_pattern(op.apt.root, op.apt.doc)
            order, cost = self.best_order(estimate)
            return cost + estimate.subtree_cost()
        if isinstance(op, JoinOp):
            # merge or nested pairing: read both sides, write the output
            return ins + out
        # linear operators: one pass over the input, one over the output
        return ins + out


def post_order(plan: Operator) -> List[Operator]:
    """Operators in first-completion order, shared sub-plans once.

    This is exactly the order the runtime tracer assigns record indexes
    in (children before parents, left to right, memoised by identity),
    so observed cardinalities from a trace align positionally.
    """
    seen: Dict[int, bool] = {}
    out: List[Operator] = []
    stack: List[Tuple[Operator, bool]] = [(plan, False)]
    while stack:
        op, ready = stack.pop()
        if id(op) in seen and not ready:
            continue
        if ready:
            out.append(op)
            continue
        seen[id(op)] = True
        stack.append((op, True))
        for child in reversed(op.inputs):
            if id(child) not in seen:
                stack.append((child, False))
    return out
