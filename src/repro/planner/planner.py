"""The physical planner: cost the alternatives, annotate the plan.

:func:`plan_physical` walks a translated TLC plan and makes three kinds
of decision, each recorded as a :class:`~repro.planner.choice.PlanChoice`
(chosen shape, rejected shapes, costs, reason):

* **edge-order** — for every pattern node with two or more edges, the
  structural-join cascade order.  The candidate orders are costed with
  the interval-containment fan-out model (:mod:`repro.planner.cost`);
  when a cheaper order than the translator's source order exists, the
  node is annotated (``planner_order``) and the matcher processes its
  edges in that order — the witness trees are byte-identical because
  the matcher restores both slot order and variant order (see
  ``PatternMatcher._match_node_db``).
* **currency** — trees or columns.  Operators with a native columnar
  form save per row, crossing a tree<->column boundary costs per row;
  the planner sums both over the estimated row flow and keeps the batch
  runtime only when it pays.  Individual columnar operators stranded
  between per-tree neighbours ("islands") are vetoed back to per-tree
  execution even inside a batch plan.
* **engine** — fast path or legacy structural joins.  The legacy cost
  is the fast-path join work times :data:`~repro.planner.cost.LEGACY_JOIN_FACTOR`;
  the record exists so EXPLAIN can show *why* the fast path wins (and
  keeps the decision honest if a future change flips the ratio).

Annotations are plain attributes on plan objects (``planner_order`` on
pattern nodes, ``exec_mode`` on operators, ``exec_currency``/
``exec_engine``/``planner_decision`` on the root), so a planned plan
pickles to workers and caches in the prepared-plan LRU unchanged.
Passing ``apply=False`` costs the alternatives without touching the
plan — the feedback loop's re-costing mode.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..analysis.visitor import describe_op
from ..core.base import Operator
from ..core.select import SelectOp
from ..patterns.apt import APTNode
from ..storage.database import Database
from ..storage.stats import CardinalityStats
from .calibration import active as active_calibration
from .calibration import calibrated
from .choice import Alternative, PlanChoice, PlanDecision
from .cost import (
    TREE_VETO_MARGIN,
    CostModel,
    PatternEstimate,
    post_order,
)

#: Fractional cost advantage a different shape must show before the
#: planner (or the feedback re-coster) prefers it; absorbs model noise.
DECISION_MARGIN = 0.02


def _order_label(estimate: PatternEstimate, order: List[int]) -> str:
    return ", ".join(estimate.edges[i].describe() for i in order)


def _has_native_batch(op: Operator) -> bool:
    """Whether ``op`` overrides the materialising ``execute_batch``."""
    return type(op).execute_batch is not Operator.execute_batch


def _pattern_sites(op: SelectOp) -> List[APTNode]:
    """Pattern nodes of one Select with a join order to choose."""
    return [
        node for node in op.apt.root.walk() if len(node.edges) >= 2
    ]


def currency_flow(
    ops: List[Operator], rows: Dict[int, float]
) -> Tuple[Dict[int, bool], Dict[int, List[Operator]], float, float]:
    """Row flow of the currency decision, shared with the re-coster.

    Returns ``(native, consumers, columnar_rows, boundary_rows)``:
    which operators have a native columnar form, who consumes whom, how
    many estimated rows flow through native operators (the saving side)
    and how many cross a tree<->column boundary (the conversion side).
    """
    native = {id(op): _has_native_batch(op) for op in ops}
    consumers: Dict[int, List[Operator]] = {id(op): [] for op in ops}
    for op in ops:
        for child in op.inputs:
            consumers[id(child)].append(op)
    columnar_rows = sum(rows[id(op)] for op in ops if native[id(op)])
    boundary_rows = 0.0
    for op in ops:
        if native[id(op)]:
            # a per-tree (or absent) consumer materialises this output
            if any(not native[id(c)] for c in consumers[id(op)]):
                boundary_rows += rows[id(op)]
        else:
            # a fallback operator materialises its columnar inputs
            boundary_rows += sum(
                rows[id(child)]
                for child in op.inputs
                if native[id(child)]
            )
    return native, consumers, columnar_rows, boundary_rows


def plan_physical(
    plan: Operator,
    database: Union[Database, CardinalityStats],
    observed: Optional[Dict[int, int]] = None,
    apply: bool = True,
    metrics=None,
) -> PlanDecision:
    """Cost the physical alternatives of ``plan``; annotate the winners.

    ``database`` supplies the statistics (a loaded
    :class:`~repro.storage.database.Database` or a prebuilt
    :class:`~repro.storage.stats.CardinalityStats` snapshot).
    ``observed`` optionally maps tracer post-order operator indexes to
    measured output cardinalities (the feedback loop's corrections).
    With ``apply=False`` nothing is mutated — the decision reports what
    the planner *would* do.  ``metrics`` is the
    :class:`~repro.storage.stats.Metrics` object whose planner counters
    an applied decision bumps; it defaults to the database's own and
    stays ``None`` (no counting) for a bare statistics snapshot.
    """
    if isinstance(database, CardinalityStats):
        stats = database
    else:
        stats = CardinalityStats.from_database(database)
        if metrics is None:
            metrics = database.metrics
    model = CostModel(stats, observed=observed)
    if active_calibration() is not None:
        from ..telemetry.hooks import instrument

        instrument("calibration.applied")
    decision = PlanDecision()
    ops = post_order(plan)
    op_index = {id(op): i for i, op in enumerate(ops)}
    rows = model.plan_rows(plan)

    # ------------------------------------------------------------------
    # edge order, one choice per multi-edge pattern node
    # ------------------------------------------------------------------
    join_work = 0.0
    scan_work = 0.0
    for op in ops:
        if not isinstance(op, SelectOp):
            continue
        doc = op.apt.doc
        for node in _pattern_sites(op):
            estimate = model.estimate_pattern(node, doc)
            source = list(range(len(node.edges)))
            source_cost = model.order_cost(estimate, source)
            best, best_cost = model.best_order(estimate)
            site = (
                f"{describe_op(op)} · pattern node "
                f"{node.test.tag or '*'} [lcl={node.lcl}]"
            )
            reorder = (
                best != source
                and best_cost < source_cost * (1.0 - DECISION_MARGIN)
            )
            if reorder:
                chosen = Alternative(
                    label=_order_label(estimate, best),
                    cost=round(best_cost, 1),
                    detail="planner order",
                )
                rejected = [
                    Alternative(
                        label="source order",
                        cost=round(source_cost, 1),
                        detail=_order_label(estimate, source),
                    )
                ]
                reason = (
                    "selective edges first: the reordered cascade "
                    f"carries {best_cost / max(source_cost, 1e-9):.0%} "
                    "of the source order's variant traffic"
                )
                decision.reordered_sites += 1
            else:
                best = source
                best_cost = source_cost
                chosen = Alternative(
                    label="source order",
                    cost=round(source_cost, 1),
                    detail=_order_label(estimate, source),
                )
                worst_cost = source_cost
                worst: List[int] = source
                if len(node.edges) > 1:
                    for candidate in _order_extremes(model, estimate):
                        cost = model.order_cost(estimate, candidate)
                        if cost > worst_cost:
                            worst, worst_cost = candidate, cost
                rejected = (
                    [
                        Alternative(
                            label=_order_label(estimate, worst),
                            cost=round(worst_cost, 1),
                            detail="costliest order",
                        )
                    ]
                    if worst != source
                    else []
                )
                reason = "source order is already (near-)minimal"
            decision.choices.append(
                PlanChoice(
                    site=site,
                    kind="edge-order",
                    chosen=chosen,
                    rejected=rejected,
                    reason=reason,
                    op_index=op_index[id(op)],
                )
            )
            if apply:
                if best != source:
                    node.planner_order = best
                elif getattr(node, "planner_order", None) is not None:
                    node.planner_order = None
            join_work += best_cost - estimate.raw_count
            scan_work += estimate.raw_count
        if isinstance(op, SelectOp) and not _pattern_sites(op):
            # single-edge/leaf patterns still contribute join+scan work
            estimate = model.estimate_pattern(op.apt.root, doc)
            source = list(range(len(op.apt.root.edges)))
            cost = model.order_cost(estimate, source)
            join_work += cost - estimate.raw_count
            scan_work += estimate.raw_count

    # ------------------------------------------------------------------
    # operator currency: trees vs columns, plus per-operator vetoes
    # ------------------------------------------------------------------
    native, consumers, columnar_rows, boundary_rows = currency_flow(
        ops, rows
    )
    batch_saving = calibrated("batch_saving_per_row") * columnar_rows
    batch_price = calibrated("batch_convert_per_row") * boundary_rows
    # batch is the measured default (BENCH_8); the veto to per-tree
    # execution needs the conversion price to *clearly* dominate
    batch_wins = batch_price <= batch_saving * TREE_VETO_MARGIN
    decision.currency = "batch" if batch_wins else "tree"
    vetoes: List[int] = []
    if batch_wins:
        for op in ops:
            if not native[id(op)] or not op.inputs:
                continue
            stranded = all(not native[id(c)] for c in op.inputs) and (
                consumers[id(op)]
                and all(not native[id(c)] for c in consumers[id(op)])
            )
            if stranded:
                vetoes.append(op_index[id(op)])
    decision.tree_vetoes = vetoes
    decision.choices.append(
        PlanChoice(
            site="plan",
            kind="currency",
            chosen=Alternative(
                label=decision.currency,
                cost=round(
                    batch_price - batch_saving if batch_wins else 0.0, 1
                ),
                detail=(
                    f"{len(vetoes)} stranded columnar operator(s) "
                    "vetoed to per-tree"
                    if vetoes
                    else "whole plan"
                ),
            ),
            rejected=[
                Alternative(
                    label="tree" if batch_wins else "batch",
                    cost=round(
                        0.0 if batch_wins else batch_price - batch_saving,
                        1,
                    ),
                    detail=(
                        f"columnar rows {columnar_rows:,.0f}, "
                        f"boundary rows {boundary_rows:,.0f}"
                    ),
                )
            ],
            reason=(
                f"columnar saving {batch_saving:,.0f} vs conversion "
                f"price {batch_price:,.0f} work units "
                f"(veto margin {TREE_VETO_MARGIN:g}x)"
            ),
        )
    )

    # ------------------------------------------------------------------
    # join engine: merge-cursor fast path vs legacy
    # ------------------------------------------------------------------
    fast_cost = scan_work + join_work
    legacy_factor = calibrated("legacy_join_factor")
    legacy_cost = scan_work + join_work * legacy_factor
    decision.engine = "fast"
    decision.choices.append(
        PlanChoice(
            site="plan",
            kind="engine",
            chosen=Alternative(
                label="fast", cost=round(fast_cost, 1),
                detail="shared postings + skip-aware merge cursors",
            ),
            rejected=[
                Alternative(
                    label="legacy", cost=round(legacy_cost, 1),
                    detail=(
                        f"per-call probe rebuilds, x{legacy_factor:g} "
                        "join work"
                    ),
                )
            ],
            reason=(
                "no join work: the paths tie"
                if join_work <= 0
                else "merge cursors read each postings list once"
            ),
        )
    )

    decision.total_cost = sum(model.op_cost(op, rows) for op in ops)

    if apply:
        veto_set = set(vetoes)
        for index, op in enumerate(ops):
            wants_tree = index in veto_set or not batch_wins
            if wants_tree and native[id(op)]:
                op.exec_mode = "tree"
            elif getattr(op, "exec_mode", None) is not None:
                op.exec_mode = None
        plan.exec_currency = decision.currency
        plan.exec_engine = decision.engine
        plan.planner_decision = decision
        if metrics is not None:
            metrics.planner_plans += 1
            metrics.planner_reorders += decision.reordered_sites
    return decision


def _order_extremes(
    model: CostModel, estimate: PatternEstimate
) -> List[List[int]]:
    """A small set of candidate orders to showcase as rejected shapes."""
    count = len(estimate.edges)
    source = list(range(count))
    reverse_greedy = sorted(
        source, key=lambda i: (-estimate.edges[i].fanout, i)
    )
    return [list(reversed(source)), reverse_greedy]
